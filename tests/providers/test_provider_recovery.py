"""Checkpoint/resume of an elastic day (mirrors tests/service/test_recovery.py).

The recovery contract extended to the provider layer: a day killed at
an epoch boundary that sits *after* autoscale resizes and *inside* a
preemption warning window must resume byte-identically — pool shape,
draining state, and pending reclaims all travel through
``ServiceCheckpoint.provider_state``.
"""

import pytest

from repro.core.builder import build_model
from repro.errors import ConfigurationError, ServiceError
from repro.faults import FaultConfig, FaultPlan
from repro.placement.annealing import AnnealingSchedule
from repro.providers import AutoscalerConfig, ElasticProvider, StaticProvider
from repro.service.checkpoint import ServiceCheckpoint
from repro.service.events import EventLog
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner
from tests._synthetic import QUIET_NOISE, quiet_runner, synthetic_factory

FAST_SCHEDULE = AnnealingSchedule(iterations=150, restarts=1)

CEILING = 8
BOUNDARY = 4  # the kill epoch: after resizes, inside a warning window
DAY = 8


@pytest.fixture(scope="module")
def environment():
    runner = quiet_runner(num_nodes=CEILING, factory=synthetic_factory())
    report = build_model(
        runner, ["A", "B"], policy_samples=4, seed=31, span=4
    )
    return runner, report.model


def churn_provider():
    # Fresh per service: restore() installs the checkpoint's inventory
    # into the resumed service's own provider instance.
    plan = FaultPlan(FaultConfig(
        seed=7, preemption_rate=0.2, preemption_warning_epochs=2,
    ))
    return ElasticProvider(
        CEILING,
        initial_nodes=6,
        spot_fraction=0.5,
        churn=plan,
        autoscaler=AutoscalerConfig(),
    )


def make_service(environment, *, provider, seed=4, checkpoint_path=None):
    shared, model = environment
    runner = ClusterRunner(
        shared.spec,
        noise=QUIET_NOISE,
        base_seed=shared.base_seed,
        workload_factory=synthetic_factory(),
    )
    stream = WorkloadStream(
        StreamConfig(workloads=("A", "B"), arrival_rate=1.6), seed=seed
    )
    return ConsolidationService(
        runner,
        model,
        stream,
        config=ServiceConfig(schedule=FAST_SCHEDULE),
        seed=seed,
        checkpoint_path=checkpoint_path,
        provider=provider,
    )


class TestProviderStateCapture:
    @pytest.fixture(scope="class")
    def boundary_checkpoint(self, environment):
        service = make_service(environment, provider=churn_provider())
        service.run(BOUNDARY)
        return service, service.checkpoint()

    def test_elastic_checkpoint_carries_provider_state(
        self, boundary_checkpoint
    ):
        service, checkpoint = boundary_checkpoint
        state = checkpoint.to_dict()["provider_state"]
        assert state == service.provider.state_dict()
        assert state["provider"] == "elastic"
        assert state["max_nodes"] == CEILING

    def test_boundary_is_a_real_churn_boundary(self, boundary_checkpoint):
        # The scenario this module exists for: the kill epoch sits
        # after autoscale resizes with a preemption warning in flight.
        service, checkpoint = boundary_checkpoint
        state = checkpoint.to_dict()["provider_state"]
        draining = [
            entry for entry in state["instances"]
            if entry["state"] == "draining"
        ]
        assert draining, "no in-flight warning at the boundary"
        assert all(entry["reclaim_epoch"] >= BOUNDARY for entry in draining)
        assert service.log.counts().get("autoscale", 0) > 0

    def test_dict_round_trip_preserves_provider_state(
        self, boundary_checkpoint
    ):
        _, checkpoint = boundary_checkpoint
        rebuilt = ServiceCheckpoint.from_dict(checkpoint.to_dict())
        assert rebuilt.to_dict() == checkpoint.to_dict()

    def test_counters_cover_preemption_bookkeeping(
        self, boundary_checkpoint
    ):
        service, checkpoint = boundary_checkpoint
        counters = checkpoint.to_dict()["counters"]
        assert counters["preempted"] == service.preempted_total
        assert counters["requeued"] == service.requeued_total


class TestRestoreValidation:
    def test_elastic_service_rejects_a_stateless_checkpoint(
        self, environment
    ):
        donor = make_service(environment, provider=None)
        donor.run(2)
        checkpoint = donor.checkpoint()
        assert "provider_state" not in checkpoint.to_dict()
        fresh = make_service(environment, provider=churn_provider())
        with pytest.raises(ServiceError, match="provider"):
            fresh.restore(checkpoint, log=donor.log)

    def test_providerless_service_rejects_provider_state(self, environment):
        donor = make_service(environment, provider=churn_provider())
        donor.run(2)
        checkpoint = donor.checkpoint()
        fresh = make_service(environment, provider=None)
        with pytest.raises(ServiceError, match="provider"):
            fresh.restore(checkpoint, log=donor.log)

    def test_mismatched_churn_plan_is_rejected(self, environment):
        donor = make_service(environment, provider=churn_provider())
        donor.run(2)
        checkpoint = donor.checkpoint()
        other = ElasticProvider(
            CEILING,
            initial_nodes=6,
            spot_fraction=0.5,
            churn=FaultPlan(FaultConfig(seed=99, preemption_rate=0.2)),
            autoscaler=AutoscalerConfig(),
        )
        fresh = make_service(environment, provider=other)
        with pytest.raises(ConfigurationError, match="churn"):
            fresh.restore(checkpoint, log=donor.log)

    def test_static_provider_checkpoints_like_no_provider(self, environment):
        service = make_service(environment, provider=StaticProvider(CEILING))
        service.run(2)
        checkpoint = service.checkpoint()
        assert "provider_state" not in checkpoint.to_dict()
        # And restores into a fresh static-provider service cleanly.
        resumed = make_service(
            environment, provider=StaticProvider(CEILING)
        )
        resumed.restore(checkpoint, log=service.log)
        assert resumed.epochs_run == 2


class TestElasticResumeIdentity:
    """A churn day killed mid-warning replays byte for byte."""

    @pytest.fixture(scope="class")
    def uninterrupted(self, environment):
        service = make_service(environment, provider=churn_provider())
        service.run(DAY)
        return service

    def test_interrupted_churn_day_is_byte_identical(
        self, environment, uninterrupted, tmp_path
    ):
        checkpoint_path = str(tmp_path / "service.ckpt")
        log_path = str(tmp_path / "events.jsonl")

        first = make_service(
            environment,
            provider=churn_provider(),
            checkpoint_path=checkpoint_path,
        )
        first.log.attach(log_path)
        first.run(BOUNDARY)
        first.log.detach()
        # Hard kill mid-append: the file gains a torn final line.
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 4, "se')

        checkpoint = ServiceCheckpoint.load(checkpoint_path)
        assert checkpoint.epoch == BOUNDARY
        assert checkpoint.to_dict()["provider_state"] is not None
        recovered = EventLog.recover(log_path)
        resumed = make_service(
            environment,
            provider=churn_provider(),
            checkpoint_path=checkpoint_path,
        )
        resumed.restore(checkpoint, log=recovered)
        assert resumed.epochs_run == BOUNDARY
        # The resumed provider carries the donor's pool shape — the
        # resize and the in-flight warning — not its own epoch-0 one.
        assert (
            resumed.provider.state_dict()
            == checkpoint.to_dict()["provider_state"]
        )
        resumed.log.attach(log_path)
        resumed.run(DAY - BOUNDARY)
        resumed.log.detach()

        expected = uninterrupted.log.to_jsonl()
        assert resumed.log.to_jsonl() == expected
        with open(log_path, "r", encoding="utf-8") as handle:
            assert handle.read() == expected
        assert [s.to_dict() for s in resumed.snapshots] == [
            s.to_dict() for s in uninterrupted.snapshots
        ]
        final = ServiceCheckpoint.load(checkpoint_path)
        assert final.epoch == DAY
        assert (
            final.to_dict()["provider_state"]
            == uninterrupted.provider.state_dict()
        )

    def test_run_split_without_crash_is_also_identical(
        self, environment, uninterrupted
    ):
        split = make_service(environment, provider=churn_provider())
        split.run(BOUNDARY)
        split.run(DAY - BOUNDARY)
        assert split.log.to_jsonl() == uninterrupted.log.to_jsonl()
