"""The consolidation service over a capacity provider.

Two contracts:

* **Static identity** — a ``StaticProvider`` day is byte-identical to
  a day with no provider at all: same event log, snapshots, trace, and
  checkpoint bytes.
* **Elastic invariants** — under autoscaling and seeded spot churn, no
  mission-critical tenant ever touches a spot node, and every resident
  job evicted by a reclaim is requeued (never dropped).
"""

import pytest

from repro.core.builder import build_model
from repro.errors import ServiceError
from repro.faults import FaultConfig, FaultPlan
from repro.obs.recorder import recording
from repro.obs.sinks import to_payload
from repro.placement.annealing import AnnealingSchedule
from repro.providers import AutoscalerConfig, ElasticProvider, StaticProvider
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner
from tests._synthetic import QUIET_NOISE, quiet_runner, synthetic_factory

FAST_SCHEDULE = AnnealingSchedule(iterations=150, restarts=1)

CEILING = 8


@pytest.fixture(scope="module")
def environment():
    runner = quiet_runner(num_nodes=CEILING, factory=synthetic_factory())
    report = build_model(
        runner, ["A", "B"], policy_samples=4, seed=31, span=4
    )
    return runner, report.model


def fresh_runner(environment):
    shared = environment[0]
    return ClusterRunner(
        shared.spec,
        noise=QUIET_NOISE,
        base_seed=shared.base_seed,
        workload_factory=synthetic_factory(),
    )


def make_service(environment, *, provider=None, seed=4, arrival_rate=1.2):
    runner, model = environment
    stream = WorkloadStream(
        StreamConfig(workloads=("A", "B"), arrival_rate=arrival_rate),
        seed=seed,
    )
    return ConsolidationService(
        fresh_runner(environment),
        model,
        stream,
        config=ServiceConfig(schedule=FAST_SCHEDULE),
        seed=seed,
        provider=provider,
    )


def churn_provider(*, rate=0.2, window=1, seed=7, initial=6,
                   autoscaler=True):
    plan = FaultPlan(FaultConfig(
        seed=seed, preemption_rate=rate, preemption_warning_epochs=window,
    ))
    return ElasticProvider(
        CEILING,
        initial_nodes=initial,
        spot_fraction=0.5,
        churn=plan,
        autoscaler=AutoscalerConfig() if autoscaler else None,
    )


class TestConstruction:
    def test_runner_must_match_the_ceiling(self, environment):
        _, model = environment
        stream = WorkloadStream(StreamConfig(workloads=("A",)), seed=1)
        small = quiet_runner(num_nodes=4)
        with pytest.raises(ServiceError, match="ceiling"):
            ConsolidationService(
                small, model, stream, provider=churn_provider()
            )


class TestStaticIdentity:
    """``--provider static`` replays the provider-free day byte for byte."""

    @pytest.fixture(scope="class")
    def days(self, environment):
        outcomes = []
        for provider in (None, StaticProvider(CEILING)):
            service = make_service(environment, provider=provider)
            with recording() as recorder:
                service.run(6)
            outcomes.append((service, to_payload(recorder)))
        return outcomes

    def test_event_logs_identical(self, days):
        (bare, _), (static, _) = days
        assert static.log.to_jsonl() == bare.log.to_jsonl()

    def test_snapshots_identical(self, days):
        (bare, _), (static, _) = days
        assert [s.to_dict() for s in static.snapshots] == [
            s.to_dict() for s in bare.snapshots
        ]
        # No additive provider block leaks into static snapshots.
        assert all(s.to_dict().get("provider") is None
                   for s in static.snapshots)

    def test_traces_identical(self, days):
        (_, bare_trace), (_, static_trace) = days
        assert static_trace == bare_trace
        names = {span["name"] for span in static_trace["spans"]}
        assert not any(name.startswith("provider.") for name in names)
        assert not any(
            key.startswith("provider.")
            for key in list(static_trace["counters"])
            + list(static_trace["gauges"])
        )

    def test_checkpoints_identical(self, days):
        (bare, _), (static, _) = days
        assert static.checkpoint().to_dict() == bare.checkpoint().to_dict()
        assert "provider_state" not in static.checkpoint().to_dict()


class TestElasticDay:
    EPOCHS = 10

    @pytest.fixture(scope="class")
    def day(self, environment):
        service = make_service(
            environment, provider=churn_provider(), arrival_rate=1.6
        )
        with recording() as recorder:
            service.run(self.EPOCHS)
        return service, to_payload(recorder)

    def test_day_exercises_the_elastic_machinery(self, day):
        service, _ = day
        counts = service.log.counts()
        assert counts.get("preempt_warning", 0) > 0
        assert counts.get("preempt_reclaim", 0) > 0
        assert counts.get("autoscale", 0) > 0

    def test_no_mission_critical_tenant_ever_on_spot(self, day):
        service, _ = day
        provider = service.provider
        durable = set(provider.durable_nodes())
        qos_of = {}
        for event in service.log.of_kind("arrival"):
            payload = dict(event.payload)
            qos_of[payload["job"]] = payload["qos_target"]
        for event in service.log.of_kind("admit"):
            payload = dict(event.payload)
            if qos_of[payload["job"]] is not None:
                assert set(payload["nodes"]) <= durable, (
                    f"MC job {payload['job']} admitted onto "
                    f"{payload['nodes']} (durable: {sorted(durable)})"
                )

    def test_every_preempted_job_is_requeued_not_dropped(self, day):
        service, _ = day
        requeues = [
            dict(e.payload) for e in service.log.of_kind("job_requeue")
            if dict(e.payload)["reason"] == "preempted"
        ]
        assert service.preempted_total == len(requeues)
        assert service.requeued_total >= service.preempted_total
        # A requeued job is never rejected for queue depth: no reject
        # carries a preempted job id with reason queue-full.
        preempted_ids = {entry["job"] for entry in requeues}
        for event in service.log.of_kind("reject"):
            payload = dict(event.payload)
            assert not (
                payload["job"] in preempted_ids
                and payload["reason"] == "queue-full"
            )

    def test_snapshot_carries_the_pool_picture(self, day):
        service, _ = day
        block = service.snapshots[-1].to_dict()["provider"]
        assert block["pool_size"] == len(service.provider.live_nodes())
        assert block["preempted_total"] == service.preempted_total
        assert block["requeued_total"] == service.requeued_total
        assert (
            block["durable_nodes"] + block["spot_nodes"]
            == block["pool_size"]
        )

    def test_trace_gains_provider_spans_and_counters(self, day):
        _, trace = day
        names = {span["name"] for span in trace["spans"]}
        assert "provider.capacity" in names
        assert trace["counters"].get("provider.preemptions", 0) > 0
        assert trace["counters"].get("provider.autoscale", 0) > 0
        assert "provider.pool_size" in trace["gauges"]
        assert "provider.spot_fraction" in trace["gauges"]

    def test_day_is_deterministic(self, environment, day):
        service, _ = day
        replay = make_service(
            environment, provider=churn_provider(), arrival_rate=1.6
        )
        replay.run(self.EPOCHS)
        assert replay.log.to_jsonl() == service.log.to_jsonl()
        assert [s.to_dict() for s in replay.snapshots] == [
            s.to_dict() for s in service.snapshots
        ]


class _DelayedChurn(FaultPlan):
    """Rate-1 churn that stays quiet until epoch 2.

    Warning every spot node at epoch 0 would fire before anything is
    admitted; delaying lets tenants land on spot first, so the
    evacuation/requeue path actually has residents to move.
    """

    def preempts(self, node_id, epoch):
        return epoch >= 2 and super().preempts(node_id, epoch)


class TestEvacuation:
    def test_warned_nodes_are_evacuated_or_requeued(self, environment):
        # Every spot node is warned at epoch 2 and reclaimed at epoch
        # 4 (2-epoch window).  Anything resident on spot either
        # migrates off (an evacuation migrate) or is requeued at the
        # reclaim — in all cases the tenancy survives.
        plan = _DelayedChurn(FaultConfig(
            seed=7, preemption_rate=1.0, preemption_warning_epochs=2,
        ))
        provider = ElasticProvider(
            CEILING, initial_nodes=6, spot_fraction=0.5, churn=plan,
        )
        service = make_service(
            environment, provider=provider, arrival_rate=2.0
        )
        service.run(6)
        counts = service.log.counts()
        assert counts.get("preempt_reclaim", 0) > 0
        evacuations = [
            dict(e.payload) for e in service.log.of_kind("migrate")
            if "evacuated_nodes" in dict(e.payload)
        ]
        requeued = service.preempted_total
        assert evacuations or requeued > 0
        # After the reclaim, nothing resident references a dead node.
        live = set(service.provider.live_nodes())
        if service.placement is not None:
            for spec in service.placement.instances:
                assert set(
                    service.placement.nodes_of(spec.instance_key)
                ) <= live

    def test_pool_utilization_uses_the_live_denominator(self, environment):
        service = make_service(
            environment,
            provider=churn_provider(rate=1.0, window=0, autoscaler=False),
            arrival_rate=0.0,
        )
        assert service.live_node_count() == 6
        service.run(1)  # all three spot nodes reclaimed at epoch 0
        assert service.live_node_count() == 3
        assert service.schedulable_node_count() == 3
