"""Unit tests for the capacity-provider layer."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultConfig, FaultPlan
from repro.providers import (
    DRAINING,
    DURABLE,
    LIVE,
    SPOT,
    AutoscalerConfig,
    CapacityProvider,
    ElasticProvider,
    ProviderInstance,
    StaticProvider,
    make_provider,
    provider_names,
)
from repro.providers.autoscaler import decide


def churn_plan(rate=1.0, window=1, seed=7):
    return FaultPlan(FaultConfig(
        seed=seed, preemption_rate=rate, preemption_warning_epochs=window,
    ))


class TestStaticProvider:
    def test_fixed_all_durable_pool(self):
        provider = StaticProvider(4)
        assert not provider.elastic
        assert provider.max_nodes == 4
        assert provider.live_nodes() == [0, 1, 2, 3]
        assert provider.schedulable_nodes() == [0, 1, 2, 3]
        assert provider.durable_nodes() == [0, 1, 2, 3]
        assert not any(provider.is_spot(n) for n in range(4))

    def test_never_changes_shape(self):
        provider = StaticProvider(4)
        assert provider.grow(2, 0) == []
        assert provider.shrink([0], 0) == []
        assert provider.step(0, queue_depth=99, idle_nodes=[0, 1]) == []
        assert provider.live_nodes() == [0, 1, 2, 3]

    def test_rejects_nonpositive_pool(self):
        with pytest.raises(ConfigurationError):
            StaticProvider(0)


class TestGrowShrink:
    def test_grow_takes_lowest_free_ids(self):
        provider = ElasticProvider(8, initial_nodes=4, spot_fraction=0.5)
        events = provider.grow(2, epoch=3)
        assert len(events) == 1
        assert events[0].kind == "node_join"
        assert events[0].nodes == (4, 5)
        assert events[0].node_class == SPOT
        assert dict(events[0].details)["pool_size"] == 6
        assert provider.live_nodes() == [0, 1, 2, 3, 4, 5]

    def test_grow_reuses_released_ids(self):
        provider = ElasticProvider(6, initial_nodes=6, spot_fraction=0.5)
        provider.shrink([4], epoch=1)
        events = provider.grow(2, epoch=2)
        assert events[0].nodes == (4,)  # only one slot left below ceiling
        launched = {i.node_id: i for i in provider.instances()}
        assert launched[4].launched_epoch == 2

    def test_grow_bounded_by_ceiling(self):
        provider = ElasticProvider(4, initial_nodes=4)
        assert provider.grow(1, epoch=0) == []

    def test_shrink_emits_node_leave(self):
        provider = ElasticProvider(6, initial_nodes=6, spot_fraction=0.5)
        events = provider.shrink([5, 4], epoch=2)
        assert events[0].kind == "node_leave"
        assert events[0].nodes == (4, 5)
        assert events[0].reason == "autoscale"
        assert provider.live_nodes() == [0, 1, 2, 3]

    def test_shrink_of_unknown_nodes_is_a_noop(self):
        provider = ElasticProvider(4, initial_nodes=2)
        assert provider.shrink([9], epoch=0) == []


class TestElasticConstruction:
    def test_durable_takes_the_low_ids(self):
        provider = ElasticProvider(8, initial_nodes=6, spot_fraction=0.5)
        assert provider.durable_nodes() == [0, 1, 2]
        assert [n for n in provider.live_nodes() if provider.is_spot(n)] == [
            3, 4, 5,
        ]

    def test_at_least_one_durable_node(self):
        provider = ElasticProvider(4, initial_nodes=2, spot_fraction=1.0)
        assert provider.durable_nodes() == [0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            ElasticProvider(4, initial_nodes=0)
        with pytest.raises(ConfigurationError):
            ElasticProvider(4, initial_nodes=5)
        with pytest.raises(ConfigurationError):
            ElasticProvider(4, spot_fraction=1.5)


class TestAutoscalerPolicy:
    CONFIG = AutoscalerConfig()

    def test_holds_when_quiet(self):
        action, count, victims, _ = decide(
            self.CONFIG, queue_depth=0, qos_margin=1.0,
            live_count=4, max_nodes=8, idle_spot=[],
        )
        assert action == "hold" and count == 0 and victims == []

    def test_grows_on_queue_depth(self):
        action, count, _, reason = decide(
            self.CONFIG, queue_depth=3, qos_margin=None,
            live_count=4, max_nodes=8, idle_spot=[],
        )
        assert action == "grow" and count == self.CONFIG.grow_step
        assert "queue" in reason

    def test_grows_on_thin_qos_margin(self):
        action, _, _, reason = decide(
            self.CONFIG, queue_depth=0, qos_margin=0.01,
            live_count=4, max_nodes=8, idle_spot=[],
        )
        assert action == "grow"
        assert "margin" in reason

    def test_shrinks_idle_spot_highest_first(self):
        action, _, victims, _ = decide(
            self.CONFIG, queue_depth=0, qos_margin=None,
            live_count=6, max_nodes=8, idle_spot=[3, 5, 4],
        )
        assert action == "shrink"
        assert victims == [5]

    def test_never_shrinks_below_min_nodes(self):
        config = AutoscalerConfig(min_nodes=4)
        action, _, _, _ = decide(
            config, queue_depth=0, qos_margin=None,
            live_count=4, max_nodes=8, idle_spot=[3],
        )
        assert action == "hold"


class TestElasticAutoscale:
    def test_grow_emits_autoscale_then_join(self):
        provider = ElasticProvider(
            8, initial_nodes=4, spot_fraction=0.5,
            autoscaler=AutoscalerConfig(),
        )
        events = provider.step(1, queue_depth=5, idle_nodes=[])
        assert [e.kind for e in events] == ["autoscale", "node_join"]
        assert dict(events[0].details)["action"] == "grow"
        assert events[0].nodes == events[1].nodes
        assert events[1].node_class == SPOT

    def test_shrink_releases_only_idle_spot(self):
        provider = ElasticProvider(
            8, initial_nodes=6, spot_fraction=0.5,
            autoscaler=AutoscalerConfig(),
        )
        # Node 0 is durable; idle durable capacity is never released.
        events = provider.step(1, queue_depth=0, idle_nodes=[0, 5])
        assert [e.kind for e in events] == ["autoscale", "node_leave"]
        assert events[1].nodes == (5,)
        assert provider.durable_nodes() == [0, 1, 2]

    def test_no_autoscaler_means_no_scaling(self):
        provider = ElasticProvider(8, initial_nodes=4)
        assert provider.step(1, queue_depth=50, idle_nodes=[]) == []


class TestTwoPhasePreemption:
    def test_warning_then_reclaim_after_the_window(self):
        provider = ElasticProvider(
            4, initial_nodes=4, spot_fraction=0.5,
            churn=churn_plan(rate=1.0, window=2),
        )
        events = provider.poll(0)
        assert [e.kind for e in events] == ["preempt_warning"]
        assert events[0].nodes == (2, 3)
        assert dict(events[0].details)["reclaim_epoch"] == 2
        # Warned instances keep executing but accept no new work.
        assert provider.live_nodes() == [0, 1, 2, 3]
        assert provider.schedulable_nodes() == [0, 1]
        assert provider.is_draining(2) and provider.is_draining(3)

        assert provider.poll(1) == []  # already draining: no re-warning
        events = provider.poll(2)
        assert [e.kind for e in events] == ["preempt_reclaim"]
        assert events[0].nodes == (2, 3)
        assert provider.live_nodes() == [0, 1]

    def test_zero_window_reclaims_in_the_same_poll(self):
        provider = ElasticProvider(
            4, initial_nodes=4, spot_fraction=0.5,
            churn=churn_plan(rate=1.0, window=0),
        )
        events = provider.poll(0)
        assert [e.kind for e in events] == [
            "preempt_warning", "preempt_reclaim",
        ]
        assert provider.live_nodes() == [0, 1]

    def test_durable_nodes_are_never_preempted(self):
        provider = ElasticProvider(
            4, initial_nodes=4, spot_fraction=0.5,
            churn=churn_plan(rate=1.0, window=0),
        )
        for epoch in range(5):
            provider.poll(epoch)
        assert provider.live_nodes() == provider.durable_nodes() == [0, 1]

    def test_no_churn_plan_means_no_preemption(self):
        provider = ElasticProvider(4, initial_nodes=4, spot_fraction=0.5)
        assert all(provider.poll(epoch) == [] for epoch in range(5))

    def test_draws_are_deterministic(self):
        def day():
            provider = ElasticProvider(
                8, initial_nodes=8, spot_fraction=0.75,
                churn=churn_plan(rate=0.3, window=1, seed=11),
            )
            return [
                tuple((e.kind, e.nodes) for e in provider.poll(epoch))
                for epoch in range(6)
            ]

        first, second = day(), day()
        assert first == second
        assert any(first)  # the plan actually fires at this rate/seed


class TestSerialization:
    def test_round_trip_mid_warning_window(self):
        provider = ElasticProvider(
            6, initial_nodes=6, spot_fraction=0.5,
            churn=churn_plan(rate=1.0, window=3),
        )
        provider.poll(0)  # all spot now draining toward epoch 3
        state = provider.state_dict()

        rebuilt = ElasticProvider(
            6, initial_nodes=6, spot_fraction=0.5,
            churn=churn_plan(rate=1.0, window=3),
        )
        rebuilt.load_state(state)
        assert rebuilt.state_dict() == state
        assert rebuilt.schedulable_nodes() == provider.schedulable_nodes()
        assert [e.kind for e in rebuilt.poll(3)] == ["preempt_reclaim"]

    def test_reclaim_epoch_omitted_when_live(self):
        entry = ProviderInstance(node_id=0).to_dict()
        assert "reclaim_epoch" not in entry
        draining = ProviderInstance(
            node_id=1, node_class=SPOT, state=DRAINING, reclaim_epoch=4,
        ).to_dict()
        assert draining["reclaim_epoch"] == 4
        assert ProviderInstance.from_dict(draining).reclaim_epoch == 4

    def test_load_rejects_mismatched_identity(self):
        state = ElasticProvider(4).state_dict()
        with pytest.raises(ConfigurationError, match="max_nodes"):
            ElasticProvider(8).load_state(state)
        with pytest.raises(ConfigurationError, match="provider"):
            StaticProvider(4).load_state(state)

    def test_load_rejects_mismatched_churn_plan(self):
        donor = ElasticProvider(4, churn=churn_plan(rate=0.5, seed=1))
        state = donor.state_dict()
        other = ElasticProvider(4, churn=churn_plan(rate=0.5, seed=2))
        with pytest.raises(ConfigurationError, match="churn"):
            other.load_state(state)
        with pytest.raises(ConfigurationError, match="churn"):
            ElasticProvider(4).load_state(state)

    def test_load_rejects_malformed_state(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            StaticProvider(4).load_state({"provider": "static"})
        with pytest.raises(ConfigurationError):
            ProviderInstance.from_dict({"node_id": 0, "node_class": "gold",
                                        "launched_epoch": 0, "state": LIVE})


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"static", "elastic", "ec2"} <= set(provider_names())

    def test_make_provider_builds_by_name(self):
        provider = make_provider("static", num_nodes=4)
        assert isinstance(provider, StaticProvider)
        assert isinstance(make_provider("elastic", max_nodes=4),
                          ElasticProvider)

    def test_unknown_name_names_the_known_set(self):
        with pytest.raises(ConfigurationError, match="static"):
            make_provider("clownshoes")


class TestPreemptFamilyDraws:
    def test_zero_rate_never_fires(self):
        plan = churn_plan(rate=0.0)
        assert not any(plan.preempts(n, e) for n in range(8) for e in range(8))

    def test_independent_of_other_families(self):
        # Enabling measurement-fault families must not perturb the
        # preempt stream: the same churn day replays identically.
        quiet = FaultPlan(FaultConfig(seed=5, preemption_rate=0.4))
        noisy = FaultPlan(FaultConfig(
            seed=5, preemption_rate=0.4, crash_rate=0.9, straggler_rate=0.9,
        ))
        draws = [(n, e) for n in range(6) for e in range(10)]
        assert [quiet.preempts(n, e) for n, e in draws] == [
            noisy.preempts(n, e) for n, e in draws
        ]

    def test_signature_covers_preemption_knobs(self):
        base = FaultPlan(FaultConfig(seed=0)).signature()
        churned = FaultPlan(
            FaultConfig(seed=0, preemption_rate=0.2)
        ).signature()
        windowed = FaultPlan(FaultConfig(
            seed=0, preemption_rate=0.2, preemption_warning_epochs=4,
        )).signature()
        assert len({base, churned, windowed}) == 3


class TestProviderBase:
    def test_step_orders_autoscale_before_poll(self):
        calls = []

        class Probe(CapacityProvider):
            name = "probe"

            def autoscale(self, epoch, **kwargs):
                calls.append("autoscale")
                return []

            def poll(self, epoch):
                calls.append("poll")
                return []

        Probe(2).step(0)
        assert calls == ["autoscale", "poll"]
