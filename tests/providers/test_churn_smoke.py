"""The seeded spot-churn day smoke (``-m churn_smoke``).

Deselected from the default test run; the ``churn-smoke`` CI job runs
it explicitly.  It replays a deterministic elastic day — autoscaling
plus two-phase spot preemption under the checked-in
``benchmarks/baselines/churn_plan.json`` — and guards two things:

* **Determinism** — the day's event counters and final snapshot must
  reproduce ``benchmarks/baselines/churn_smoke.json`` exactly.  A
  drift means the seeded churn day changed and the baseline needs a
  refresh.
* **Elastic invariants** — no mission-critical tenant is ever placed
  on a spot node, and no admitted batch job is lost to a reclaim
  (every evicted resident is requeued), while mission-critical tenants
  stay inside their QoS bounds.

To refresh after an intentional change::

    REPRO_UPDATE_CHURN_BASELINE=1 PYTHONPATH=src python -m pytest -m churn_smoke
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.builder import build_model
from repro.faults import FaultPlan
from repro.placement.annealing import AnnealingSchedule
from repro.providers import AutoscalerConfig, ElasticProvider
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from tests._synthetic import quiet_runner, synthetic_factory

pytestmark = pytest.mark.churn_smoke

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
BASELINE_PATH = BASELINES / "churn_smoke.json"
PLAN_PATH = BASELINES / "churn_plan.json"

#: Set this environment variable to re-record the baseline instead of
#: asserting against it.
UPDATE_ENV = "REPRO_UPDATE_CHURN_BASELINE"

SEED = 2016
EPOCHS = 12
CEILING = 10
INITIAL = 8


def churn_day():
    """The seeded elastic day the smoke replays (fully deterministic)."""
    runner = quiet_runner(num_nodes=CEILING, factory=synthetic_factory())
    report = build_model(
        runner, ["A", "B"], policy_samples=4, seed=SEED, span=4
    )
    provider = ElasticProvider(
        CEILING,
        initial_nodes=INITIAL,
        spot_fraction=0.5,
        churn=FaultPlan.load(str(PLAN_PATH)),
        autoscaler=AutoscalerConfig(),
    )
    stream = WorkloadStream(
        StreamConfig(workloads=("A", "B"), arrival_rate=1.8), seed=SEED
    )
    service = ConsolidationService(
        runner,
        report.model,
        stream,
        config=ServiceConfig(
            schedule=AnnealingSchedule(iterations=200, restarts=1)
        ),
        seed=SEED,
        provider=provider,
    )
    service.run(EPOCHS)
    return service


def test_churn_day_matches_baseline_and_keeps_the_invariants():
    service = churn_day()
    counts = service.log.counts()

    # --- The day must actually churn for the guard to mean anything.
    assert counts.get("preempt_warning", 0) > 0
    assert counts.get("preempt_reclaim", 0) > 0
    assert counts.get("autoscale", 0) >= 2

    # --- Invariant: no mission-critical tenant ever on a spot node.
    # Durable ids never change (growth mints spot only, shrink releases
    # idle spot only), so the final durable set covers the whole day.
    durable = set(service.provider.durable_nodes())
    qos_of = {}
    for event in service.log.of_kind("arrival"):
        payload = dict(event.payload)
        qos_of[payload["job"]] = payload["qos_target"]
    for event in service.log.of_kind("admit"):
        payload = dict(event.payload)
        if qos_of[payload["job"]] is not None:
            assert set(payload["nodes"]) <= durable, (
                f"MC job {payload['job']} on {payload['nodes']} "
                f"(durable: {sorted(durable)})"
            )
    for event in service.log.of_kind("job_requeue"):
        payload = dict(event.payload)
        if payload["reason"] == "preempted":
            assert qos_of.get(payload["job"]) is None, (
                f"MC job {payload['job']} was preempted"
            )

    # --- Invariant: no admitted batch job lost — every resident evicted
    # by a reclaim reappears in the queue (requeued count matches the
    # preempted-resident count exactly).
    preempted_requeues = sum(
        1 for event in service.log.of_kind("job_requeue")
        if dict(event.payload)["reason"] == "preempted"
    )
    assert service.preempted_total == preempted_requeues
    assert service.requeued_total >= service.preempted_total

    # --- Invariant: the churn never costs a mission-critical tenant
    # its measured QoS bound.
    assert service.snapshots[-1].qos_violations_total == 0

    actual = {
        "counters": counts,
        "final": service.snapshots[-1].to_dict(),
    }

    if os.environ.get(UPDATE_ENV):
        BASELINE_PATH.write_text(
            json.dumps(
                {"epochs": EPOCHS, **actual}, sort_keys=True, indent=2
            )
            + "\n"
        )
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["epochs"] == EPOCHS
    assert actual["counters"] == baseline["counters"], (
        "the seeded churn day drifted; refresh the baseline if the "
        f"change is intentional ({UPDATE_ENV}=1)"
    )
    assert actual["final"] == baseline["final"]
