"""Tests for internal helpers."""

import numpy as np
import pytest

from repro._util import (
    child_rng,
    make_rng,
    mean,
    percent_error,
    stable_seed,
    weighted_mean,
)


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_same_seed_same_stream(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_none_allowed(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestChildRng:
    def test_deterministic_given_parent_state(self):
        a = child_rng(make_rng(7), "x")
        b = child_rng(make_rng(7), "x")
        assert a.random() == b.random()

    def test_different_labels_differ(self):
        parent = make_rng(7)
        a = child_rng(parent, "x")
        parent2 = make_rng(7)
        b = child_rng(parent2, "y")
        assert a.random() != b.random()


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_order_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_fits_32_bits(self):
        assert 0 <= stable_seed("workload", "solo", 3) < 2**32

    def test_label_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_seed("ab", "c") != stable_seed("a", "bc")


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestWeightedMean:
    def test_equal_weights(self):
        assert weighted_mean([2.0, 4.0], [1.0, 1.0]) == 3.0

    def test_unequal_weights(self):
        assert weighted_mean([2.0, 4.0], [3.0, 1.0]) == 2.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_mean([1.0], [0.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])


class TestPercentError:
    def test_exact(self):
        assert percent_error(1.0, 1.0) == 0.0

    def test_over(self):
        assert percent_error(1.2, 1.0) == pytest.approx(20.0)

    def test_under(self):
        assert percent_error(0.8, 1.0) == pytest.approx(20.0)

    def test_zero_actual(self):
        with pytest.raises(ValueError):
            percent_error(1.0, 0.0)
