"""Smoke tests: every experiment runs end-to-end on a reduced scale.

These use a dedicated shared context with reduced sampling; they check
structure and the paper's headline directions, not exact numbers (the
benchmarks regenerate the full artifacts).
"""

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.fig2_motivation import run_fig2
from repro.experiments.fig3_propagation import run_fig3
from repro.experiments.fig4_heterogeneity import run_fig4
from repro.experiments.fig8_validation import run_fig8
from repro.experiments.fig9_gems import run_fig9
from repro.experiments.table3_profiling import run_table3
from repro.experiments.table4_bubble_scores import run_table4
from repro.sim.runner import ClusterRunner

SUBSET = ["M.milc", "M.Gems", "H.KM"]


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(ClusterRunner(base_seed=55), policy_samples=10, seed=55)


class TestFig2:
    def test_headline_direction(self, context):
        result = run_fig2(context)
        assert result.counts[0] == 0 and result.real[0] == 1.0
        # One interfering node: reality far above the naive line.
        assert result.real[1] > result.naive[1] * 1.15
        text = result.render()
        assert "naive" in text and "real" in text


class TestFig3:
    def test_matrices_and_render(self, context):
        result = run_fig3(context, workloads=SUBSET)
        assert set(result.matrices) == set(SUBSET)
        curve = result.curve("M.milc", 8.0)
        assert curve[0] == 1.0 and curve[-1] > 1.5
        assert "pressure 8" in result.render("M.milc")


class TestFig4:
    def test_selection_and_margin(self, context):
        result = run_fig4(context, workloads=SUBSET)
        rows = result.table2_rows()
        assert len(rows) == 3
        best = {w: policy for w, policy, _err, _sd in rows}
        assert best["M.Gems"] == "INTERPOLATE"
        assert result.population_size == 12870
        assert result.best_policy_margin("M.milc") > 0
        assert "INTERPOLATE" in result.render_table2()


class TestTable3:
    def test_cost_accuracy_tradeoff(self, context):
        result = run_table3(context, workloads=["M.milc"])
        rows = {name: (cost, err) for name, cost, err in result.table3_rows()}
        assert rows["binary-optimized"][0] < rows["binary-brute"][0]
        assert rows["binary-brute"][1] < rows["random-30%"][1]
        assert "binary-optimized" in result.render_table3()
        assert result.per_app_errors()["binary-brute"]["M.milc"] >= 0


class TestTable4:
    def test_scores(self, context):
        result = run_table4(context, workloads=["C.libq", "H.KM"])
        assert result.scores["C.libq"] > result.scores["H.KM"]
        assert "C.libq" in result.render()


class TestFig8:
    def test_errors_reasonable(self, context):
        result = run_fig8(context, targets=["M.lmps"], co_runners=SUBSET)
        summary = result.summary("M.lmps")
        assert summary.count == 3
        assert summary.mean < 25.0
        assert "M.lmps" in result.render()


class TestFig9:
    def test_gems_corun(self, context):
        result = run_fig9(context, targets=["M.milc", "H.KM"])
        assert len(result.errors()) == 2
        assert all(a >= 0.9 for a in result.actual)
        assert "M.milc" in result.render()
