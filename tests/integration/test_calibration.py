"""Calibration integration tests: the substrate reproduces Section 3.2.

These tests pin the qualitative claims of the paper's characterization
— the three propagation classes and the bubble-score ordering — which
every downstream experiment depends on.
"""

import pytest

from repro.core.scoring import BubbleScoreMeter


class TestPropagationClasses:
    def test_high_propagation_jumps_at_one_node(self, catalog_runner):
        # M.milc: a single interfering node captures most of the
        # all-nodes damage (Figure 3's high-propagation shape).
        one = catalog_runner.measure("M.milc", 8.0, 1)
        all_nodes = catalog_runner.measure("M.milc", 8.0, 8)
        assert one > 1.7
        # Far above the proportional expectation of 1/8 of the damage.
        assert (one - 1.0) / (all_nodes - 1.0) > 0.35

    def test_proportional_propagation_grows_gradually(self, catalog_runner):
        # M.Gems: the first interfering node causes only a modest share
        # of the total damage, growing roughly linearly (Section 3.2).
        one = catalog_runner.measure("M.Gems", 8.0, 1)
        four = catalog_runner.measure("M.Gems", 8.0, 4)
        all_nodes = catalog_runner.measure("M.Gems", 8.0, 8)
        assert (one - 1.0) / (all_nodes - 1.0) < 0.3
        assert one < four < all_nodes

    def test_low_propagation_resilient(self, catalog_runner):
        # H.KM reacts far less than the high-propagation codes even at
        # the maximum bubble pressure.
        assert catalog_runner.measure("H.KM", 8.0, 8) < 1.7
        assert catalog_runner.measure("H.KM", 8.0, 8) < (
            catalog_runner.measure("M.milc", 8.0, 8) - 0.7
        )

    def test_naive_model_breaks_on_lammps(self, catalog_runner):
        # Figure 2's motivation: lammps with one interfering node is
        # far above the naive 1/8 proportional expectation.
        one = catalog_runner.measure("M.lmps", 8.0, 1)
        all_nodes = catalog_runner.measure("M.lmps", 8.0, 8)
        naive_expectation = 1.0 + (all_nodes - 1.0) / 8.0
        assert one > naive_expectation * 1.2


class TestBubbleScoreOrdering:
    def test_table4_extremes(self, catalog_runner):
        meter = BubbleScoreMeter(catalog_runner)
        libq = meter.score("C.libq")
        kmeans = meter.score("H.KM")
        assert libq > 6.0  # paper: 6.6
        assert kmeans < 0.5  # paper: 0.2

    def test_scores_close_to_table4(self, catalog_runner):
        meter = BubbleScoreMeter(catalog_runner)
        paper = {"M.milc": 4.3, "N.mg": 5.0, "M.zeus": 1.4, "S.PR": 0.7}
        for abbrev, expected in paper.items():
            assert meter.score(abbrev) == pytest.approx(expected, abs=0.6), abbrev
