"""Seeded decision-difference guard for the NETWORK domain
(``-m network_smoke``).

Deselected from the default run (it profiles two full models and runs
two annealing searches); the CI ``network-smoke`` job runs it
explicitly.  The guarded property is the tentpole's acceptance
criterion: on a seeded day with a network-heavy tenant in the mix, the
per-resource model must make at least one *placement decision* that
differs from the compute-only model's — and ground truth must side
with the per-resource model.

The scenario is the one ``examples/network_day.py`` walks through: a
QoS-bound graph job (``D.BFS``), a parameter-server trainer (``D.PS``)
whose compute bubble score is deceptively low, and two loud compute
tenants.  The compute-only model shields the QoS tenant with the
trainer and violates the bound in ground truth; the per-resource model
maps the trainer away and satisfies it.
"""

import pytest

from repro.core.builder import build_model, build_network_profiles
from repro.core.model import InterferenceModel
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import InstanceSpec
from repro.placement.objectives import QoSConstraint
from repro.placement.qos import QoSAwarePlacer
from repro.sim.runner import ClusterRunner

pytestmark = pytest.mark.network_smoke

QOS_BOUND = 1.15


@pytest.fixture(scope="module")
def scenario():
    runner = ClusterRunner()
    report = build_model(
        runner, ["D.BFS", "D.PS", "M.milc"],
        policy_samples=20, seed=2, span=4,
    )
    model = report.model
    from repro.core.builder import build_batch_profiles

    build_batch_profiles(runner, model, ["C.libq"], span=4)
    compute_only = InterferenceModel.from_dict(model.to_dict())
    build_network_profiles(runner, model, ["D.BFS", "D.PS"], span=4)
    return runner, compute_only, model


def place_with(model, runner):
    instances = [
        InstanceSpec("D.BFS#0", "D.BFS", num_units=4),
        InstanceSpec("D.PS#1", "D.PS", num_units=4),
        InstanceSpec("M.milc#2", "M.milc", num_units=4),
        InstanceSpec("C.libq#3", "C.libq", num_units=4),
    ]
    constraint = QoSConstraint("D.BFS#0", max_normalized_time=QOS_BOUND)
    placer = QoSAwarePlacer(
        model, runner.spec, [constraint],
        schedule=AnnealingSchedule(iterations=1500, restarts=2), seed=11,
    )
    result = placer.place(instances)
    measured = runner.run_deployments(result.placement.deployments())
    neighbours = frozenset(
        workload
        for workloads in result.placement.co_runner_workloads(
            "D.BFS#0"
        ).values()
        for workload in workloads
    )
    return neighbours, measured, constraint


class TestNetworkDayDecisions:
    def test_models_decide_differently_and_truth_sides_with_network(
        self, scenario
    ):
        runner, compute_only, per_resource = scenario
        compute_nb, compute_measured, constraint = place_with(
            compute_only, runner
        )
        network_nb, network_measured, _ = place_with(per_resource, runner)

        # At least one decision differs: the QoS tenant's neighbourhood.
        assert compute_nb != network_nb
        # The compute-only model shields with the deceptively quiet
        # trainer and busts the bound in ground truth.
        assert "D.PS" in compute_nb
        assert not constraint.satisfied_by(compute_measured)
        # The per-resource model maps the trainer away and satisfies it.
        assert "D.PS" not in network_nb
        assert constraint.satisfied_by(network_measured)

    def test_deception_is_real(self, scenario):
        # The scenario only demonstrates something if D.PS really is
        # compute-quiet and network-loud in the *profiled* model.
        _, _, per_resource = scenario
        profile = per_resource.profile("D.PS")
        assert profile.bubble_score < 2.0
        assert profile.network_score > 4.0
