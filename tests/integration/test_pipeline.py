"""End-to-end integration: profile -> model -> predict -> place.

Uses the real catalog on the real 8-node environment but with reduced
sampling so the whole pipeline stays fast.
"""

import pytest

from repro.core.builder import build_batch_profiles, build_model
from repro.core.naive import NaiveProportionalModel
from repro.core.profile_store import load_model, save_model
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import InstanceSpec
from repro.placement.objectives import predict_placement, weighted_total_time
from repro.placement.throughput import ThroughputPlacer
from repro.sim.runner import ClusterRunner

WORKLOADS = ["M.lmps", "M.Gems", "H.KM"]


@pytest.fixture(scope="module")
def built(catalog_runner_module):
    report = build_model(
        catalog_runner_module, WORKLOADS, policy_samples=12, seed=3
    )
    build_batch_profiles(catalog_runner_module, report.model, ["C.libq"])
    return report


@pytest.fixture(scope="module")
def catalog_runner_module():
    return ClusterRunner(base_seed=123)


class TestModelConstruction:
    def test_profiles_all_workloads(self, built):
        assert set(built.model.workloads) == set(WORKLOADS) | {"C.libq"}

    def test_bubble_scores_ordered_like_table4(self, built):
        scores = built.bubble_scores
        # Table 4 ordering: Gems (2.4) > lammps (1.0) > K-means (0.2).
        assert scores["M.Gems"] > scores["M.lmps"] > scores["H.KM"]

    def test_profiling_cost_below_exhaustive(self, built):
        for outcome in built.profiling_outcomes.values():
            assert outcome.cost_percent < 50.0

    def test_matrices_complete(self, built):
        for abbrev in WORKLOADS:
            assert built.model.profile(abbrev).matrix.is_complete()


class TestPredictionQuality:
    def test_homogeneous_prediction_close_to_fresh_run(
        self, built, catalog_runner_module
    ):
        predicted = built.model.predict_homogeneous("M.lmps", 6.0, 4)
        actual = catalog_runner_module.measure("M.lmps", 6.0, 4, rep=77)
        assert predicted == pytest.approx(actual, rel=0.12)

    def test_pairwise_corun_prediction(self, built, catalog_runner_module):
        score = built.model.profile("C.libq").bubble_score
        predicted = built.model.predict_heterogeneous("M.lmps", [score] * 8)
        actual = catalog_runner_module.corun_pair("M.lmps", "C.libq", rep=7)[
            "M.lmps#0"
        ]
        assert predicted == pytest.approx(actual, rel=0.2)


class TestStoreRoundtrip:
    def test_save_load_predicts_identically(self, built, tmp_path):
        path = tmp_path / "model.json"
        save_model(built.model, path)
        loaded = load_model(path)
        assert loaded.predict_homogeneous("M.Gems", 5.0, 3) == pytest.approx(
            built.model.predict_homogeneous("M.Gems", 5.0, 3)
        )


class TestPlacementPipeline:
    def test_best_beats_worst_in_prediction(self, built, catalog_runner_module):
        instances = [
            InstanceSpec("M.lmps#0", "M.lmps"),
            InstanceSpec("M.Gems#1", "M.Gems"),
            InstanceSpec("H.KM#2", "H.KM"),
            InstanceSpec("C.libq#3", "C.libq"),
        ]
        placer = ThroughputPlacer(
            built.model,
            catalog_runner_module.spec,
            schedule=AnnealingSchedule(iterations=400, restarts=2),
            seed=5,
        )
        best = placer.best(instances)
        worst = placer.worst(instances)
        best_total = weighted_total_time(best.predictions, best.placement)
        worst_total = weighted_total_time(worst.predictions, worst.placement)
        assert best_total < worst_total

    def test_naive_shares_profiles(self, built):
        naive = NaiveProportionalModel(built.model)
        assert naive.workloads == built.model.workloads
        full = built.model.profile("M.lmps").matrix.max_count
        assert naive.predict_homogeneous("M.lmps", 8.0, full) == pytest.approx(
            built.model.predict_homogeneous("M.lmps", 8.0, full)
        )
