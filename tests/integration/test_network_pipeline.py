"""End-to-end tests for the network profiling campaign.

Two contracts: ``build_network_profiles`` adds the NETWORK domain to
an existing model without disturbing a single compute-domain bit, and
flat-network models never leave the scalar-era code paths at all.
"""

import numpy as np
import pytest

from repro.apps.base import Workload
from repro.apps.mpi import BSPWorkload, CollectiveType
from repro.cluster.cluster import ClusterSpec
from repro.cluster.contention import ContentionDomain, LinearSensitivity
from repro.cluster.topology import SwitchTopology
from repro.core.builder import build_model, build_network_profiles
from repro.core.model import NETWORK_POLICY, InterferenceModel
from repro.core.profiling.plan import MeasurementOracle
from repro.errors import ModelError
from repro.sim.runner import ClusterRunner
from tests._synthetic import QUIET_NOISE, synthetic_spec


class _SyncFactory:
    """Workloads that pay a collective cost, so links matter."""

    def __init__(self, **overrides) -> None:
        self.overrides = overrides

    def __call__(self, abbrev: str) -> Workload:
        return BSPWorkload(
            synthetic_spec(abbrev, **self.overrides.get(abbrev, {})),
            iterations=4,
            collective=CollectiveType.ALLREDUCE,
            topology=SwitchTopology(base_latency=0.5, per_node_cost=0.05),
        )


def sync_runner() -> ClusterRunner:
    overrides = {
        "vic": {
            "net_sensitivity": LinearSensitivity(max_slowdown=3.0),
            "net_score": 4.0,
        },
    }
    return ClusterRunner(
        ClusterSpec(num_nodes=4, cores_per_node=16),
        noise=QUIET_NOISE,
        base_seed=1,
        workload_factory=_SyncFactory(**overrides),
    )


@pytest.fixture(scope="module")
def built():
    runner = sync_runner()
    report = build_model(
        runner, ["vic", "plain"], policy_samples=6, seed=3
    )
    model = report.model
    snapshot = InterferenceModel.from_dict(model.to_dict())
    outcomes = build_network_profiles(runner, model, ["vic"])
    return runner, model, snapshot, outcomes


SETTINGS = [
    ("vic", (4.0, 2.0)),
    ("vic", [6.0, 2.0, 0.0, 0.0]),
    ("plain", (8.0, 4.0)),
    ("plain", [3.0, 3.0, 3.0, 3.0]),
]


class TestNetworkCampaign:
    def test_network_fields_populated(self, built):
        _, model, _, outcomes = built
        profile = model.profile("vic")
        assert profile.network_matrix is not None
        assert profile.network_score > 2.0
        assert outcomes["vic"].settings_measured > 0
        assert model.has_network

    def test_network_policy_is_all_max(self, built):
        # No policy selection runs for the network domain: the
        # bottleneck link gates collectives, so ALL-max is forced.
        _, model, _, _ = built
        vector = [6.0, 0.0, 0.0, 0.0]
        assert model.predict(
            "vic", vector, domain=ContentionDomain.NETWORK
        ) == model.predict(
            "vic", [6.0, 6.0, 6.0, 6.0], domain=ContentionDomain.NETWORK
        )
        assert NETWORK_POLICY == "ALL MAX"

    def test_requires_compute_profile_first(self, built):
        runner, model, _, _ = built
        with pytest.raises(ModelError, match="no interference profile"):
            build_network_profiles(runner, model, ["ghost"])

    def test_network_prediction_tracks_ground_truth(self, built):
        runner, model, _, _ = built
        predicted = model.predict(
            "vic", (6.0, 4.0), domain=ContentionDomain.NETWORK
        )
        measured = runner.measure_network("vic", 6.0, 4)
        assert predicted == pytest.approx(measured, rel=0.05)


class TestComputeBitIdentity:
    """Adding the NETWORK domain may not move one compute-domain bit."""

    def test_scalar_predictions_unchanged(self, built):
        _, model, snapshot, _ = built
        for workload, interference in SETTINGS:
            assert model.predict(workload, interference) == snapshot.predict(
                workload, interference
            )

    def test_batch_predictions_unchanged(self, built):
        _, model, snapshot, _ = built
        assert np.array_equal(
            model.predict_batch(SETTINGS), snapshot.predict_batch(SETTINGS)
        )

    def test_compute_matrix_serialization_unchanged(self, built):
        _, model, snapshot, _ = built
        for workload in ("vic", "plain"):
            before = snapshot.profile(workload).to_dict()
            after = model.profile(workload).to_dict()
            for key in before:
                assert before[key] == after[key], (workload, key)

    def test_quiet_corunners_leave_combined_at_compute(self, built):
        # A co-runner with no network score exerts zero link pressure:
        # the network factor is exactly 1.0 and the combined value is
        # bit-equal to the compute-only one.
        _, model, snapshot, _ = built
        nodes = [0, 1]
        co_runners = {0: ["plain"], 1: ["plain"]}
        assert model.predict_under_corunners(
            "vic", nodes, co_runners
        ) == snapshot.predict_under_corunners("vic", nodes, co_runners)

    def test_loud_corunners_raise_combined_above_compute(self, built):
        _, model, snapshot, _ = built
        nodes = [0, 1]
        co_runners = {0: ["vic"], 1: ["vic"]}
        combined = model.predict_under_corunners("plain", nodes, co_runners)
        compute_only = snapshot.predict_under_corunners(
            "plain", nodes, co_runners
        )
        # 'plain' has no network profile: graceful compute-only even
        # though the model itself carries the domain.
        assert combined == compute_only
        assert model.predict_under_corunners(
            "vic", nodes, {0: ["vic"]}
        ) > snapshot.predict_under_corunners("vic", nodes, {0: ["vic"]})


class TestOracleRouting:
    def test_network_oracle_measures_link_noise(self, built):
        runner, _, _, _ = built
        oracle = MeasurementOracle(
            runner, "vic", domain=ContentionDomain.NETWORK
        )
        assert oracle.normalized(6.0, 2) == runner.measure_network(
            "vic", 6.0, 2
        )

    def test_compute_oracle_unchanged(self, built):
        runner, _, _, _ = built
        oracle = MeasurementOracle(runner, "vic")
        assert oracle.normalized(6.0, 2) == runner.measure("vic", 6.0, 2)

    def test_domains_use_disjoint_measurements(self, built):
        runner, _, _, _ = built
        compute = MeasurementOracle(runner, "vic").normalized(6.0, 2)
        network = MeasurementOracle(
            runner, "vic", domain=ContentionDomain.NETWORK
        ).normalized(6.0, 2)
        assert compute != network
