"""Hot-path performance regression guards (``-m perf_smoke``).

Deselected from the default test run (timing assertions are
machine-sensitive); CI runs them explicitly and fails if a hot path
regresses more than :data:`REGRESSION_FACTOR` x against the checked-in
baseline in ``benchmarks/baselines/perf_hotpaths.json``.

To refresh the baseline after an intentional perf change::

    REPRO_UPDATE_PERF_BASELINE=1 PYTHONPATH=src python -m pytest -m perf_smoke
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.placement.annealing import AnnealingSchedule, SimulatedAnnealingPlacer
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import WeightedTimeEnergy
from repro.sim.runner import MeasurementRequest
from tests._synthetic import quiet_runner

pytestmark = pytest.mark.perf_smoke

BASELINE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "perf_hotpaths.json"
)

#: Set this environment variable to re-record the baseline instead of
#: asserting against it.
UPDATE_ENV = "REPRO_UPDATE_PERF_BASELINE"

#: Allowed slowdown against the recorded baseline before the guard
#: trips.  2x absorbs machine and load variance while still catching
#: accidental algorithmic regressions (which are typically >= 3x).
REGRESSION_FACTOR = 2.0


def _best_of(fn, rounds: int = 3) -> float:
    """Minimum wall-clock over a few rounds (noise-resistant)."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _check(key: str, elapsed: float) -> None:
    if os.environ.get(UPDATE_ENV):
        data = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists()
            else {}
        )
        data[key] = round(elapsed, 4)
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        return
    baseline = float(json.loads(BASELINE_PATH.read_text())[key])
    assert elapsed <= REGRESSION_FACTOR * baseline, (
        f"{key} took {elapsed:.3f}s; baseline {baseline:.3f}s "
        f"(limit {REGRESSION_FACTOR}x)"
    )


def _smoke_model() -> InterferenceModel:
    pressures = [4.0, 8.0]
    counts = [0.0, 1.0, 2.0, 3.0, 4.0]
    values = np.array(
        [[1.0 + 0.1 * p * c / 8.0 for c in range(5)] for p in pressures]
    )
    matrix = PropagationMatrix(pressures, counts, values)
    profiles = {
        name: InterferenceProfile(
            workload=name, matrix=matrix, policy_name="N+1 MAX",
            bubble_score=score,
        )
        for name, score in (("loud", 8.0), ("quiet", 0.5), ("mid", 2.0))
    }
    return InterferenceModel(profiles)


def test_incremental_search_not_regressed():
    model = _smoke_model()
    spec = ClusterSpec(num_nodes=24)
    kinds = ("loud", "quiet", "mid")
    instances = [
        InstanceSpec(f"{kinds[i % 3]}#{i}", kinds[i % 3], 4) for i in range(12)
    ]
    initial = Placement.random(spec, instances, seed=5)
    schedule = AnnealingSchedule(iterations=600, restarts=1)

    def run():
        SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=schedule, seed=2
        ).search_from(initial)

    _check("incremental_search_s", _best_of(run))


def test_disabled_tracing_overhead_within_3_percent():
    """Instrumentation left disabled must stay in the noise.

    Measures the per-call cost of the null recorder directly (the
    module-attribute lookup plus the no-op call — exactly what every
    instrumented hot site pays) and checks that the calls an annealing
    search performs sum to under 3% of the recorded
    ``incremental_search_s`` baseline.  This bounds the overhead
    analytically instead of re-timing the search, so the assertion is
    not hostage to machine load the way a wall-clock A/B diff is.
    """
    from repro.obs import recorder as _obs

    assert _obs.RECORDER is _obs.NULL_RECORDER

    calls = 200_000

    def null_calls():
        for _ in range(calls):
            _obs.RECORDER.count("x")

    per_call = _best_of(null_calls) / calls
    # The instrumented search_from path: one span plus four counters
    # per restart — spans cost about the same as a counter call on the
    # disabled path (shared NULL_SPAN, no allocation).
    ops_per_search = 5
    baseline = float(
        json.loads(BASELINE_PATH.read_text())["incremental_search_s"]
    )
    overhead = per_call * ops_per_search
    assert overhead <= 0.03 * baseline, (
        f"disabled tracing costs {overhead * 1e6:.2f}us per search vs "
        f"3% budget {0.03 * baseline * 1e3:.2f}ms"
    )


def test_measurement_batch_not_regressed():
    requests = [
        MeasurementRequest.measure("app", pressure, count)
        for pressure in (2.0, 4.0, 6.0, 8.0)
        for count in (1, 2, 3, 4)
    ]

    def run():
        # Fresh runner per round so memo caches never mask the cost;
        # several rounds keep the measurement out of timer-noise range.
        for _ in range(8):
            quiet_runner(num_nodes=4).measure_many(requests)

    _check("measurement_batch_s", _best_of(run))


def _smoke_placement(num_instances: int, num_nodes: int) -> Placement:
    kinds = ("loud", "quiet", "mid")
    spec = ClusterSpec(num_nodes=num_nodes)
    instances = [
        InstanceSpec(f"{kinds[i % 3]}#{i}", kinds[i % 3], 4)
        for i in range(num_instances)
    ]
    return Placement.random(spec, instances, seed=9)


def test_full_placement_batch_not_regressed():
    model = _smoke_model()
    placement = _smoke_placement(num_instances=24, num_nodes=56)
    batch = model.predict_placement_batch(placement)
    from repro.placement.objectives import predict_placement_scalar

    assert batch == predict_placement_scalar(model, placement)

    def run():
        for _ in range(40):
            model.predict_placement_batch(placement)

    _check("full_placement_batch_s", _best_of(run))


def test_admission_wave_batch_not_regressed():
    from repro.service.admission import AdmissionController
    from repro.service.jobs import Job

    model = _smoke_model()
    kinds = ("loud", "quiet", "mid")
    num_nodes = 20
    spec = ClusterSpec(num_nodes=num_nodes)
    # Nodes 0-7 offer one free slot, the rest are full: an arriving
    # 4-unit job enumerates C(8, 4) = 70 candidate placements.
    slots = list(range(8)) + [
        node for node in range(8, num_nodes) for _ in range(2)
    ]
    tenants, instances, assignment = [], [], {}
    for i in range(8):
        job = Job(
            job_id=f"tenant-{i}",
            workload=kinds[i % 3],
            num_units=4,
            qos_target=2.5 if i % 2 == 0 else None,
        )
        tenants.append(job)
        instances.append(job.instance_spec())
        assignment[job.job_id] = tuple(slots[i::8])
    placement = Placement(spec, instances, assignment, unit_slots_per_node=2)
    controller = AdmissionController(model, spec)
    job = Job(job_id="arriving", workload="mid", num_units=4, qos_target=2.5)

    def run():
        for _ in range(5):
            controller.try_admit(placement, tenants, job)

    _check("admission_wave_batch_s", _best_of(run))
