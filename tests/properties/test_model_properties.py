"""Property-based tests for model-layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.policies import all_policies

vectors = st.lists(
    st.floats(min_value=0.0, max_value=8.0), min_size=2, max_size=8
)


def monotone_matrix():
    pressures = [2.0, 4.0, 6.0, 8.0]
    counts = [0.0, 1.0, 2.0, 3.0, 4.0]
    values = np.array(
        [
            [1.0 + 0.1 * p * c / 8.0 for c in counts]
            for p in pressures
        ]
    )
    values[:, 0] = 1.0
    return PropagationMatrix(pressures, counts, values)


class TestLookupProperties:
    @given(
        pressure=st.floats(min_value=0.0, max_value=8.0),
        count=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=100)
    def test_lookup_at_least_one(self, pressure, count):
        value = monotone_matrix().lookup(HomogeneousSetting(pressure, count))
        assert value >= 1.0 - 1e-12

    @given(
        p1=st.floats(min_value=0.0, max_value=8.0),
        p2=st.floats(min_value=0.0, max_value=8.0),
        count=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=100)
    def test_lookup_monotone_in_pressure(self, p1, p2, count):
        matrix = monotone_matrix()
        lo, hi = sorted([p1, p2])
        assert matrix.lookup(HomogeneousSetting(lo, count)) <= (
            matrix.lookup(HomogeneousSetting(hi, count)) + 1e-9
        )

    @given(
        pressure=st.floats(min_value=0.0, max_value=8.0),
        c1=st.floats(min_value=0.0, max_value=4.0),
        c2=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=100)
    def test_lookup_monotone_in_count(self, pressure, c1, c2):
        matrix = monotone_matrix()
        lo, hi = sorted([c1, c2])
        assert matrix.lookup(HomogeneousSetting(pressure, lo)) <= (
            matrix.lookup(HomogeneousSetting(pressure, hi)) + 1e-9
        )


class TestModelProperties:
    def _model(self, policy):
        profile = InterferenceProfile(
            workload="app",
            matrix=monotone_matrix(),
            policy_name=policy,
            bubble_score=3.0,
        )
        return InterferenceModel({"app": profile})

    @given(vector=vectors)
    @settings(max_examples=60)
    def test_prediction_at_least_one_for_all_policies(self, vector):
        for policy in all_policies():
            model = self._model(policy.name)
            assert model.predict_heterogeneous("app", vector) >= 1.0 - 1e-9

    @given(vector=vectors)
    @settings(max_examples=60)
    def test_all_max_upper_bounds_other_policies(self, vector):
        # ALL MAX converts to the most pessimistic setting, so on a
        # monotone matrix it dominates every other policy's prediction.
        predictions = {
            policy.name: self._model(policy.name).predict_heterogeneous(
                "app", vector
            )
            for policy in all_policies()
        }
        for name, value in predictions.items():
            assert value <= predictions["ALL MAX"] + 1e-9, name

    @given(vector=vectors)
    @settings(max_examples=60)
    def test_homogeneous_vector_policy_agreement(self, vector):
        # When every node carries the same nonzero pressure, the three
        # max-family policies agree exactly (peak == everything).
        level = max(vector)
        if level == 0:
            return
        uniform = [level] * len(vector)
        values = {
            policy.name: self._model(policy.name).predict_heterogeneous(
                "app", uniform
            )
            for policy in all_policies()
        }
        assert values["N MAX"] == pytest.approx(values["ALL MAX"])
        assert values["N+1 MAX"] == pytest.approx(values["ALL MAX"])
        assert values["INTERPOLATE"] == pytest.approx(values["ALL MAX"])
