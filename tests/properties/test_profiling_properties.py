"""Property-based tests for the profiling algorithms.

Random monotone response surfaces stand in for arbitrary workloads:
whatever the surface, the profilers must terminate, fill the matrix,
respect their cost accounting, and (for binary-brute) keep the
interpolation error commensurate with the subdivision threshold.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiling.binary import binary_brute, binary_optimized
from repro.core.profiling.random_sampling import random_sampling

PRESSURES = [float(p) for p in range(1, 9)]
COUNTS = [float(c) for c in range(9)]


class SurfaceOracle:
    """Monotone separable surface with parameterized shape."""

    def __init__(self, amplitude, pressure_curve, count_curve):
        self.abbrev = "surface"
        self.calls = 0
        self._amplitude = amplitude
        self._pc = pressure_curve
        self._cc = count_curve

    def normalized(self, pressure, count):
        if pressure == 0 or count == 0:
            return 1.0
        self.calls += 1
        p_frac = (pressure / 8.0) ** self._pc
        c_frac = (count / 8.0) ** self._cc
        return 1.0 + self._amplitude * p_frac * c_frac

    def truth(self, matrix):
        errors = []
        for i, p in enumerate(PRESSURES):
            for j, c in enumerate(COUNTS[1:], start=1):
                true = 1.0 + self._amplitude * (p / 8.0) ** self._pc * (
                    (c / 8.0) ** self._cc
                )
                errors.append(abs(matrix.get(i, j) - true) / true)
        return float(np.mean(errors)) * 100.0


surfaces = st.builds(
    SurfaceOracle,
    amplitude=st.floats(min_value=0.0, max_value=2.0),
    pressure_curve=st.floats(min_value=0.3, max_value=3.0),
    count_curve=st.floats(min_value=0.1, max_value=3.0),
)


class TestBinaryBruteProperties:
    @given(oracle=surfaces)
    @settings(max_examples=40, deadline=None)
    def test_completes_with_bounded_cost(self, oracle):
        outcome = binary_brute(oracle, PRESSURES, COUNTS, threshold=0.05)
        assert outcome.matrix.is_complete()
        assert 0 < outcome.settings_measured <= 64
        assert outcome.settings_measured == oracle.calls

    @given(oracle=surfaces)
    @settings(max_examples=40, deadline=None)
    def test_error_commensurate_with_threshold(self, oracle):
        # Any skipped interval's endpoints differ by <= threshold, so
        # linear interpolation inside it is off by at most ~threshold.
        outcome = binary_brute(oracle, PRESSURES, COUNTS, threshold=0.05)
        assert oracle.truth(outcome.matrix) <= 6.0

    @given(oracle=surfaces)
    @settings(max_examples=30, deadline=None)
    def test_tighter_threshold_never_cheaper(self, oracle):
        loose = binary_brute(
            SurfaceOracle(oracle._amplitude, oracle._pc, oracle._cc),
            PRESSURES, COUNTS, threshold=0.2,
        )
        tight = binary_brute(
            SurfaceOracle(oracle._amplitude, oracle._pc, oracle._cc),
            PRESSURES, COUNTS, threshold=0.02,
        )
        assert tight.settings_measured >= loose.settings_measured


class TestBinaryOptimizedProperties:
    @given(oracle=surfaces)
    @settings(max_examples=40, deadline=None)
    def test_completes_and_cheaper_than_brute(self, oracle):
        optimized = binary_optimized(
            SurfaceOracle(oracle._amplitude, oracle._pc, oracle._cc),
            PRESSURES, COUNTS, threshold=0.05,
        )
        brute = binary_brute(
            SurfaceOracle(oracle._amplitude, oracle._pc, oracle._cc),
            PRESSURES, COUNTS, threshold=0.05,
        )
        assert optimized.matrix.is_complete()
        assert optimized.settings_measured <= brute.settings_measured

    @given(oracle=surfaces)
    @settings(max_examples=40, deadline=None)
    def test_separable_surfaces_reconstruct_well(self, oracle):
        # binary-optimized's reconstruction assumes shape similarity
        # across pressures; separable surfaces satisfy it exactly, so
        # the only error left is interpolation.
        outcome = binary_optimized(oracle, PRESSURES, COUNTS, threshold=0.05)
        assert oracle.truth(outcome.matrix) <= 7.0

    @given(oracle=surfaces)
    @settings(max_examples=40, deadline=None)
    def test_values_at_least_one(self, oracle):
        outcome = binary_optimized(oracle, PRESSURES, COUNTS, threshold=0.05)
        assert (outcome.matrix.values >= 1.0 - 1e-9).all()


class TestRandomSamplingProperties:
    @given(
        oracle=surfaces,
        fraction=st.floats(min_value=0.15, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_and_completeness(self, oracle, fraction, seed):
        outcome = random_sampling(
            oracle, PRESSURES, COUNTS, fraction=fraction, seed=seed
        )
        assert outcome.matrix.is_complete()
        budget = max(len(PRESSURES), round(fraction * 64))
        assert outcome.settings_measured <= budget + 1
