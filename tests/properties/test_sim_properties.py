"""Property-based tests for simulator invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.execution import CoRunExecutor, DeployedInstance
from tests._synthetic import QUIET_NOISE, bsp_workload

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
)


class TestEngineProperties:
    @given(delay_list=delays)
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_order(self, delay_list):
        engine = Engine()
        fired = []
        for delay in delay_list:
            engine.schedule(delay, lambda d=delay: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delay_list)

    @given(delay_list=delays)
    @settings(max_examples=50, deadline=None)
    def test_final_time_is_max_delay(self, delay_list):
        engine = Engine()
        for delay in delay_list:
            engine.schedule(delay, lambda: None)
        assert engine.run() == max(delay_list)


class TestExecutionProperties:
    @given(
        iterations=st.integers(min_value=1, max_value=6),
        units=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_solo_time_matches_base_time(self, iterations, units, seed):
        # In the quiet environment a BSP solo run takes exactly its
        # base_time regardless of scale (weak scaling) and seed.
        workload = bsp_workload(iterations=iterations, base_time=7.0)
        instance = DeployedInstance(
            "app", workload, {i: i for i in range(units)}
        )
        results = CoRunExecutor([instance], seed=seed, noise=QUIET_NOISE).run()
        assert results["app"].finish_time == pytest.approx(7.0)

    @given(
        pressure_score=st.floats(min_value=0.0, max_value=8.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_interference_never_speeds_up(self, pressure_score, seed):
        target = bsp_workload("t", base_time=5.0, score=0.0)
        co = bsp_workload("c", score=pressure_score, base_time=500.0)
        solo = CoRunExecutor(
            [DeployedInstance("t", target, {0: 0, 1: 1})],
            seed=seed,
            noise=QUIET_NOISE,
        ).run()["t"].finish_time
        pressured = CoRunExecutor(
            [
                DeployedInstance("t", target, {0: 0, 1: 1}),
                DeployedInstance("c", co, {0: 1}),
            ],
            seed=seed,
            noise=QUIET_NOISE,
            sustained=True,
        ).run()["t"].finish_time
        assert pressured >= solo - 1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, seed):
        workload = bsp_workload(noise_cv=0.2)
        instance = DeployedInstance("app", workload, {0: 0, 1: 1})

        def once():
            return CoRunExecutor([instance], seed=seed).run()["app"].finish_time

        assert once() == once()
