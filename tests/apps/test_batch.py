"""Tests for single-node batch workloads."""

import pytest

from repro.apps.batch import BatchWorkload
from repro.errors import ConfigurationError
from tests._synthetic import batch_workload, synthetic_spec


class TestBatchWorkload:
    def test_single_stage(self):
        program = batch_workload(chunks=4).build_program(num_slots=8)
        assert len(program) == 1

    def test_static_chunks(self):
        stage = batch_workload(chunks=4).build_program(num_slots=8)[0]
        assert not stage.dynamic
        assert stage.n_tasks == 32
        assert stage.sync_cost == 0.0

    def test_per_instance_work(self):
        stage = batch_workload(chunks=5, base_time=10.0).build_program(4)[0]
        assert stage.task_time * 5 == pytest.approx(10.0)

    def test_invalid_chunks(self):
        with pytest.raises(ConfigurationError):
            BatchWorkload(synthetic_spec(), chunks=0)
