"""Tests for MapReduce workload programs."""

import pytest

from repro.apps.mapreduce import MapReduceWorkload
from repro.errors import ConfigurationError
from tests._synthetic import FREE_NETWORK, synthetic_spec


def make(rounds=2, **kwargs):
    return MapReduceWorkload(
        synthetic_spec("mr", base_time=12.0),
        rounds=rounds,
        topology=FREE_NETWORK,
        **kwargs,
    )


class TestMapReduceWorkload:
    def test_two_stages_per_round(self):
        program = make(rounds=3).build_program(num_slots=4)
        assert len(program) == 6
        assert [s.name for s in program[:2]] == ["map0", "reduce0"]

    def test_all_stages_dynamic(self):
        for stage in make().build_program(4):
            assert stage.dynamic

    def test_map_task_counts(self):
        program = make(rounds=1, map_tasks_per_slot=4, reduce_tasks_per_slot=1)
        stages = program.build_program(num_slots=4)
        assert stages[0].n_tasks == 16
        assert stages[1].n_tasks == 4

    def test_wall_time_budget(self):
        # One round at 12s with map_fraction 0.75: map wall time 9s,
        # reduce 3s, regardless of task granularity.
        stages = make(rounds=1, map_tasks_per_slot=3).build_program(num_slots=4)
        map_wall = stages[0].task_time * 3  # 3 waves per slot
        reduce_wall = stages[1].task_time * 1
        assert map_wall == pytest.approx(9.0)
        assert reduce_wall == pytest.approx(3.0)

    def test_shuffle_after_map_only(self):
        spec = synthetic_spec("mr")
        workload = MapReduceWorkload(spec, rounds=1)
        stages = workload.build_program(4)
        assert stages[0].sync_cost > 0.0
        assert stages[1].sync_cost == 0.0

    def test_invalid_rounds(self):
        with pytest.raises(ConfigurationError):
            MapReduceWorkload(synthetic_spec(), rounds=0)

    def test_invalid_map_fraction(self):
        with pytest.raises(ConfigurationError):
            MapReduceWorkload(synthetic_spec(), map_fraction=1.0)

    def test_invalid_tasks_per_slot(self):
        with pytest.raises(ConfigurationError):
            MapReduceWorkload(synthetic_spec(), map_tasks_per_slot=0)
