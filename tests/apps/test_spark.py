"""Tests for Spark workload programs."""

import pytest

from repro.apps.spark import SparkWorkload
from repro.errors import ConfigurationError
from tests._synthetic import FREE_NETWORK, synthetic_spec


def make(**kwargs):
    kwargs.setdefault("topology", FREE_NETWORK)
    return SparkWorkload(synthetic_spec("sp", base_time=10.0), **kwargs)


class TestSparkWorkload:
    def test_one_stage_per_weight(self):
        program = make(stage_weights=(1.0, 2.0, 1.0)).build_program(4)
        assert len(program) == 3

    def test_stage_weights_split_time(self):
        program = make(stage_weights=(1.0, 3.0), tasks_per_slot=2).build_program(4)
        wall0 = program[0].task_time * 2
        wall1 = program[1].task_time * 2
        assert wall0 == pytest.approx(2.5)
        assert wall1 == pytest.approx(7.5)

    def test_dynamic_tasks(self):
        for stage in make().build_program(4):
            assert stage.dynamic
            assert stage.n_tasks == 8  # 4 slots x 2 waves

    def test_selective_shuffles(self):
        workload = SparkWorkload(
            synthetic_spec("sp"), stage_weights=(1.0, 1.0, 1.0), shuffle_stages=(1,)
        )
        stages = workload.build_program(4)
        assert stages[0].sync_cost == 0.0
        assert stages[1].sync_cost > 0.0
        assert stages[2].sync_cost == 0.0

    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            SparkWorkload(synthetic_spec(), stage_weights=())

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            SparkWorkload(synthetic_spec(), stage_weights=(1.0, -1.0))

    def test_invalid_tasks_per_slot(self):
        with pytest.raises(ConfigurationError):
            SparkWorkload(synthetic_spec(), tasks_per_slot=0)

    def test_invalid_slots(self):
        with pytest.raises(ConfigurationError):
            make().build_program(0)
