"""Tests for MPI-style workload programs."""

import pytest

from repro.apps.mpi import BSPWorkload, CollectiveType, LooselyCoupledWorkload
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError
from tests._synthetic import bsp_workload, loose_workload, synthetic_spec


class TestBSPWorkload:
    def test_one_stage_per_iteration(self):
        workload = bsp_workload(iterations=5)
        program = workload.build_program(num_slots=8)
        assert len(program) == 5

    def test_static_binding_one_task_per_slot(self):
        program = bsp_workload(iterations=3).build_program(num_slots=8)
        for stage in program:
            assert stage.n_tasks == 8
            assert not stage.dynamic

    def test_per_slot_work_is_base_time(self):
        program = bsp_workload(iterations=4, base_time=12.0).build_program(8)
        assert sum(s.task_time for s in program) == pytest.approx(12.0)

    def test_allreduce_costs_more_than_barrier(self):
        spec = synthetic_spec()
        topo = SwitchTopology(base_latency=0.01, per_node_cost=0.001)
        allreduce = BSPWorkload(
            spec, iterations=2, collective=CollectiveType.ALLREDUCE, topology=topo
        ).build_program(8)
        barrier = BSPWorkload(
            spec, iterations=2, collective=CollectiveType.BARRIER, topology=topo
        ).build_program(8)
        none = BSPWorkload(
            spec, iterations=2, collective=CollectiveType.NONE, topology=topo
        ).build_program(8)
        assert allreduce[0].sync_cost > barrier[0].sync_cost > none[0].sync_cost
        assert none[0].sync_cost == 0.0

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            BSPWorkload(synthetic_spec(), iterations=0)

    def test_invalid_slots(self):
        with pytest.raises(ConfigurationError):
            bsp_workload().build_program(0)


class TestLooselyCoupledWorkload:
    def test_one_stage_per_phase(self):
        program = loose_workload(phases=3).build_program(num_slots=4)
        assert len(program) == 3

    def test_dynamic_shared_pool(self):
        program = loose_workload(phases=2, chunks_per_slot=4).build_program(4)
        for stage in program:
            assert stage.dynamic
            assert stage.n_tasks == 16  # 4 slots x 4 chunks

    def test_per_slot_work_is_base_time(self):
        workload = loose_workload(phases=2, chunks_per_slot=4, base_time=8.0)
        program = workload.build_program(4)
        # Each slot processes chunks_per_slot tasks per phase on average.
        per_slot = sum(s.task_time * s.n_tasks / 4 for s in program)
        assert per_slot == pytest.approx(8.0)

    def test_invalid_phases(self):
        with pytest.raises(ConfigurationError):
            LooselyCoupledWorkload(synthetic_spec(), phases=0)

    def test_invalid_chunks(self):
        with pytest.raises(ConfigurationError):
            LooselyCoupledWorkload(synthetic_spec(), chunks_per_slot=0)
