"""Per-resource ground-truth behaviour of the datacenter archetypes.

``D.PS`` (parameter server) must be *network-dominant*: a quiet
compute neighbour whose gradient pushes saturate its hosts' uplinks.
``D.BFS`` (graph traversal) is *mixed*: its frontier expansion is
cache-hungry while its frontier exchange rides the links.  These
asymmetries are what the per-resource prediction API exists to
capture, so they are pinned here against the simulated ground truth.
"""

from repro.apps import NETWORK_WORKLOADS, get_workload
from repro.sim.runner import ClusterRunner


def runner():
    return ClusterRunner(base_seed=7)


class TestSpecGroundTruth:
    def test_both_archetypes_generate_link_traffic(self):
        for abbrev in NETWORK_WORKLOADS:
            spec = get_workload(abbrev).spec
            assert spec.generated_network_pressure > 0.0, abbrev
            assert spec.network_sensitivity is not None, abbrev

    def test_paramserver_is_compute_quiet(self):
        # The deceptive profile: low compute score, high network score.
        spec = get_workload("D.PS").spec
        assert spec.generated_pressure < 2.0
        assert spec.generated_network_pressure > 4.0
        assert spec.generated_network_pressure > 2 * spec.generated_pressure


class TestParameterServerSensitivity:
    """D.PS suffers far more from link noise than from cache noise."""

    def test_network_dominant_at_matched_levels(self):
        env = runner()
        compute = env.measure("D.PS", 6.0, 4, span=4)
        network = env.measure_network("D.PS", 6.0, 4, span=4)
        assert network > 1.05
        assert (network - 1.0) > 1.5 * (compute - 1.0)

    def test_network_slowdown_monotone(self):
        env = runner()
        low = env.measure_network("D.PS", 2.0, 4, span=4)
        high = env.measure_network("D.PS", 8.0, 4, span=4)
        assert 1.0 <= low < high


class TestGraphTraversalSensitivity:
    """D.BFS is mixed: both resources bite, compute bites harder."""

    def test_sensitive_on_both_resources(self):
        env = runner()
        compute = env.measure("D.BFS", 6.0, 4, span=4)
        network = env.measure_network("D.BFS", 6.0, 4, span=4)
        assert compute > 1.05
        assert network > 1.05
        assert compute > network
