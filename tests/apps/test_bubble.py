"""Tests for the bubble interference generator."""

import pytest

from repro.apps.bubble import BUBBLE_MAX_SLOWDOWN, BubbleWorkload, bubble_sensitivity
from repro.errors import ConfigurationError
from repro.units import MAX_PRESSURE


class TestBubbleWorkload:
    def test_is_passive(self):
        assert BubbleWorkload(3.0).is_passive

    def test_empty_program(self):
        assert BubbleWorkload(3.0).build_program(4) == []

    def test_generates_its_level(self):
        bubble = BubbleWorkload(5.5)
        assert bubble.generated_pressure_for(0) == 5.5

    def test_level_bounds(self):
        with pytest.raises(ConfigurationError):
            BubbleWorkload(0.0)
        with pytest.raises(ConfigurationError):
            BubbleWorkload(MAX_PRESSURE + 0.1)

    def test_max_level_accepted(self):
        assert BubbleWorkload(MAX_PRESSURE).level == MAX_PRESSURE

    def test_name_encodes_level(self):
        assert "3" in BubbleWorkload(3.0).name


class TestBubbleSensitivity:
    def test_highly_sensitive(self):
        f = bubble_sensitivity()
        assert f.slowdown(MAX_PRESSURE) == pytest.approx(BUBBLE_MAX_SLOWDOWN)

    def test_reacts_at_low_pressure(self):
        # The bubble is the measurement probe: it must react to any
        # pressure, so its threshold is zero.
        assert bubble_sensitivity().slowdown(0.5) > 1.0
