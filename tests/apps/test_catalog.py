"""Tests for the Table 1 workload catalog."""

import pytest

from repro.apps.base import PropagationClass, WorkloadFamily
from repro.apps.batch import BatchWorkload
from repro.apps.catalog import (
    ALL_WORKLOADS,
    BATCH_WORKLOADS,
    DISTRIBUTED_WORKLOADS,
    NETWORK_WORKLOADS,
    catalog_entry,
    get_workload,
    make_bubble,
    table1_rows,
)
from repro.apps.graph import GraphTraversalWorkload
from repro.apps.mapreduce import MapReduceWorkload
from repro.apps.mpi import BSPWorkload, LooselyCoupledWorkload
from repro.apps.paramserver import ParameterServerWorkload
from repro.apps.spark import SparkWorkload
from repro.cluster.contention import ContentionDomain
from repro.errors import CatalogError

#: Table 4 of the paper: the calibrated ground-truth bubble scores.
PAPER_TABLE4 = {
    "M.milc": 4.3, "M.lesl": 3.9, "M.Gems": 2.4, "M.lmps": 1.0,
    "M.zeus": 1.4, "M.lu": 4.6, "N.cg": 3.9, "N.mg": 5.0,
    "H.KM": 0.2, "S.WC": 0.3, "S.CF": 0.5, "S.PR": 0.7,
    "C.gcc": 4.8, "C.mcf": 5.4, "C.cact": 3.8, "C.sopl": 4.9,
    "C.libq": 6.6, "C.xbmk": 4.3,
}


class TestCatalogContents:
    def test_twenty_workloads(self):
        # Table 1's 18 plus the two datacenter network archetypes.
        assert len(ALL_WORKLOADS) == 20

    def test_twelve_distributed(self):
        # The paper's distributed set is unchanged by the datacenter
        # additions (experiments iterate exactly these 12).
        assert len(DISTRIBUTED_WORKLOADS) == 12

    def test_two_network_archetypes(self):
        assert set(NETWORK_WORKLOADS) == {"D.PS", "D.BFS"}
        assert not set(NETWORK_WORKLOADS) & set(DISTRIBUTED_WORKLOADS)
        assert not set(NETWORK_WORKLOADS) & set(BATCH_WORKLOADS)

    def test_six_batch(self):
        assert len(BATCH_WORKLOADS) == 6
        assert set(BATCH_WORKLOADS) == {
            "C.gcc", "C.mcf", "C.cact", "C.sopl", "C.libq", "C.xbmk"
        }

    def test_table4_scores_are_ground_truth(self):
        for abbrev, score in PAPER_TABLE4.items():
            workload = get_workload(abbrev)
            assert workload.spec.generated_pressure == pytest.approx(score), abbrev

    def test_unknown_workload(self):
        with pytest.raises(CatalogError, match="unknown workload"):
            get_workload("X.unknown")

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 20
        assert ("SPEC MPI2007", "126.lammps", "mref", "M.lmps") in rows
        assert ("DATACENTER", "ParamServerCNN", "256 img/worker", "D.PS") in rows


class TestWorkloadTypes:
    def test_gems_is_loosely_coupled(self):
        # Section 3.2: GemsFDTD has no allreduce/allgather and few
        # barriers -> proportional propagation.
        workload = get_workload("M.Gems")
        assert isinstance(workload, LooselyCoupledWorkload)
        assert workload.spec.propagation_class is PropagationClass.PROPORTIONAL

    def test_mpi_apps_are_bsp(self):
        for abbrev in ("M.milc", "M.lesl", "M.lmps", "M.zeus", "M.lu"):
            assert isinstance(get_workload(abbrev), BSPWorkload), abbrev

    def test_npb_apps_are_bsp(self):
        for abbrev in ("N.cg", "N.mg"):
            assert isinstance(get_workload(abbrev), BSPWorkload)

    def test_hadoop_is_mapreduce(self):
        assert isinstance(get_workload("H.KM"), MapReduceWorkload)

    def test_spark_apps(self):
        for abbrev in ("S.WC", "S.CF", "S.PR"):
            assert isinstance(get_workload(abbrev), SparkWorkload), abbrev

    def test_batch_apps(self):
        for abbrev in BATCH_WORKLOADS:
            workload = get_workload(abbrev)
            assert isinstance(workload, BatchWorkload)
            # Two single-threaded instances per dual-core VM.
            assert workload.spec.slots_per_unit == 8

    def test_framework_masters_discounted(self):
        # Hadoop/Spark masters schedule without processing (Section 3.4).
        for abbrev in ("H.KM", "S.WC", "S.CF", "S.PR"):
            assert get_workload(abbrev).spec.master_pressure_factor < 1.0

    def test_mpi_masters_not_discounted(self):
        for abbrev in ("M.milc", "M.Gems", "N.cg"):
            assert get_workload(abbrev).spec.master_pressure_factor == 1.0

    def test_fresh_instances(self):
        assert get_workload("M.milc") is not get_workload("M.milc")

    def test_families_match_prefixes(self):
        for abbrev in ALL_WORKLOADS:
            family = catalog_entry(abbrev).family
            prefix = abbrev.split(".")[0]
            expected = {
                "M": WorkloadFamily.SPEC_MPI,
                "N": WorkloadFamily.NPB,
                "H": WorkloadFamily.HADOOP,
                "S": WorkloadFamily.SPARK,
                "C": WorkloadFamily.SPEC_CPU,
                "D": WorkloadFamily.DATACENTER,
            }[prefix]
            assert family is expected, abbrev

    def test_datacenter_archetype_types(self):
        assert isinstance(get_workload("D.PS"), ParameterServerWorkload)
        assert isinstance(get_workload("D.BFS"), GraphTraversalWorkload)

    def test_paper_workloads_have_flat_network_ground_truth(self):
        # Every Table 1 workload predates the NETWORK domain: no link
        # pressure generated, no link sensitivity — the invariant the
        # bit-identity suite relies on.
        for abbrev in DISTRIBUTED_WORKLOADS + BATCH_WORKLOADS:
            spec = get_workload(abbrev).spec
            assert spec.generated_network_pressure == 0.0, abbrev
            assert spec.network_sensitivity is None, abbrev


class TestMakeBubble:
    def test_level(self):
        assert make_bubble(4.0).level == 4.0

    def test_network_domain(self):
        bubble = make_bubble(3.0, domain=ContentionDomain.NETWORK)
        assert bubble.domain is ContentionDomain.NETWORK
        assert bubble.spec.generated_pressure == 0.0
        assert bubble.spec.generated_network_pressure == 3.0

    def test_compute_default_unchanged(self):
        bubble = make_bubble(3.0)
        assert bubble.domain is ContentionDomain.COMPUTE
        assert bubble.spec.generated_pressure == 3.0
        assert bubble.spec.generated_network_pressure == 0.0
