"""Tests for the workload/program abstractions."""

import pytest

from repro.apps.base import Stage, WorkloadSpec, total_program_work
from repro.errors import ConfigurationError
from tests._synthetic import bsp_workload, synthetic_spec


class TestStage:
    def test_total_work(self):
        stage = Stage(name="s", n_tasks=8, task_time=0.5)
        assert stage.total_work == 4.0

    def test_invalid_tasks(self):
        with pytest.raises(ConfigurationError):
            Stage(name="s", n_tasks=0, task_time=1.0)

    def test_invalid_task_time(self):
        with pytest.raises(ConfigurationError):
            Stage(name="s", n_tasks=1, task_time=0.0)

    def test_invalid_sync_cost(self):
        with pytest.raises(ConfigurationError):
            Stage(name="s", n_tasks=1, task_time=1.0, sync_cost=-1.0)

    def test_frozen(self):
        stage = Stage(name="s", n_tasks=1, task_time=1.0)
        with pytest.raises(AttributeError):
            stage.n_tasks = 2


class TestWorkloadSpec:
    def test_valid(self):
        spec = synthetic_spec()
        assert spec.generated_pressure == 2.0

    def test_negative_pressure(self):
        with pytest.raises(ValueError):
            synthetic_spec(score=-1.0)

    def test_invalid_base_time(self):
        with pytest.raises(ConfigurationError):
            synthetic_spec(base_time=0.0)

    def test_invalid_noise(self):
        with pytest.raises(ConfigurationError):
            synthetic_spec(noise_cv=-0.1)

    def test_invalid_master_factor(self):
        with pytest.raises(ConfigurationError):
            synthetic_spec(master_factor=1.5)

    def test_invalid_slots(self):
        with pytest.raises(ConfigurationError):
            synthetic_spec(slots_per_unit=0)


class TestWorkload:
    def test_name_is_abbrev(self):
        workload = bsp_workload("myapp")
        assert workload.name == "myapp"

    def test_not_passive_by_default(self):
        assert not bsp_workload().is_passive

    def test_master_pressure_discount(self):
        workload = bsp_workload("h", master_factor=0.3, score=1.0)
        assert workload.generated_pressure_for(0) == pytest.approx(0.3)
        assert workload.generated_pressure_for(1) == 1.0

    def test_no_discount_for_mpi(self):
        workload = bsp_workload("m", master_factor=1.0, score=2.0)
        assert workload.generated_pressure_for(0) == 2.0


class TestTotalProgramWork:
    def test_sums_stages(self):
        workload = bsp_workload(iterations=4, base_time=10.0)
        program = workload.build_program(num_slots=8)
        # Weak scaling: per-slot work == base_time, so total work is
        # base_time * slots.
        assert total_program_work(program) == pytest.approx(80.0)

    def test_empty_program(self):
        assert total_program_work([]) == 0.0
