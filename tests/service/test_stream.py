"""Tests for jobs and the seeded workload stream."""

import pytest

from repro.errors import ServiceError
from repro.service.jobs import Job
from repro.service.stream import FixedStream, StreamConfig, WorkloadStream

CONFIG = StreamConfig(
    workloads=("M.lmps", "M.milc", "H.KM"),
    arrival_rate=1.5,
    qos_fraction=0.5,
)


class TestJob:
    def test_instance_spec_mirrors_job(self):
        job = Job("j0", "M.lmps", num_units=2, weight=2.0)
        spec = job.instance_spec()
        assert spec.instance_key == "j0"
        assert spec.workload == "M.lmps"
        assert spec.num_units == 2
        assert spec.weight == 2.0

    def test_qos_constraint_only_for_mission_critical(self):
        best_effort = Job("j0", "M.lmps")
        assert not best_effort.mission_critical
        assert best_effort.qos_constraint() is None
        critical = Job("j1", "M.lmps", qos_target=1.25)
        assert critical.mission_critical
        constraint = critical.qos_constraint()
        assert constraint is not None
        assert constraint.instance_key == "j1"
        assert constraint.max_normalized_time == 1.25

    def test_validation(self):
        with pytest.raises(ServiceError):
            Job("j0", "M.lmps", num_units=0)
        with pytest.raises(ServiceError):
            Job("j0", "M.lmps", duration_epochs=0)
        with pytest.raises(ServiceError):
            Job("j0", "M.lmps", arrival_epoch=-1)
        with pytest.raises(ServiceError):
            Job("j0", "M.lmps", qos_target=0.9)


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ServiceError):
            StreamConfig(workloads=())
        with pytest.raises(ServiceError):
            StreamConfig(workloads=("a",), arrival_rate=-1.0)
        with pytest.raises(ServiceError):
            StreamConfig(workloads=("a",), unit_choices=(0,))
        with pytest.raises(ServiceError):
            StreamConfig(workloads=("a",), duration_range=(3, 2))
        with pytest.raises(ServiceError):
            StreamConfig(workloads=("a",), qos_fraction=1.5)
        with pytest.raises(ServiceError):
            StreamConfig(workloads=("a",), qos_targets=(0.5,))


class TestWorkloadStream:
    def test_same_seed_same_traffic(self):
        first = WorkloadStream(CONFIG, seed=7)
        second = WorkloadStream(CONFIG, seed=7)
        for epoch in range(6):
            assert first.arrivals(epoch) == second.arrivals(epoch)

    def test_epochs_independent_of_query_order(self):
        stream = WorkloadStream(CONFIG, seed=7)
        later_first = stream.arrivals(5)
        stream.arrivals(0)
        stream.arrivals(3)
        assert stream.arrivals(5) == later_first

    def test_different_seeds_differ(self):
        a = WorkloadStream(CONFIG, seed=1)
        b = WorkloadStream(CONFIG, seed=2)
        assert any(a.arrivals(e) != b.arrivals(e) for e in range(8))

    def test_jobs_are_well_formed(self):
        stream = WorkloadStream(CONFIG, seed=3)
        seen_ids = set()
        for epoch in range(10):
            for job in stream.arrivals(epoch):
                assert job.arrival_epoch == epoch
                assert job.workload in CONFIG.workloads
                assert job.num_units in CONFIG.unit_choices
                low, high = CONFIG.duration_range
                assert low <= job.duration_epochs <= high
                assert job.job_id not in seen_ids
                seen_ids.add(job.job_id)

    def test_qos_fraction_extremes(self):
        none = WorkloadStream(
            StreamConfig(workloads=("a",), arrival_rate=2.0, qos_fraction=0.0),
            seed=5,
        )
        every = WorkloadStream(
            StreamConfig(workloads=("a",), arrival_rate=2.0, qos_fraction=1.0),
            seed=5,
        )
        none_jobs = [j for e in range(10) for j in none.arrivals(e)]
        every_jobs = [j for e in range(10) for j in every.arrivals(e)]
        assert none_jobs and every_jobs
        assert all(not j.mission_critical for j in none_jobs)
        assert all(j.mission_critical for j in every_jobs)

    def test_rejects_negative_epoch(self):
        with pytest.raises(ServiceError):
            WorkloadStream(CONFIG, seed=1).arrivals(-1)


class TestFixedStream:
    def test_filters_by_arrival_epoch(self):
        jobs = (
            Job("a", "M.lmps", arrival_epoch=0),
            Job("b", "M.lmps", arrival_epoch=2),
            Job("c", "M.milc", arrival_epoch=2),
        )
        stream = FixedStream(jobs)
        assert [j.job_id for j in stream.arrivals(0)] == ["a"]
        assert stream.arrivals(1) == []
        assert [j.job_id for j in stream.arrivals(2)] == ["b", "c"]
