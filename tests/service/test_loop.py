"""Tests for the epoch-driven consolidation service under churn."""

import json

import pytest

from repro.core.builder import build_batch_profiles, build_model
from repro.errors import ServiceError
from repro.placement.annealing import AnnealingSchedule
from repro.service.events import EventLog
from repro.service.jobs import Job
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import FixedStream, StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner

MIX = ("M.lmps", "M.milc", "H.KM", "C.libq")

#: A seed whose 8-epoch day exercises every service path: admissions,
#: queueing, a rejection, migrations, and a measured QoS violation.
CHURN_SEED = 4

FAST_SCHEDULE = AnnealingSchedule(iterations=400, restarts=1)


@pytest.fixture(scope="module")
def environment():
    runner = ClusterRunner(base_seed=31)
    report = build_model(
        runner, ["M.lmps", "M.milc", "H.KM"], policy_samples=8, seed=31, span=4
    )
    build_batch_profiles(runner, report.model, ["C.libq"], span=4)
    return runner, report.model


def churn_service(environment, *, seed=CHURN_SEED, **config_kwargs):
    runner, model = environment
    config_kwargs.setdefault("schedule", FAST_SCHEDULE)
    stream = WorkloadStream(
        StreamConfig(workloads=MIX, arrival_rate=1.2), seed=seed
    )
    return ConsolidationService(
        runner, model, stream,
        config=ServiceConfig(**config_kwargs), seed=seed,
    )


def spy_on_admissions(service):
    """Record every (tenants, decision) pair the controller produces."""
    recorded = []
    original = service.admission.try_admit

    def spy(placement, tenants, job):
        decision = original(placement, tenants, job)
        recorded.append((list(tenants), decision))
        return decision

    service.admission.try_admit = spy
    return recorded


class TestChurnDay:
    @pytest.fixture(scope="class")
    def day(self, environment):
        service = churn_service(environment)
        decisions = spy_on_admissions(service)
        service.run(8)
        return service, decisions

    def test_exercises_every_path(self, day):
        service, _ = day
        counts = service.log.counts()
        for kind in ("arrival", "admit", "queue", "reject", "migrate",
                     "qos_violation", "depart", "epoch_end"):
            assert counts.get(kind, 0) > 0, f"no {kind} events"

    def test_admission_never_breaks_a_tenant_bound(self, day):
        # The acceptance invariant: an admitted job's predicted
        # placement satisfies every mission-critical resident's bound
        # (and its own).
        _, decisions = day
        admitted = [d for _, d in decisions if d.admitted]
        assert admitted
        for tenants, decision in decisions:
            if not decision.admitted:
                continue
            for job in tenants + [decision.job]:
                constraint = job.qos_constraint()
                if constraint is not None:
                    assert constraint.satisfied_by(decision.predictions)

    def test_violation_events_match_measurements(self, day):
        service, _ = day
        for event in service.log.of_kind("qos_violation"):
            payload = dict(event.payload)
            assert payload["measured"] > payload["bound"]

    def test_counters_match_log(self, day):
        service, _ = day
        counts = service.log.counts()
        final = service.snapshots[-1]
        assert final.admitted_total == counts["admit"]
        assert final.rejected_total == counts["reject"]
        assert final.completed_total == counts["depart"]
        assert final.qos_violations_total == counts["qos_violation"]
        assert final.migration_epochs_total == counts["migrate"]
        assert 0.0 <= final.utilization <= 1.0
        assert 0.0 <= final.violation_rate <= 1.0

    def test_model_learns_from_the_day(self, day):
        service, _ = day
        assert service.snapshots[-1].model_observations > 0


class TestQueueAndRetry:
    def _full_cluster_jobs(self, duration):
        return tuple(
            Job(f"filler{i}", MIX[i % 3], num_units=4,
                duration_epochs=duration, arrival_epoch=0)
            for i in range(4)
        )

    def test_bounded_retry_then_reject(self, environment):
        runner, model = environment
        stream = FixedStream(
            self._full_cluster_jobs(10)
            + (Job("late", "M.lmps", num_units=4, arrival_epoch=0,
                   duration_epochs=2),)
        )
        service = ConsolidationService(
            runner, model, stream,
            config=ServiceConfig(admission_retries=1, schedule=FAST_SCHEDULE),
            seed=1,
        )
        service.run(3)
        queued = service.log.of_kind("queue")
        assert [e.epoch for e in queued] == [0]
        assert dict(queued[0].payload)["reason"] == "no-capacity"
        rejects = service.log.of_kind("reject")
        assert len(rejects) == 1
        payload = dict(rejects[0].payload)
        assert payload["job"] == "late"
        assert payload["attempts"] == 2
        assert service.snapshots[-1].rejected_total == 1

    def test_queued_job_admitted_when_capacity_frees(self, environment):
        runner, model = environment
        stream = FixedStream(
            self._full_cluster_jobs(2)
            + (Job("late", "M.lmps", num_units=4, arrival_epoch=0,
                   duration_epochs=2),)
        )
        service = ConsolidationService(
            runner, model, stream,
            config=ServiceConfig(admission_retries=5, schedule=FAST_SCHEDULE),
            seed=1,
        )
        service.run(4)
        admits = {
            dict(e.payload)["job"]: e for e in service.log.of_kind("admit")
        }
        assert "late" in admits
        late = dict(admits["late"].payload)
        assert admits["late"].epoch == 2  # the epoch the fillers departed
        assert late["waited"] == 2
        assert not service.log.of_kind("reject")

    def test_queue_overflow_rejects_immediately(self, environment):
        runner, model = environment
        jobs = self._full_cluster_jobs(10) + tuple(
            Job(f"wave{i}", "M.lmps", num_units=4, arrival_epoch=0,
                duration_epochs=1)
            for i in range(3)
        )
        service = ConsolidationService(
            runner, model, FixedStream(jobs),
            config=ServiceConfig(
                admission_retries=9, max_queue_depth=2, schedule=FAST_SCHEDULE
            ),
            seed=1,
        )
        service.run(1)
        # Seven arrivals against a depth-2 queue: the first two enter
        # the queue (and are admitted the same epoch), the rest bounce.
        rejects = service.log.of_kind("reject")
        assert len(rejects) == 5
        assert all(
            dict(e.payload)["reason"] == "queue-full" for e in rejects
        )
        admitted = {dict(e.payload)["job"] for e in service.log.of_kind("admit")}
        assert admitted == {"filler0", "filler1"}


class TestMigrationGating:
    def test_infinite_cost_freezes_placement(self, environment):
        service = churn_service(environment, migration_cost=1e9)
        service.run(8)
        assert not service.log.of_kind("migrate")
        assert service.snapshots[-1].migrated_units_total == 0

    def test_default_cost_allows_paying_migrations(self, environment):
        service = churn_service(environment)
        service.run(8)
        migrations = service.log.of_kind("migrate")
        assert migrations
        for event in migrations:
            payload = dict(event.payload)
            assert payload["moved_units"] > 0
            # Every taken migration either repaired a predicted QoS
            # violation or paid for itself.
            assert payload["repairs_qos"] or (
                payload["predicted_gain"]
                > 0.02 * payload["moved_units"]
            )

    def test_reschedule_zero_disables_search(self, environment):
        service = churn_service(environment, reschedule_every=0)
        service.run(8)
        assert not service.log.of_kind("migrate")


class TestDeterminism:
    def test_two_runs_byte_identical(self, environment):
        first = churn_service(environment)
        first.run(8)
        second = churn_service(environment)
        second.run(8)
        assert first.log.to_jsonl() == second.log.to_jsonl()
        assert [s.to_dict() for s in first.snapshots] == [
            s.to_dict() for s in second.snapshots
        ]

    def test_incremental_runs_replay_the_same_day(self, environment):
        whole = churn_service(environment)
        whole.run(8)
        split = churn_service(environment)
        split.run(3)
        split.run(5)
        assert split.log.to_jsonl() == whole.log.to_jsonl()

    def test_log_round_trips_through_json(self, environment, tmp_path):
        service = churn_service(environment)
        service.run(4)
        path = tmp_path / "events.jsonl"
        service.log.write(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(service.log)
        parsed = [json.loads(line) for line in lines]
        assert [p["seq"] for p in parsed] == list(range(len(parsed)))


class TestValidation:
    def test_epochs_must_be_positive(self, environment):
        service = churn_service(environment)
        with pytest.raises(ServiceError):
            service.run(0)

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(admission_retries=-1)
        with pytest.raises(ServiceError):
            ServiceConfig(max_queue_depth=-1)
        with pytest.raises(ServiceError):
            ServiceConfig(reschedule_every=-1)
        with pytest.raises(ServiceError):
            ServiceConfig(migration_cost=-0.1)

    def test_event_log_rejects_unknown_kind(self):
        log = EventLog()
        with pytest.raises(ServiceError):
            log.append("explode", 0)
        with pytest.raises(ServiceError):
            log.of_kind("explode")
