"""Tests for the QoS admission controller."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.errors import ServiceError
from repro.service.admission import (
    ADMITTED,
    NO_CAPACITY,
    QOS_INFEASIBLE,
    AdmissionController,
    placement_with_job,
    placement_without_job,
)
from repro.service.jobs import Job

from tests.service._fake import FakeModel

SPEC_4 = ClusterSpec(num_nodes=4)
SPEC_8 = ClusterSpec(num_nodes=8)


def admit_all(controller, jobs):
    """Admit a sequence of jobs, returning (placement, tenants)."""
    placement, tenants = None, []
    for job in jobs:
        decision = controller.try_admit(placement, tenants, job)
        assert decision.admitted, f"{job.job_id}: {decision.reason}"
        placement = decision.placement
        tenants.append(job)
    return placement, tenants


class TestPlacementSurgery:
    def test_with_then_without_roundtrip(self):
        job_a = Job("a", "wl", num_units=2)
        job_b = Job("b", "wl", num_units=2)
        placed_a = placement_with_job(None, SPEC_4, job_a, [0, 1])
        both = placement_with_job(placed_a, SPEC_4, job_b, [2, 3])
        assert both.nodes_of("a") == (0, 1)
        assert both.nodes_of("b") == (2, 3)
        only_a = placement_without_job(both, "b")
        assert only_a is not None
        assert only_a.nodes_of("a") == (0, 1)
        assert placement_without_job(only_a, "a") is None

    def test_duplicate_job_rejected(self):
        job = Job("a", "wl", num_units=2)
        placement = placement_with_job(None, SPEC_4, job, [0, 1])
        with pytest.raises(ServiceError):
            placement_with_job(placement, SPEC_4, job, [2, 3])

    def test_unknown_eviction_rejected(self):
        placement = placement_with_job(None, SPEC_4, Job("a", "wl"), [0, 1, 2, 3])
        with pytest.raises(ServiceError):
            placement_without_job(placement, "ghost")


class TestCapacity:
    def test_admits_into_empty_cluster(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        decision = controller.try_admit(None, [], Job("a", "wl", num_units=4))
        assert decision.admitted and decision.reason == ADMITTED
        assert decision.placement is not None
        assert decision.predictions == {"a": 1.0}

    def test_rejects_when_full(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        placement, tenants = admit_all(
            controller,
            [Job("a", "wl", num_units=4), Job("b", "wl", num_units=4)],
        )
        decision = controller.try_admit(
            placement, tenants, Job("c", "wl", num_units=4)
        )
        assert not decision.admitted
        assert decision.reason == NO_CAPACITY
        assert decision.placement is None

    def test_rejects_oversized_job(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        decision = controller.try_admit(None, [], Job("a", "wl", num_units=5))
        assert not decision.admitted and decision.reason == NO_CAPACITY

    def test_never_moves_existing_tenants(self):
        controller = AdmissionController(FakeModel(), SPEC_8)
        placement, tenants = admit_all(
            controller, [Job("a", "wl", num_units=4)]
        )
        before = placement.nodes_of("a")
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=4)
        )
        assert decision.admitted
        assert decision.placement.nodes_of("a") == before


class TestQoSGate:
    def test_prefers_interference_free_nodes(self):
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_8)
        placement, tenants = admit_all(
            controller, [Job("a", "wl", num_units=4)]
        )
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=4)
        )
        assert decision.admitted
        occupied = set(placement.nodes_of("a"))
        assert not occupied & set(decision.placement.nodes_of("b"))
        assert decision.predictions == {"a": 1.0, "b": 1.0}

    def test_rejects_job_that_would_break_tenant_bound(self):
        # The tenant spans every node, so any arrival must share one;
        # sharing predicts the tenant at 1.2, beyond its 1.1 bound.
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_4)
        tenant = Job("critical", "wl", num_units=4, qos_target=1.1)
        placement, tenants = admit_all(controller, [tenant])
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=2)
        )
        assert not decision.admitted
        assert decision.reason == QOS_INFEASIBLE
        assert decision.candidates_evaluated > 0

    def test_rejects_job_whose_own_bound_cannot_hold(self):
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_4)
        placement, tenants = admit_all(
            controller, [Job("a", "wl", num_units=4)]
        )
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=2, qos_target=1.1)
        )
        assert not decision.admitted
        assert decision.reason == QOS_INFEASIBLE

    def test_admits_when_bound_is_loose_enough(self):
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_4)
        tenant = Job("critical", "wl", num_units=4, qos_target=1.25)
        placement, tenants = admit_all(controller, [tenant])
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=2, qos_target=1.25)
        )
        assert decision.admitted
        # The invariant the service relies on: predicted times of every
        # mission-critical resident stay inside their bounds.
        for job in [tenant, decision.job]:
            constraint = job.qos_constraint()
            assert constraint.satisfied_by(decision.predictions)

    def test_decisions_are_deterministic(self):
        def decide():
            controller = AdmissionController(FakeModel(penalty=0.1), SPEC_8)
            placement, tenants = admit_all(
                controller,
                [Job("a", "wl", num_units=4), Job("b", "wl", num_units=3)],
            )
            return controller.try_admit(
                placement, tenants, Job("c", "wl", num_units=3)
            )

        first, second = decide(), decide()
        assert first.admitted == second.admitted
        assert first.placement.nodes_of("c") == second.placement.nodes_of("c")


class TestValidation:
    def test_max_candidates_positive(self):
        with pytest.raises(ServiceError):
            AdmissionController(FakeModel(), SPEC_4, max_candidates=0)

    def test_candidate_cap_bounds_work(self):
        controller = AdmissionController(FakeModel(), SPEC_8, max_candidates=3)
        decision = controller.try_admit(None, [], Job("a", "wl", num_units=2))
        assert decision.admitted
        assert decision.candidates_evaluated <= 3
