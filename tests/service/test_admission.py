"""Tests for the QoS admission controller."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.errors import ServiceError
from repro.service.admission import (
    ADMITTED,
    NO_CAPACITY,
    QOS_INFEASIBLE,
    AdmissionController,
    placement_with_job,
    placement_without_job,
)
from repro.service.jobs import Job

from tests.service._fake import FakeModel

SPEC_4 = ClusterSpec(num_nodes=4)
SPEC_8 = ClusterSpec(num_nodes=8)


def admit_all(controller, jobs):
    """Admit a sequence of jobs, returning (placement, tenants)."""
    placement, tenants = None, []
    for job in jobs:
        decision = controller.try_admit(placement, tenants, job)
        assert decision.admitted, f"{job.job_id}: {decision.reason}"
        placement = decision.placement
        tenants.append(job)
    return placement, tenants


class TestPlacementSurgery:
    def test_with_then_without_roundtrip(self):
        job_a = Job("a", "wl", num_units=2)
        job_b = Job("b", "wl", num_units=2)
        placed_a = placement_with_job(None, SPEC_4, job_a, [0, 1])
        both = placement_with_job(placed_a, SPEC_4, job_b, [2, 3])
        assert both.nodes_of("a") == (0, 1)
        assert both.nodes_of("b") == (2, 3)
        only_a = placement_without_job(both, "b")
        assert only_a is not None
        assert only_a.nodes_of("a") == (0, 1)
        assert placement_without_job(only_a, "a") is None

    def test_duplicate_job_rejected(self):
        job = Job("a", "wl", num_units=2)
        placement = placement_with_job(None, SPEC_4, job, [0, 1])
        with pytest.raises(ServiceError):
            placement_with_job(placement, SPEC_4, job, [2, 3])

    def test_unknown_eviction_rejected(self):
        placement = placement_with_job(None, SPEC_4, Job("a", "wl"), [0, 1, 2, 3])
        with pytest.raises(ServiceError):
            placement_without_job(placement, "ghost")


class TestCapacity:
    def test_admits_into_empty_cluster(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        decision = controller.try_admit(None, [], Job("a", "wl", num_units=4))
        assert decision.admitted and decision.reason == ADMITTED
        assert decision.placement is not None
        assert decision.predictions == {"a": 1.0}

    def test_rejects_when_full(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        placement, tenants = admit_all(
            controller,
            [Job("a", "wl", num_units=4), Job("b", "wl", num_units=4)],
        )
        decision = controller.try_admit(
            placement, tenants, Job("c", "wl", num_units=4)
        )
        assert not decision.admitted
        assert decision.reason == NO_CAPACITY
        assert decision.placement is None

    def test_rejects_oversized_job(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        decision = controller.try_admit(None, [], Job("a", "wl", num_units=5))
        assert not decision.admitted and decision.reason == NO_CAPACITY

    def test_never_moves_existing_tenants(self):
        controller = AdmissionController(FakeModel(), SPEC_8)
        placement, tenants = admit_all(
            controller, [Job("a", "wl", num_units=4)]
        )
        before = placement.nodes_of("a")
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=4)
        )
        assert decision.admitted
        assert decision.placement.nodes_of("a") == before


class TestQoSGate:
    def test_prefers_interference_free_nodes(self):
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_8)
        placement, tenants = admit_all(
            controller, [Job("a", "wl", num_units=4)]
        )
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=4)
        )
        assert decision.admitted
        occupied = set(placement.nodes_of("a"))
        assert not occupied & set(decision.placement.nodes_of("b"))
        assert decision.predictions == {"a": 1.0, "b": 1.0}

    def test_rejects_job_that_would_break_tenant_bound(self):
        # The tenant spans every node, so any arrival must share one;
        # sharing predicts the tenant at 1.2, beyond its 1.1 bound.
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_4)
        tenant = Job("critical", "wl", num_units=4, qos_target=1.1)
        placement, tenants = admit_all(controller, [tenant])
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=2)
        )
        assert not decision.admitted
        assert decision.reason == QOS_INFEASIBLE
        assert decision.candidates_evaluated > 0

    def test_rejects_job_whose_own_bound_cannot_hold(self):
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_4)
        placement, tenants = admit_all(
            controller, [Job("a", "wl", num_units=4)]
        )
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=2, qos_target=1.1)
        )
        assert not decision.admitted
        assert decision.reason == QOS_INFEASIBLE

    def test_admits_when_bound_is_loose_enough(self):
        controller = AdmissionController(FakeModel(penalty=0.2), SPEC_4)
        tenant = Job("critical", "wl", num_units=4, qos_target=1.25)
        placement, tenants = admit_all(controller, [tenant])
        decision = controller.try_admit(
            placement, tenants, Job("b", "wl", num_units=2, qos_target=1.25)
        )
        assert decision.admitted
        # The invariant the service relies on: predicted times of every
        # mission-critical resident stay inside their bounds.
        for job in [tenant, decision.job]:
            constraint = job.qos_constraint()
            assert constraint.satisfied_by(decision.predictions)

    def test_decisions_are_deterministic(self):
        def decide():
            controller = AdmissionController(FakeModel(penalty=0.1), SPEC_8)
            placement, tenants = admit_all(
                controller,
                [Job("a", "wl", num_units=4), Job("b", "wl", num_units=3)],
            )
            return controller.try_admit(
                placement, tenants, Job("c", "wl", num_units=3)
            )

        first, second = decide(), decide()
        assert first.admitted == second.admitted
        assert first.placement.nodes_of("c") == second.placement.nodes_of("c")


class TestValidation:
    def test_max_candidates_positive(self):
        with pytest.raises(ServiceError):
            AdmissionController(FakeModel(), SPEC_4, max_candidates=0)

    def test_candidate_cap_bounds_work(self):
        controller = AdmissionController(FakeModel(), SPEC_8, max_candidates=3)
        decision = controller.try_admit(None, [], Job("a", "wl", num_units=2))
        assert decision.admitted
        assert decision.candidates_evaluated <= 3


# ----------------------------------------------------------------------
# Batch-vs-scalar identity (the vectorized admission wave)
# ----------------------------------------------------------------------
#
# With a real InterferenceModel the controller scores whole candidate
# waves through the batch kernel; a model stripped of the batch
# interface forces the scalar reference path.  Decisions must be
# bit-identical either way — including the degraded-workload
# conservative override and its fault counter.

import random

import numpy as np

from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.obs.recorder import recording


class _ScalarOnlyModel:
    _HIDDEN = frozenset(
        {
            "predict_batch",
            "predict_corunners_batch",
            "predict_placement_batch",
            "predict_placements_batch",
            "prediction_kernel",
        }
    )

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        if name in _ScalarOnlyModel._HIDDEN:
            raise AttributeError(name)
        return getattr(self._model, name)


def _real_model(rng, num_workloads=3):
    policies = ("N MAX", "N+1 MAX", "ALL MAX", "INTERPOLATE")
    profiles = {}
    for i in range(num_workloads):
        name = f"app{i}"
        counts = list(range(rng.randint(3, 5)))
        pressures = sorted(rng.uniform(1.0, 9.0) for _ in range(3))
        values = np.array(
            [
                [1.0 + rng.random() * p * (c + 1) / 10.0 for c in counts]
                for p in pressures
            ]
        )
        profiles[name] = InterferenceProfile(
            workload=name,
            matrix=PropagationMatrix(pressures, counts, values),
            policy_name=policies[i % len(policies)],
            bubble_score=rng.uniform(0.5, 8.0),
        )
    return InterferenceModel(profiles)


def _decisions_equal(batch, scalar):
    assert batch.admitted == scalar.admitted
    assert batch.reason == scalar.reason
    assert batch.candidates_evaluated == scalar.candidates_evaluated
    assert batch.predictions == scalar.predictions
    if batch.placement is None:
        assert scalar.placement is None
    else:
        assert {
            s.instance_key: batch.placement.nodes_of(s.instance_key)
            for s in batch.placement.instances
        } == {
            s.instance_key: scalar.placement.nodes_of(s.instance_key)
            for s in scalar.placement.instances
        }


class TestBatchScalarIdentity:
    def _wave(self, seed, *, degraded=frozenset()):
        """Admit a stream of jobs twice (batch model vs scalar-only)."""
        rng = random.Random(seed)
        model = _real_model(rng)
        workloads = sorted(model.workloads)
        spec = ClusterSpec(num_nodes=rng.randint(8, 14))
        jobs = [
            Job(
                job_id=f"job-{i}",
                workload=rng.choice(workloads),
                num_units=rng.randint(1, 4),
                qos_target=rng.choice([None, 2.0, 3.5]),
            )
            for i in range(rng.randint(4, 8))
        ]
        outcomes = []
        for wrapped in (model, _ScalarOnlyModel(model)):
            controller = AdmissionController(
                wrapped, spec, degraded_workloads=set(degraded)
            )
            placement, tenants, decisions = None, [], []
            with recording() as rec:
                for job in jobs:
                    decision = controller.try_admit(placement, tenants, job)
                    decisions.append(decision)
                    if decision.admitted:
                        placement = decision.placement
                        tenants.append(job)
            outcomes.append((decisions, rec.counter("fault.degraded_prediction")))
        return outcomes

    @pytest.mark.parametrize("seed", range(6))
    def test_admission_stream_identical(self, seed):
        (batch, _), (scalar, _) = self._wave(seed)
        assert len(batch) == len(scalar)
        for b, s in zip(batch, scalar):
            _decisions_equal(b, s)

    @pytest.mark.parametrize("seed", range(4))
    def test_degraded_override_identical(self, seed):
        (batch, batch_count), (scalar, scalar_count) = self._wave(
            50 + seed, degraded={"app0", "app2"}
        )
        for b, s in zip(batch, scalar):
            _decisions_equal(b, s)
        # The conservative-override counter totals must also agree:
        # both paths raise exactly the same predictions.
        assert batch_count == scalar_count

    def test_degraded_override_counts_something(self):
        # Sanity: the degraded sweep actually exercises the override.
        totals = [
            self._wave(50 + seed, degraded={"app0", "app2"})[0][1]
            for seed in range(4)
        ]
        assert any(total > 0 for total in totals)


# ----------------------------------------------------------------------
# Capacity-aware admission (the elastic provider hook)
# ----------------------------------------------------------------------

from repro.faults import FaultConfig, FaultPlan
from repro.providers import ElasticProvider
from repro.service.admission import NO_DURABLE_CAPACITY


def _elastic(spot_reclaimed=False):
    """A 4-node pool: durable {0, 1}, spot {2, 3} (optionally reclaimed)."""
    churn = FaultPlan(FaultConfig(
        seed=0,
        preemption_rate=1.0 if spot_reclaimed else 0.0,
        preemption_warning_epochs=0,
    ))
    provider = ElasticProvider(
        4, initial_nodes=4, spot_fraction=0.5, churn=churn,
    )
    if spot_reclaimed:
        provider.poll(0)
    return provider


class TestCapacityAwareness:
    def test_free_nodes_exclude_nonschedulable_capacity(self):
        provider = _elastic(spot_reclaimed=True)
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=provider)
        assert controller.free_nodes(None) == [0, 1]

    def test_mission_critical_only_on_durable_nodes(self):
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=_elastic())
        decision = controller.try_admit(
            None, [], Job("mc", "wl", num_units=2, qos_target=2.0)
        )
        assert decision.admitted
        assert set(decision.placement.nodes_of("mc")) <= {0, 1}

    def test_mission_critical_rejected_when_only_spot_remains(self):
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=_elastic())
        decision = controller.try_admit(
            None, [], Job("mc", "wl", num_units=3, qos_target=2.0)
        )
        assert not decision.admitted
        assert decision.reason == NO_DURABLE_CAPACITY

    def test_batch_jobs_may_use_spot_capacity(self):
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=_elastic())
        decision = controller.try_admit(
            None, [], Job("batch", "wl", num_units=4)
        )
        assert decision.admitted
        assert set(decision.placement.nodes_of("batch")) == {0, 1, 2, 3}


class TestVanishedNodeRace:
    """A reclaim racing the admit phase must requeue, never raise."""

    def test_decision_still_valid_tracks_pool_loss(self):
        provider = _elastic()
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=provider)
        decision = controller.try_admit(
            None, [], Job("batch", "wl", num_units=4)
        )
        assert decision.admitted
        assert controller.decision_still_valid(decision)
        provider.churn = FaultPlan(FaultConfig(
            seed=0, preemption_rate=1.0, preemption_warning_epochs=0,
        ))
        provider.poll(0)  # spot nodes 2, 3 vanish under the decision
        assert not controller.decision_still_valid(decision)

    def test_without_capacity_decisions_never_go_stale(self):
        controller = AdmissionController(FakeModel(), SPEC_4)
        decision = controller.try_admit(
            None, [], Job("batch", "wl", num_units=4)
        )
        assert controller.decision_still_valid(decision)

    def test_unadmitted_decisions_are_trivially_valid(self):
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=_elastic())
        decision = controller.try_admit(
            None, [], Job("big", "wl", num_units=5)
        )
        assert not decision.admitted
        assert controller.decision_still_valid(decision)

    def test_mission_critical_decision_stales_if_durable_drains(self):
        provider = _elastic()
        controller = AdmissionController(FakeModel(), SPEC_4,
                                         capacity=provider)
        decision = controller.try_admit(
            None, [], Job("mc", "wl", num_units=2, qos_target=2.0)
        )
        assert decision.admitted
        # A durable node can never drain in production; simulate the
        # defensive branch by shrinking it out from under the decision.
        provider.shrink([0], epoch=0)
        assert not controller.decision_still_valid(decision)

    def test_service_requeues_instead_of_raising(self):
        # White-box replay of the race at the service layer: a queued
        # job's admission decision goes stale between prediction and
        # commit.  The service logs job_requeue (reason node-vanished)
        # and keeps the job queued without burning a retry.
        from repro.service.loop import ConsolidationService, _QueuedJob
        from repro.service.stream import FixedStream
        from tests._synthetic import quiet_runner

        provider = _elastic()
        runner = quiet_runner(num_nodes=4)
        service = ConsolidationService(
            runner, FakeModel(), FixedStream(), provider=provider,
        )
        # The scalar FakeModel lacks the batch interface the OnlineModel
        # wrapper advertises; point the controller at it directly.
        service.admission.model = FakeModel()
        job = Job("batch", "A", num_units=4)
        service._queue.append(_QueuedJob(job))

        original = service.admission.decision_still_valid
        race = {"armed": True}

        def stale_once(decision):
            if race.pop("armed", False):
                provider.churn = FaultPlan(FaultConfig(
                    seed=0, preemption_rate=1.0,
                    preemption_warning_epochs=0,
                ))
                provider.poll(0)  # the reclaim lands mid-admit
                return original(decision)
            return original(decision)

        service.admission.decision_still_valid = stale_once
        service._admit(0)

        requeues = service.log.of_kind("job_requeue")
        assert len(requeues) == 1
        payload = dict(requeues[0].payload)
        assert payload["job"] == "batch"
        assert payload["reason"] == "node-vanished"
        assert service.queue_depth == 1
        assert service._queue[0].failures == 0
        assert service.requeued_total == 1
        assert service.tenants == []
