"""Job cancellation semantics: queued drops, residents depart, all logged."""

import pytest

from repro.core.builder import build_model
from repro.errors import ServiceError
from repro.placement.annealing import AnnealingSchedule
from repro.service.jobs import Job
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import FixedStream
from tests._synthetic import quiet_runner, synthetic_factory

FAST_SCHEDULE = AnnealingSchedule(iterations=150, restarts=1)

#: 4 nodes x 2 unit slots = 8 slots; four 4-unit arrivals at epoch 0
#: force two admissions and two queued jobs, no rejections.
CROWD = tuple(
    Job(job_id=f"job-{i}", workload="A", num_units=4,
        duration_epochs=6, arrival_epoch=0)
    for i in range(4)
)


@pytest.fixture(scope="module")
def model():
    runner = quiet_runner(num_nodes=4, factory=synthetic_factory())
    report = build_model(
        runner, ["A", "B"], policy_samples=4, seed=31, span=4
    )
    return report.model


def make_service(model, jobs=CROWD, **config_kwargs):
    config_kwargs.setdefault("schedule", FAST_SCHEDULE)
    return ConsolidationService(
        quiet_runner(num_nodes=4, factory=synthetic_factory()),
        model,
        FixedStream(schedule=tuple(jobs)),
        config=ServiceConfig(**config_kwargs),
        seed=4,
    )


def split_by_state(service):
    """(resident ids, queued ids) after the epochs run so far."""
    admitted = {
        dict(e.payload)["job"] for e in service.log.of_kind("admit")
    }
    queued = {
        dict(e.payload)["job"] for e in service.log.of_kind("queue")
    }
    return sorted(admitted), sorted(queued - admitted)


class TestCancelRequests:
    def test_unknown_job_raises(self, model):
        service = make_service(model)
        service.run(1)
        with pytest.raises(ServiceError, match="neither queued nor resident"):
            service.cancel("ghost")

    def test_request_is_idempotent(self, model):
        service = make_service(model)
        service.run(1)
        resident, _ = split_by_state(service)
        service.cancel(resident[0])
        service.cancel(resident[0])
        service.run(2)
        assert service.cancelled_total == 1


class TestQueuedCancel:
    def test_drops_silently_from_the_queue(self, model):
        service = make_service(model)
        service.run(1)
        resident, queued = split_by_state(service)
        assert len(resident) == 2 and len(queued) == 2
        victim = queued[0]
        service.cancel(victim)
        service.run(6)
        events = service.log.of_kind("job_cancel")
        assert len(events) == 1
        payload = dict(events[0].payload)
        assert payload["job"] == victim
        assert payload["state"] == "queued"
        # Silent drop: the victim is neither rejected nor admitted
        # afterwards (the *other* queued job may still time out and
        # reject on its own).
        for kind in ("reject", "admit"):
            jobs = {
                dict(e.payload)["job"] for e in service.log.of_kind(kind)
            }
            assert victim not in jobs
        assert service.cancelled_total == 1


class TestRunningCancel:
    def test_departs_at_the_next_boundary(self, model):
        service = make_service(model)
        service.run(2)
        resident, _ = split_by_state(service)
        victim = resident[0]
        service.cancel(victim)
        assert victim in [job.job_id for job in service.tenants]
        service.run(3)
        assert victim not in [job.job_id for job in service.tenants]
        events = service.log.of_kind("job_cancel")
        assert len(events) == 1
        payload = dict(events[0].payload)
        assert payload["job"] == victim
        assert payload["state"] == "running"
        assert payload["epochs_resident"] == 2
        # A cancelled resident must not also depart naturally.
        departed = [
            dict(e.payload)["job"] for e in service.log.of_kind("depart")
        ]
        assert victim not in departed

    def test_cancel_beats_a_same_boundary_departure(self, model):
        jobs = (
            Job(job_id="short", workload="A", num_units=2,
                duration_epochs=1, arrival_epoch=0),
        )
        service = make_service(model, jobs)
        service.run(1)
        service.cancel("short")
        service.run(3)
        # Both the natural departure and the cancel fall on epoch 1;
        # cancels are processed first, so the job cancels rather than
        # completing — and does not do both.
        assert service.log.counts().get("job_cancel", 0) == 1
        assert service.log.counts().get("depart", 0) == 0
        assert service.cancelled_total == 1


class TestCancelAcrossCheckpoints:
    def test_pending_request_survives_restore_byte_identically(self, model):
        straight = make_service(model)
        straight.run(2)
        resident, _ = split_by_state(straight)
        victim = resident[1]

        resumed = make_service(model)
        resumed.run(2)
        boundary = resumed.checkpoint()
        resumed.cancel(victim)
        checkpoint = resumed.checkpoint()
        assert checkpoint.pending_cancels == (victim,)

        fresh = make_service(model)
        fresh.restore(checkpoint)
        fresh.run(6)

        straight.cancel(victim)
        straight.run(6)
        # The restored log holds only events after the boundary; the
        # straight run's tail must match it byte for byte.
        tail = [e.to_json() for e in straight.log.since(checkpoint.log_length)]
        assert [e.to_json() for e in fresh.log.since(0)] == tail
        assert fresh.cancelled_total == straight.cancelled_total == 1
        # The pre-cancel boundary checkpoint carries no request.
        assert boundary.pending_cancels == ()

    def test_cancelled_counter_round_trips(self, model):
        service = make_service(model)
        service.run(1)
        resident, queued = split_by_state(service)
        service.cancel(resident[0])
        service.cancel(queued[0])
        service.run(3)
        assert service.cancelled_total == 2
        checkpoint = service.checkpoint()
        restored = make_service(model)
        restored.restore(checkpoint)
        assert restored.cancelled_total == 2
