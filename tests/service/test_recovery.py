"""Crash-safe service recovery: checkpoints, log recovery, resume identity."""

import json

import pytest

from repro.core.builder import build_model
from repro.errors import MeasurementFault, ServiceError
from repro.faults import FaultConfig, FaultPlan, RetryPolicy
from repro.placement.annealing import AnnealingSchedule
from repro.service.checkpoint import CHECKPOINT_VERSION, ServiceCheckpoint
from repro.service.events import EventLog
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner
from tests._synthetic import QUIET_NOISE, quiet_runner, synthetic_factory

FAST_SCHEDULE = AnnealingSchedule(iterations=150, restarts=1)


@pytest.fixture(scope="module")
def environment():
    runner = quiet_runner(num_nodes=4, factory=synthetic_factory())
    report = build_model(
        runner, ["A", "B"], policy_samples=4, seed=31, span=4
    )
    return runner, report.model


def make_service(environment, *, seed=4, checkpoint_path=None, runner=None):
    shared_runner, model = environment
    stream = WorkloadStream(
        StreamConfig(workloads=("A", "B"), arrival_rate=1.2), seed=seed
    )
    return ConsolidationService(
        runner or shared_runner,
        model,
        stream,
        config=ServiceConfig(schedule=FAST_SCHEDULE),
        seed=seed,
        checkpoint_path=checkpoint_path,
    )


class TestEventLogPersistence:
    def _sample_log(self):
        log = EventLog()
        log.append("arrival", 0, job="j0", workload="A")
        log.append("admit", 0, job="j0", workload="A")
        log.append("epoch_end", 0, running=1, queued=0)
        return log

    def test_attached_log_is_durable_per_append(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog()
        log.attach(path)
        log.append("arrival", 0, job="j0", workload="A")
        # On disk immediately, before any detach/write call.
        assert EventLog.recover(path).to_jsonl() == log.to_jsonl()

    def test_recover_drops_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = self._sample_log()
        log.write(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 1, "seq": 3, "ki')  # crash mid-append
        recovered = EventLog.recover(path)
        assert recovered.to_jsonl() == log.to_jsonl()

    def test_recover_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = self._sample_log().to_jsonl().splitlines()
        lines[1] = "{garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServiceError, match="corrupt event log"):
            EventLog.recover(str(path))

    def test_recover_rejects_sequence_gaps(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._sample_log()
        entries = [json.loads(line) for line in log.to_jsonl().splitlines()]
        entries[2]["seq"] = 7
        path.write_text(
            "\n".join(json.dumps(e, sort_keys=True) for e in entries) + "\n"
        )
        with pytest.raises(ServiceError, match="sequence"):
            EventLog.recover(str(path))

    def test_truncate_rewrites_attached_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = self._sample_log()
        log.attach(path)
        log.truncate(1)
        assert len(log) == 1
        assert EventLog.recover(path).to_jsonl() == log.to_jsonl()
        with pytest.raises(ServiceError):
            log.truncate(5)


class TestValidateTail:
    def _day_log(self):
        log = EventLog()
        log.append("arrival", 0, job="j0", workload="A")
        log.append("admit", 0, job="j0", workload="A")
        log.append("epoch_end", 0, running=1, queued=0)
        log.append("epoch_end", 1, running=1, queued=0)
        log.append("depart", 2, job="j0", workload="A")
        return log

    def test_matching_tail_passes(self, tmp_path):
        log = self._day_log()
        log.validate_tail(3, 1)
        log.validate_tail(4, 2, path="anywhere")
        log.validate_tail(0, 0)

    def test_too_short_log_names_both_lengths(self):
        log = self._day_log()
        with pytest.raises(ServiceError) as err:
            log.validate_tail(9, 3, path="/spool/events.jsonl")
        message = str(err.value)
        assert "/spool/events.jsonl" in message
        assert "epoch boundary 3" in message
        assert "5 event(s)" in message
        assert "at least 9" in message

    def test_wrong_boundary_kind_is_named(self):
        log = self._day_log()
        with pytest.raises(ServiceError) as err:
            log.validate_tail(2, 1)  # event 1 is an admit, not epoch_end
        assert "kind 'admit'" in str(err.value)
        assert "close epoch 0" in str(err.value)

    def test_boundary_epoch_mismatch_suggests_different_runs(self):
        log = self._day_log()
        with pytest.raises(ServiceError) as err:
            log.validate_tail(3, 2)  # event 2 closes epoch 0, not 1
        assert "different runs" in str(err.value)

    def test_beyond_boundary_event_from_a_completed_epoch(self):
        log = EventLog()
        log.append("epoch_end", 0, running=0, queued=0)
        log.append("arrival", 0, job="late", workload="A")
        with pytest.raises(ServiceError) as err:
            log.validate_tail(1, 1)
        assert "already-completed epoch 0" in str(err.value)

    def test_uses_the_recovered_source_path_by_default(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        self._day_log().write(path)
        recovered = EventLog.recover(path)
        with pytest.raises(ServiceError, match="events.jsonl"):
            recovered.validate_tail(9, 3)


class TestStartSeq:
    def test_offsets_global_numbering(self):
        log = EventLog(start_seq=7)
        assert len(log) == 7
        event = log.append("arrival", 3, job="j", workload="A")
        assert event.seq == 7
        assert [e.seq for e in log.since(0)] == [7]
        assert log.since(8) == []

    def test_rejects_negative_offsets(self):
        with pytest.raises(ServiceError, match="non-negative"):
            EventLog(start_seq=-1)

    def test_truncate_cannot_reach_below_the_offset(self):
        log = EventLog(start_seq=2)
        log.append("epoch_end", 0, running=0, queued=0)
        with pytest.raises(ServiceError):
            log.truncate(1)
        log.truncate(2)
        assert len(log) == 2

    def test_validate_tail_skips_boundaries_before_the_offset(self):
        # An offset log cannot inspect history it does not hold; a
        # boundary at or before start_seq is vacuously accepted.
        log = EventLog(start_seq=4)
        log.validate_tail(4, 2)
        log.validate_tail(3, 1)


class TestCheckpointRoundTrip:
    @pytest.fixture(scope="class")
    def checkpoint(self, environment):
        service = make_service(environment)
        service.run(3)
        return service.checkpoint()

    def test_capture_reflects_the_service(self, checkpoint):
        assert checkpoint.epoch == 3
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.log_length > 0
        assert len(checkpoint.snapshots) == 3

    def test_dict_round_trip(self, checkpoint):
        rebuilt = ServiceCheckpoint.from_dict(checkpoint.to_dict())
        assert rebuilt.to_dict() == checkpoint.to_dict()

    def test_save_load_round_trip(self, checkpoint, tmp_path):
        path = str(tmp_path / "service.ckpt")
        checkpoint.save(path)
        assert ServiceCheckpoint.load(path).to_dict() == checkpoint.to_dict()

    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "service.ckpt"
        path.write_text("{torn")
        with pytest.raises(ServiceError, match="corrupt checkpoint"):
            ServiceCheckpoint.load(str(path))

    def test_from_dict_rejects_wrong_version(self, checkpoint):
        entry = checkpoint.to_dict()
        entry["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ServiceError, match="version"):
            ServiceCheckpoint.from_dict(entry)

    def test_from_dict_rejects_missing_fields(self, checkpoint):
        entry = checkpoint.to_dict()
        del entry["counters"]
        with pytest.raises(ServiceError, match="malformed"):
            ServiceCheckpoint.from_dict(entry)


class TestRestoreValidation:
    def test_restore_requires_matching_seed(self, environment):
        donor = make_service(environment)
        donor.run(2)
        checkpoint = donor.checkpoint()
        mismatched = make_service(environment, seed=5)
        with pytest.raises(ServiceError, match="seed"):
            mismatched.restore(checkpoint)

    def test_restore_requires_a_fresh_service(self, environment):
        donor = make_service(environment)
        donor.run(2)
        checkpoint = donor.checkpoint()
        donor_again = make_service(environment)
        donor_again.run(1)
        with pytest.raises(ServiceError, match="fresh"):
            donor_again.restore(checkpoint)

    def test_restore_rejects_a_log_shorter_than_the_checkpoint(
        self, environment
    ):
        donor = make_service(environment)
        donor.run(2)
        checkpoint = donor.checkpoint()
        fresh = make_service(environment)
        with pytest.raises(ServiceError, match="recovered log"):
            fresh.restore(checkpoint, log=EventLog())


class TestResumeIdentity:
    """The recovery contract: a killed-and-resumed day replays the
    uninterrupted day byte for byte."""

    @pytest.fixture(scope="class")
    def uninterrupted(self, environment):
        service = make_service(environment)
        service.run(6)
        return service

    def test_interrupted_day_is_byte_identical(
        self, environment, uninterrupted, tmp_path
    ):
        checkpoint_path = str(tmp_path / "service.ckpt")
        log_path = str(tmp_path / "events.jsonl")

        first = make_service(environment, checkpoint_path=checkpoint_path)
        first.log.attach(log_path)
        first.run(4)
        first.log.detach()
        # Hard kill mid-append: the file gains a torn final line.
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 4, "se')

        checkpoint = ServiceCheckpoint.load(checkpoint_path)
        assert checkpoint.epoch == 4
        recovered = EventLog.recover(log_path)
        resumed = make_service(environment, checkpoint_path=checkpoint_path)
        resumed.restore(checkpoint, log=recovered)
        assert resumed.epochs_run == 4
        resumed.log.attach(log_path)
        resumed.run(2)
        resumed.log.detach()

        expected = uninterrupted.log.to_jsonl()
        assert resumed.log.to_jsonl() == expected
        with open(log_path, "r", encoding="utf-8") as handle:
            assert handle.read() == expected
        assert [s.to_dict() for s in resumed.snapshots] == [
            s.to_dict() for s in uninterrupted.snapshots
        ]
        # The on-disk checkpoint now covers the whole day.
        final = ServiceCheckpoint.load(checkpoint_path)
        assert final.epoch == 6

    def test_run_split_without_crash_is_also_identical(
        self, environment, uninterrupted
    ):
        split = make_service(environment)
        split.run(4)
        split.run(2)
        assert split.log.to_jsonl() == uninterrupted.log.to_jsonl()


class TestMeasurementFaultDegradation:
    def test_exhausted_ground_truth_logs_measure_fault(self, environment):
        _, model = environment
        doomed_runner = ClusterRunner(
            quiet_runner(num_nodes=4).spec,
            noise=QUIET_NOISE,
            base_seed=1,
            workload_factory=synthetic_factory(),
            faults=FaultPlan(FaultConfig(seed=0, crash_rate=1.0)),
            retry=RetryPolicy(max_attempts=1),
        )
        service = make_service(environment, runner=doomed_runner)
        service.run(4)
        counts = service.log.counts()
        # Every epoch with tenants fails its ground-truth measurement:
        # the epoch is logged as measure_fault, yields no QoS check,
        # and degrades the involved workloads.
        assert counts.get("measure_fault", 0) >= 1
        assert counts.get("qos_violation", 0) == 0
        assert service._qos_checks == 0
        assert doomed_runner.faulted_workloads
        for event in service.log.of_kind("measure_fault"):
            payload = dict(event.payload)
            assert payload["workloads"]
            assert set(payload["workloads"]) <= {"A", "B"}
