"""A tiny analytic prediction model for fast admission tests.

Predicted normalized time is a pure function of the densest co-runner
node: ``1 + penalty * max units of other instances sharing a node``.
That makes admission outcomes computable by hand without profiling.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


class FakeModel:
    """Co-location-counting stand-in for the interference model."""

    def __init__(self, penalty: float = 0.2) -> None:
        self.penalty = penalty

    @property
    def workloads(self) -> List[str]:
        return []

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        return [float(len(co_runners_by_node.get(n, ()))) for n in workload_nodes]

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        worst = max(
            (len(co_runners_by_node.get(node, ())) for node in workload_nodes),
            default=0,
        )
        return 1.0 + self.penalty * worst
