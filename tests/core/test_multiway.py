"""Tests for the beyond-pairwise co-location extension."""

import math

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.multiway import (
    MultiwayPredictor,
    combined_score,
    relaxed_cluster_spec,
)
from repro.errors import ModelError
from repro.units import MAX_PRESSURE


def model_with_scores(**scores):
    matrix = PropagationMatrix(
        [4.0, 8.0],
        [0.0, 1.0, 2.0],
        np.array([[1.0, 1.2, 1.4], [1.0, 1.5, 2.0]]),
    )
    profiles = {
        name: InterferenceProfile(
            workload=name, matrix=matrix, policy_name="N MAX", bubble_score=score
        )
        for name, score in scores.items()
    }
    return InterferenceModel(profiles)


class TestCombinedScore:
    def test_section_4_4_rule(self):
        # Two equal scores S combine to S + 1.
        assert combined_score([3.0, 3.0]) == pytest.approx(4.0)

    def test_three_equal_scores(self):
        assert combined_score([3.0, 3.0, 3.0]) == pytest.approx(3.0 + math.log2(3))

    def test_surcharge_per_extra_source(self):
        base = combined_score([2.0, 2.0, 2.0])
        charged = combined_score([2.0, 2.0, 2.0], collision_surcharge=0.1)
        assert charged == pytest.approx(base + 0.2)

    def test_zero_sources_ignored(self):
        assert combined_score([0.0, 5.0, 0.0]) == 5.0

    def test_empty(self):
        assert combined_score([]) == 0.0

    def test_clamped(self):
        assert combined_score([8.0, 8.0, 8.0]) == MAX_PRESSURE

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            combined_score([-1.0, 2.0])


class TestMultiwayPredictor:
    def test_pairwise_reduces_to_base_model(self):
        model = model_with_scores(target=1.0, other=8.0)
        predictor = MultiwayPredictor(model)
        multi = predictor.predict_under_corunners("target", [0, 1], {0: ["other"]})
        base = model.predict_under_corunners("target", [0, 1], {0: ["other"]})
        assert multi == base

    def test_three_way_exceeds_pairwise(self):
        model = model_with_scores(target=1.0, a=4.0, b=4.0)
        predictor = MultiwayPredictor(model)
        pairwise = predictor.predict_under_corunners("target", [0, 1], {0: ["a"]})
        threeway = predictor.predict_under_corunners(
            "target", [0, 1], {0: ["a", "b"]}
        )
        assert threeway > pairwise

    def test_pressure_vector(self):
        model = model_with_scores(target=1.0, a=3.0, b=3.0)
        predictor = MultiwayPredictor(model)
        vector = predictor.pressure_vector([0, 1], {0: ["a", "b"], 1: ["a"]})
        assert vector[0] == pytest.approx(4.0)
        assert vector[1] == 3.0

    def test_invalid_surcharge(self):
        with pytest.raises(ModelError):
            MultiwayPredictor(model_with_scores(a=1.0), collision_surcharge=-1)


class TestRelaxedSpec:
    def test_relaxes_workload_limit_only(self):
        base = ClusterSpec()
        relaxed = relaxed_cluster_spec(base, max_workloads=3)
        assert relaxed.max_workloads_per_node == 3
        assert relaxed.num_nodes == base.num_nodes
        assert relaxed.cores_per_node == base.cores_per_node

    def test_minimum_two(self):
        with pytest.raises(ModelError):
            relaxed_cluster_spec(max_workloads=1)
