"""Tests for the per-resource (NETWORK domain) prediction API.

The contract under test has three parts: NETWORK-domain queries read
the per-link matrix through the ALL-max policy, combined predictions
multiply the compute estimate by the link-contention factor exactly
once per item, and every batch surface stays bit-identical to its
scalar counterpart.  Flat-network behaviour is covered separately in
``tests/integration/test_network_pipeline.py``.
"""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.cluster.contention import ContentionDomain
from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.model import NETWORK_POLICY, InterferenceModel, InterferenceProfile
from repro.core.online import OnlineModel
from repro.errors import ModelError
from repro.placement.assignment import InstanceSpec, Placement


def compute_matrix():
    pressures = [2.0, 4.0, 8.0]
    counts = [0.0, 1.0, 2.0, 3.0, 4.0]
    values = np.array(
        [
            [1.0, 1.05, 1.10, 1.15, 1.20],
            [1.0, 1.10, 1.20, 1.30, 1.40],
            [1.0, 1.20, 1.40, 1.60, 1.80],
        ]
    )
    return PropagationMatrix(pressures, counts, values)


def network_matrix():
    # Deliberately different from the compute matrix so a query that
    # consults the wrong domain is caught by value, not just by policy.
    pressures = [2.0, 4.0, 8.0]
    counts = [0.0, 1.0, 2.0, 3.0, 4.0]
    values = np.array(
        [
            [1.0, 1.02, 1.04, 1.06, 1.08],
            [1.0, 1.08, 1.16, 1.24, 1.32],
            [1.0, 1.25, 1.50, 1.75, 2.00],
        ]
    )
    return PropagationMatrix(pressures, counts, values)


def net_profile(workload="app", *, policy="N+1 MAX", score=3.0, net_score=4.0):
    return InterferenceProfile(
        workload=workload,
        matrix=compute_matrix(),
        policy_name=policy,
        bubble_score=score,
        network_matrix=network_matrix(),
        network_score=net_score,
    )


def flat_profile(workload="plain", *, score=2.0):
    return InterferenceProfile(
        workload=workload,
        matrix=compute_matrix(),
        policy_name="N+1 MAX",
        bubble_score=score,
    )


def model_with(*profiles):
    return InterferenceModel({p.workload: p for p in profiles})


class TestDomainDispatch:
    def test_network_homogeneous_reads_network_matrix(self):
        model = model_with(net_profile())
        assert model.predict(
            "app", (4.0, 2.0), domain=ContentionDomain.NETWORK
        ) == pytest.approx(1.16)
        # Same setting, compute domain: the other matrix.
        assert model.predict("app", (4.0, 2.0)) == pytest.approx(1.2)

    def test_domain_accepts_strings(self):
        model = model_with(net_profile())
        assert model.predict("app", (4.0, 2.0), domain="network") == model.predict(
            "app", (4.0, 2.0), domain=ContentionDomain.NETWORK
        )

    def test_network_heterogeneous_uses_all_max(self):
        # Compute: [8, 2, 0, 0] under N+1 MAX -> (8, 2) -> 1.40.
        # Network: ALL-max regardless of the compute policy ->
        # (8, 4) -> 2.00 on the network matrix.
        model = model_with(net_profile(policy="N+1 MAX"))
        assert model.predict("app", [8, 2, 0, 0]) == pytest.approx(1.4)
        assert model.predict(
            "app", [8, 2, 0, 0], domain=ContentionDomain.NETWORK
        ) == pytest.approx(2.0)

    def test_network_policy_constant(self):
        assert NETWORK_POLICY == "ALL MAX"

    def test_unprofiled_network_target_raises(self):
        model = model_with(net_profile(), flat_profile())
        with pytest.raises(ModelError, match="no network profile"):
            model.predict(
                "plain", (4.0, 2.0), domain=ContentionDomain.NETWORK
            )

    def test_has_network_tracks_profiles(self):
        model = model_with(flat_profile())
        assert not model.has_network
        model.add_profile(net_profile())
        assert model.has_network


class TestCombinedPredictions:
    def make_model(self):
        return model_with(
            net_profile("app"), net_profile("src", score=4.0, net_score=8.0),
            flat_profile("plain"),
        )

    def test_combined_is_compute_times_network_factor(self):
        model = self.make_model()
        nodes = [0, 1]
        co_runners = {0: ["src"], 1: []}
        compute = model.predict_heterogeneous(
            "app", model.pressure_vector(nodes, co_runners)
        )
        factor = model.predict(
            "app",
            model.network_pressure_vector(nodes, co_runners),
            domain=ContentionDomain.NETWORK,
        )
        combined = model.predict_under_corunners("app", nodes, co_runners)
        assert combined == compute * factor
        assert combined > compute

    def test_flat_target_degrades_to_compute_only(self):
        model = self.make_model()
        nodes = [0, 1]
        co_runners = {0: ["src"], 1: ["app"]}
        compute = model.predict_heterogeneous(
            "plain", model.pressure_vector(nodes, co_runners)
        )
        assert model.predict_under_corunners(
            "plain", nodes, co_runners
        ) == compute

    def test_network_pressure_vector_uses_network_scores(self):
        model = self.make_model()
        vector = model.network_pressure_vector(
            [0, 1], {0: ["src"], 1: ["plain"]}
        )
        assert vector[0] == 8.0   # src's network score
        assert vector[1] == 0.0   # plain has no network score


class TestBatchScalarIdentity:
    def make_model(self):
        return model_with(
            net_profile("app"), net_profile("src", net_score=6.0),
            flat_profile("plain"),
        )

    def test_predict_batch_network_domain(self):
        model = self.make_model()
        requests = [
            ("app", (4.0, 2.0)),
            ("src", [8.0, 2.0, 0.0, 0.0]),
            ("app", HomogeneousSetting(2.0, 3.0)),
        ]
        batch = model.predict_batch(
            requests, domain=ContentionDomain.NETWORK
        )
        for value, (workload, interference) in zip(batch, requests):
            assert value == model.predict(
                workload, interference, domain=ContentionDomain.NETWORK
            )

    def test_predict_batch_network_raises_for_flat_target(self):
        model = self.make_model()
        with pytest.raises(ModelError, match="no network profile"):
            model.predict_batch(
                [("app", (4.0, 2.0)), ("plain", (4.0, 2.0))],
                domain=ContentionDomain.NETWORK,
            )

    def test_corunners_batch_matches_combined_scalar(self):
        model = self.make_model()
        items = [
            ("app", [0, 1], {0: ["src"], 1: ["plain"]}),
            ("plain", [0, 1], {0: ["src"], 1: []}),
            ("src", [2, 3], {2: ["app", "app"], 3: ["plain"]}),
            ("app", [0, 1, 2, 3], {}),
        ]
        batch = model.predict_corunners_batch(items)
        for value, (w, n, c) in zip(batch, items):
            assert value == model.predict_under_corunners(w, n, c)

    def test_placement_batches_match_combined_scalar(self):
        model = self.make_model()
        spec = ClusterSpec(num_nodes=8)
        instances = [
            InstanceSpec("app#0", "app", 4),
            InstanceSpec("src#1", "src", 4),
            InstanceSpec("plain#2", "plain", 4),
            InstanceSpec("app#3", "app", 4),
        ]
        placements = [
            Placement.random(spec, instances, seed=s) for s in range(4)
        ]
        for placement in placements:
            batch = model.predict_placement_batch(placement)
            for key in batch:
                instance = next(
                    i for i in instances if i.instance_key == key
                )
                assert batch[key] == model.predict_under_corunners(
                    instance.workload,
                    placement.spanned_nodes(key),
                    placement.co_runner_workloads(key),
                )
        # The wave surface returns a (num_placements, num_instances)
        # row per candidate, in instance order.
        many = model.predict_placements_batch(placements)
        for row, placement in zip(many, placements):
            per_key = model.predict_placement_batch(placement)
            for value, instance in zip(row, instances):
                assert value == per_key[instance.instance_key]


class TestSerialization:
    def test_network_fields_roundtrip(self):
        model = model_with(net_profile("app"), flat_profile("plain"))
        clone = InterferenceModel.from_dict(model.to_dict())
        assert clone.has_network
        p = clone.profile("app")
        assert p.network_score == 4.0
        assert np.array_equal(
            p.network_matrix.values, network_matrix().values
        )
        assert clone.profile("plain").network_matrix is None
        assert clone.predict(
            "app", (4.0, 2.0), domain=ContentionDomain.NETWORK
        ) == model.predict("app", (4.0, 2.0), domain=ContentionDomain.NETWORK)

    def test_flat_profiles_serialize_without_network_keys(self):
        # Scalar-era model files must round-trip byte-identically, so a
        # flat profile may not grow new keys.
        payload = flat_profile().to_dict()
        assert "network_matrix" not in payload
        assert "network_score" not in payload

    def test_legacy_payload_loads_flat(self):
        model = InterferenceModel.from_dict(
            {"plain": flat_profile().to_dict()}
        )
        assert not model.has_network


class TestOnlineModelPassthrough:
    def test_domain_keyword_delegates(self):
        base = model_with(net_profile("app"))
        online = OnlineModel(base)
        assert online.has_network
        assert online.predict(
            "app", (4.0, 2.0), domain=ContentionDomain.NETWORK
        ) == base.predict("app", (4.0, 2.0), domain=ContentionDomain.NETWORK)
        batch = online.predict_batch(
            [("app", (4.0, 2.0))], domain=ContentionDomain.NETWORK
        )
        assert batch[0] == base.predict(
            "app", (4.0, 2.0), domain=ContentionDomain.NETWORK
        )

    def test_network_pressure_vector_delegates(self):
        base = model_with(net_profile("app"), net_profile("src", net_score=5.0))
        online = OnlineModel(base)
        nodes = [0, 1]
        co_runners = {0: ["src"]}
        assert online.network_pressure_vector(
            nodes, co_runners
        ) == base.network_pressure_vector(nodes, co_runners)


class TestStableApiExports:
    def test_facade_exports(self):
        import repro
        from repro import api

        for name in (
            "ContentionDomain", "build_network_profiles", "NETWORK_WORKLOADS",
        ):
            assert name in api.__all__
            assert hasattr(repro, name)

    def test_contention_domain_parse(self):
        assert ContentionDomain.parse("network") is ContentionDomain.NETWORK
        assert (
            ContentionDomain.parse(ContentionDomain.COMPUTE)
            is ContentionDomain.COMPUTE
        )
