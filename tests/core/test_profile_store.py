"""Tests for model persistence."""

import json

import numpy as np
import pytest

from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.profile_store import load_model, save_model
from repro.errors import ModelError


def tiny_model():
    matrix = PropagationMatrix(
        [4.0, 8.0], [0.0, 1.0], np.array([[1.0, 1.2], [1.0, 1.5]])
    )
    profile = InterferenceProfile(
        workload="app", matrix=matrix, policy_name="N MAX", bubble_score=2.5
    )
    return InterferenceModel({"app": profile})


class TestProfileStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(tiny_model(), path)
        loaded = load_model(path)
        assert loaded.workloads == ["app"]
        assert loaded.profile("app").bubble_score == 2.5
        assert loaded.predict_homogeneous("app", 8.0, 1.0) == pytest.approx(1.5)

    def test_file_is_json(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(tiny_model(), path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert "app" in payload["profiles"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError, match="cannot read"):
            load_model(tmp_path / "absent.json")

    def test_not_a_store(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ModelError, match="not a profile store"):
            load_model(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99, "profiles": {}}')
        with pytest.raises(ModelError, match="version"):
            load_model(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_model(path)
