"""Tests for the naive proportional model."""

import numpy as np
import pytest

from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.naive import NaiveProportionalModel


def setup_models():
    pressures = [4.0, 8.0]
    counts = [0.0, 1.0, 2.0, 3.0, 4.0]
    values = np.array(
        [
            [1.0, 1.30, 1.35, 1.38, 1.40],  # high propagation shape
            [1.0, 1.70, 1.75, 1.78, 1.80],
        ]
    )
    profile = InterferenceProfile(
        workload="app",
        matrix=PropagationMatrix(pressures, counts, values),
        policy_name="N+1 MAX",
        bubble_score=4.0,
    )
    model = InterferenceModel({"app": profile})
    return model, NaiveProportionalModel(model)


class TestNaiveHomogeneous:
    def test_full_overlap_matches_model(self):
        # At all-nodes interference the proportional estimate equals
        # the profiled all-nodes value (Figure 2's anchor).
        model, naive = setup_models()
        assert naive.predict_homogeneous("app", 8.0, 4.0) == pytest.approx(1.8)

    def test_proportional_scaling(self):
        # 1 of 4 nodes -> a quarter of the all-nodes degradation,
        # badly underestimating the real 1.70.
        model, naive = setup_models()
        assert naive.predict_homogeneous("app", 8.0, 1.0) == pytest.approx(1.2)
        assert model.predict_homogeneous("app", 8.0, 1.0) == pytest.approx(1.7)

    def test_no_interference(self):
        _, naive = setup_models()
        assert naive.predict_homogeneous("app", 0.0, 2.0) == 1.0
        assert naive.predict_homogeneous("app", 8.0, 0.0) == 1.0


class TestNaiveHeterogeneous:
    def test_fixed_n_plus_one_conversion(self):
        # [8, 2, 0, 0] -> N+1 max -> (8, 2) -> 1 + (2/4) * 0.8 = 1.4.
        _, naive = setup_models()
        assert naive.predict_heterogeneous("app", [8, 2, 0, 0]) == pytest.approx(1.4)

    def test_fraction_over_deployment_span(self):
        # A 2-node deployment: [8, 0] -> (8, 1) -> 1 + (1/2) * 0.8.
        _, naive = setup_models()
        assert naive.predict_heterogeneous("app", [8, 0]) == pytest.approx(1.4)

    def test_under_corunners(self):
        _, naive = setup_models()
        predicted = naive.predict_under_corunners(
            "app", [0, 1, 2, 3], {0: ["app"]}
        )
        # Co-runner score 4.0 on one node, clean elsewhere: no milder
        # interfering nodes, so N+1 max keeps count 1 -> 1 + 0.25*0.4.
        assert predicted == pytest.approx(1.1)

    def test_workloads_delegated(self):
        model, naive = setup_models()
        assert naive.workloads == model.workloads

    def test_pressure_vector_delegated(self):
        _, naive = setup_models()
        assert naive.pressure_vector([0, 1], {0: ["app"]}) == [4.0, 0.0]
