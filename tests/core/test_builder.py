"""Tests for end-to-end model construction."""

import pytest

from repro.core.builder import (
    MATRIX_PROFILERS,
    build_batch_profiles,
    build_model,
    default_counts,
    default_pressures,
)
from repro.errors import ProfilingError
from tests._synthetic import quiet_runner, synthetic_factory


@pytest.fixture(scope="module")
def runner():
    return quiet_runner(
        num_nodes=4,
        factory=synthetic_factory(appA={"score": 4.0}, appB={"score": 1.0}),
    )


@pytest.fixture(scope="module")
def report(runner):
    return build_model(runner, ["appA", "appB"], policy_samples=8, seed=1)


class TestDefaults:
    def test_pressures_one_to_eight(self):
        assert default_pressures() == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_counts_zero_to_n(self):
        assert default_counts(4) == [0, 1, 2, 3, 4]


class TestBuildModel:
    def test_profiles_present(self, report):
        assert set(report.model.workloads) == {"appA", "appB"}

    def test_scores_recovered(self, report):
        assert report.bubble_scores["appA"] == pytest.approx(4.0, abs=0.2)
        assert report.bubble_scores["appB"] == pytest.approx(1.0, abs=0.2)

    def test_selections_and_outcomes_reported(self, report):
        assert set(report.policy_selections) == {"appA", "appB"}
        assert set(report.profiling_outcomes) == {"appA", "appB"}
        for outcome in report.profiling_outcomes.values():
            assert outcome.matrix.is_complete()

    def test_model_predicts(self, report):
        assert report.model.predict_homogeneous("appA", 8.0, 4) > 1.0

    def test_unknown_algorithm(self, runner):
        with pytest.raises(ProfilingError, match="unknown profiling algorithm"):
            build_model(runner, ["appA"], algorithm="magic")

    def test_registered_profilers(self):
        assert set(MATRIX_PROFILERS) == {
            "binary-optimized", "binary-brute", "random-30%", "random-50%",
        }

    def test_random_profiler_builds_complete_model(self, runner):
        report = build_model(
            runner, ["appA"], algorithm="random-30%", policy_samples=4, seed=2
        )
        outcome = report.profiling_outcomes["appA"]
        assert outcome.algorithm == "random-30%"
        assert outcome.matrix.is_complete()

    def test_random_profiler_deterministic(self, runner):
        first = build_model(
            runner, ["appA"], algorithm="random-50%", policy_samples=4, seed=2
        )
        second = build_model(
            runner, ["appA"], algorithm="random-50%", policy_samples=4, seed=2
        )
        assert (
            first.profiling_outcomes["appA"].settings_measured
            == second.profiling_outcomes["appA"].settings_measured
        )

    def test_span_limits_counts(self, runner):
        small = build_model(
            runner, ["appA"], policy_samples=4, seed=2, span=2
        )
        matrix = small.model.profile("appA").matrix
        assert matrix.max_count == 2.0


class TestBatchProfiles:
    def test_adds_profiles(self, runner, report):
        build_batch_profiles(runner, report.model, ["appB2"])
        profile = report.model.profile("appB2")
        assert profile.policy_name == "INTERPOLATE"
        assert profile.matrix.is_complete()
