"""Tests for the interference-aware performance model."""

import numpy as np
import pytest

from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.errors import ModelError


def matrix_4nodes():
    """Counts 0..4, linear-ish in both axes for easy expectations."""
    pressures = [2.0, 4.0, 8.0]
    counts = [0.0, 1.0, 2.0, 3.0, 4.0]
    values = np.array(
        [
            [1.0, 1.05, 1.10, 1.15, 1.20],
            [1.0, 1.10, 1.20, 1.30, 1.40],
            [1.0, 1.20, 1.40, 1.60, 1.80],
        ]
    )
    return PropagationMatrix(pressures, counts, values)


def profile(policy="N+1 MAX", score=3.0, workload="app"):
    return InterferenceProfile(
        workload=workload,
        matrix=matrix_4nodes(),
        policy_name=policy,
        bubble_score=score,
    )


def model_with(*profiles):
    return InterferenceModel({p.workload: p for p in profiles})


class TestProfile:
    def test_policy_instantiation(self):
        assert profile("N MAX").policy.name == "N MAX"

    def test_invalid_policy(self):
        with pytest.raises(ModelError):
            profile(policy="BOGUS")

    def test_negative_score(self):
        with pytest.raises(ModelError):
            profile(score=-1.0)

    def test_serialization_roundtrip(self):
        original = profile()
        clone = InterferenceProfile.from_dict(original.to_dict())
        assert clone.workload == original.workload
        assert clone.policy_name == original.policy_name
        assert clone.bubble_score == original.bubble_score
        assert np.array_equal(clone.matrix.values, original.matrix.values)


class TestPredictions:
    def test_homogeneous_grid_point(self):
        model = model_with(profile())
        assert model.predict_homogeneous("app", 4.0, 2.0) == pytest.approx(1.2)

    def test_heterogeneous_applies_policy(self):
        # [8, 2, 0, 0] under N+1 MAX -> (8, 2) -> 1.40.
        model = model_with(profile("N+1 MAX"))
        assert model.predict_heterogeneous("app", [8, 2, 0, 0]) == pytest.approx(1.4)

    def test_heterogeneous_interpolate_policy(self):
        # [8, 0, 0, 0] under INTERPOLATE -> (2, 4) -> 1.20.
        model = model_with(profile("INTERPOLATE"))
        assert model.predict_heterogeneous("app", [8, 0, 0, 0]) == pytest.approx(1.2)

    def test_span_rescaling(self):
        # A 2-node vector on a 4-count matrix: 1 interfering node out
        # of 2 spans scales to 2 of 4.
        model = model_with(profile("N MAX"))
        assert model.predict_heterogeneous("app", [8, 0]) == pytest.approx(1.4)

    def test_unknown_workload(self):
        model = model_with(profile())
        with pytest.raises(ModelError, match="no interference profile"):
            model.predict_homogeneous("ghost", 4.0, 1.0)


class TestUnifiedPredict:
    """`predict` dispatches on the interference description's type."""

    def test_homogeneous_setting_object(self):
        from repro.core.curves import HomogeneousSetting

        model = model_with(profile())
        assert model.predict(
            "app", HomogeneousSetting(4.0, 2.0)
        ) == pytest.approx(1.2)

    def test_pair_tuple_is_homogeneous(self):
        model = model_with(profile())
        assert model.predict("app", (4.0, 2.0)) == pytest.approx(1.2)

    def test_list_is_a_per_node_vector(self):
        model = model_with(profile("N+1 MAX"))
        assert model.predict("app", [8, 2, 0, 0]) == pytest.approx(1.4)

    def test_two_element_list_is_a_two_node_vector(self):
        # The deliberate asymmetry: (8, 0) is pressure 8 on 0 nodes;
        # [8, 0] is a 2-node vector (rescaled to the 4-count matrix).
        model = model_with(profile("N MAX"))
        assert model.predict("app", (8.0, 0.0)) == pytest.approx(1.0)
        assert model.predict("app", [8.0, 0.0]) == pytest.approx(1.4)

    def test_numpy_array_is_a_vector(self):
        model = model_with(profile("N+1 MAX"))
        assert model.predict(
            "app", np.array([8.0, 2.0, 0.0, 0.0])
        ) == pytest.approx(1.4)

    def test_wrong_arity_tuple_rejected(self):
        model = model_with(profile())
        with pytest.raises(ModelError, match="pressure, count"):
            model.predict("app", (8.0, 2.0, 0.0))

    def test_non_interference_types_rejected(self):
        model = model_with(profile())
        with pytest.raises(ModelError, match="interference must be"):
            model.predict("app", "8,2")
        with pytest.raises(ModelError, match="interference must be"):
            model.predict("app", 8.0)

    def test_legacy_methods_agree_with_predict(self):
        model = model_with(profile("N+1 MAX"))
        assert model.predict_homogeneous("app", 4.0, 2.0) == model.predict(
            "app", (4.0, 2.0)
        )
        assert model.predict_heterogeneous(
            "app", [8, 2, 0, 0]
        ) == model.predict("app", [8, 2, 0, 0])


class TestPressureVector:
    def test_combines_scores(self):
        model = model_with(profile(workload="a", score=3.0),
                           profile(workload="b", score=3.0))
        vector = model.pressure_vector([0, 1], {0: ["a"], 1: ["a", "b"]})
        assert vector[0] == 3.0
        # Two equal scores combine to S+1 without surcharge (the model
        # cannot observe the hardware's collision surcharge).
        assert vector[1] == pytest.approx(4.0)

    def test_empty_node(self):
        model = model_with(profile(workload="a"))
        assert model.pressure_vector([0, 1], {0: ["a"]}) == [3.0, 0.0]

    def test_predict_under_corunners(self):
        model = model_with(profile(workload="a", score=8.0, policy="N MAX"),
                           profile(workload="t", policy="N MAX"))
        predicted = model.predict_under_corunners(
            "t", [0, 1, 2, 3], {0: ["a"]}
        )
        assert predicted == pytest.approx(1.2)


class TestModelManagement:
    def test_workloads_sorted(self):
        model = model_with(profile(workload="b"), profile(workload="a"))
        assert model.workloads == ["a", "b"]

    def test_add_profile(self):
        model = model_with(profile(workload="a"))
        model.add_profile(profile(workload="c"))
        assert "c" in model.workloads

    def test_serialization_roundtrip(self):
        model = model_with(profile(workload="a"), profile(workload="b"))
        clone = InterferenceModel.from_dict(model.to_dict())
        assert clone.workloads == model.workloads
        assert clone.predict_homogeneous("a", 4.0, 2.0) == pytest.approx(1.2)
