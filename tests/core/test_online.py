"""Tests for the online model refinement extension."""

import numpy as np
import pytest

from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.online import OnlineModel
from repro.errors import ModelError


def base_model():
    matrix = PropagationMatrix(
        [4.0, 8.0],
        [0.0, 1.0, 2.0],
        np.array([[1.0, 1.2, 1.4], [1.0, 1.5, 2.0]]),
    )
    profile = InterferenceProfile(
        workload="app", matrix=matrix, policy_name="N MAX", bubble_score=3.0
    )
    return InterferenceModel({"app": profile})


class TestPriorBehaviour:
    def test_unobserved_matches_static(self):
        online = OnlineModel(base_model())
        static = base_model()
        assert online.predict_homogeneous("app", 8.0, 2.0) == (
            static.predict_homogeneous("app", 8.0, 2.0)
        )

    def test_solo_prediction_never_distorted(self):
        online = OnlineModel(base_model(), learning_rate=1.0)
        for _ in range(5):
            online.observe("app", predicted=1.5, measured=2.0)
        assert online.predict_homogeneous("app", 0.0, 0.0) == 1.0

    def test_delegations(self):
        online = OnlineModel(base_model())
        assert online.workloads == ["app"]
        assert online.profile("app").bubble_score == 3.0
        assert online.pressure_vector([0], {0: ["app"]}) == [3.0]


class TestLearning:
    def test_underprediction_raises_future_predictions(self):
        online = OnlineModel(base_model(), learning_rate=1.0, max_correction=0.5)
        before = online.predict_homogeneous("app", 8.0, 2.0)
        online.observe("app", predicted=before, measured=before * 1.2)
        after = online.predict_homogeneous("app", 8.0, 2.0)
        assert after > before

    def test_overprediction_lowers_future_predictions(self):
        online = OnlineModel(base_model(), learning_rate=1.0, max_correction=0.5)
        before = online.predict_homogeneous("app", 8.0, 2.0)
        online.observe("app", predicted=before, measured=1.0 + (before - 1.0) * 0.6)
        assert online.predict_homogeneous("app", 8.0, 2.0) < before

    def test_correction_bounded(self):
        online = OnlineModel(base_model(), learning_rate=1.0, max_correction=0.2)
        for _ in range(10):
            online.observe("app", predicted=1.1, measured=9.0)
        assert online.correction("app").factor <= 1.2 + 1e-9

    def test_converges_to_systematic_bias(self):
        # Truth is consistently 1.25x the static interference part.
        online = OnlineModel(base_model(), learning_rate=0.5, max_correction=0.5)
        for _ in range(25):
            predicted = online.predict_homogeneous("app", 8.0, 2.0)
            measured = 1.0 + (2.0 - 1.0) * 1.25  # static part is 1.0
            online.observe("app", predicted, measured)
        final = online.predict_homogeneous("app", 8.0, 2.0)
        assert final == pytest.approx(measured, rel=0.03)

    def test_observation_bookkeeping(self):
        online = OnlineModel(base_model())
        online.observe("app", 1.5, 1.8)
        state = online.correction("app")
        assert state.observations == 1
        assert state.last_error_percent == pytest.approx(100 * 0.3 / 1.8)
        assert len(state.history) == 1

    def test_observe_placement(self):
        online = OnlineModel(base_model())
        online.observe_placement(
            {"app#0": 1.5}, {"app#0": 1.8}, {"app#0": "app"}
        )
        assert online.correction("app").observations == 1

    def test_staleness_report(self):
        online = OnlineModel(base_model())
        online.observe("app", 1.5, 1.8)
        report = online.staleness_report()
        assert report[0][0] == "app"
        assert report[0][1] == 1


class TestValidation:
    def test_bad_learning_rate(self):
        with pytest.raises(ModelError):
            OnlineModel(base_model(), learning_rate=0.0)

    def test_bad_correction_bound(self):
        with pytest.raises(ModelError):
            OnlineModel(base_model(), max_correction=1.0)

    def test_bad_observation(self):
        online = OnlineModel(base_model())
        with pytest.raises(ModelError):
            online.observe("app", 0.0, 1.0)
