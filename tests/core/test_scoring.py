"""Tests for bubble-score measurement."""

import pytest

from repro.core.scoring import BubbleCalibration, BubbleScoreMeter, calibrate_probe
from repro.errors import ModelError
from tests._synthetic import quiet_runner, synthetic_factory


class TestCalibration:
    def test_default_levels(self):
        calibration = calibrate_probe()
        assert list(calibration.reference_pressures) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_slowdowns_increase(self):
        calibration = calibrate_probe()
        slowdowns = list(calibration.slowdowns)
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[0] > 1.0

    def test_inversion_roundtrip(self):
        calibration = calibrate_probe()
        for level, slowdown in zip(
            calibration.reference_pressures, calibration.slowdowns
        ):
            assert calibration.pressure_for(slowdown) == pytest.approx(level)

    def test_no_slowdown_is_zero_pressure(self):
        assert calibrate_probe().pressure_for(1.0) == 0.0
        assert calibrate_probe().pressure_for(0.9) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            BubbleCalibration((1.0,), (1.5,))  # too few points
        with pytest.raises(ModelError):
            BubbleCalibration((1.0, 2.0), (1.5,))  # length mismatch
        with pytest.raises(ModelError):
            BubbleCalibration((1.0, 2.0), (1.5, 1.4))  # non-monotone


class TestScoreMeter:
    def test_recovers_generated_pressure(self):
        runner = quiet_runner(factory=synthetic_factory(loud={"score": 5.0}))
        meter = BubbleScoreMeter(runner)
        assert meter.score("loud") == pytest.approx(5.0, abs=0.15)

    def test_quiet_app_scores_low(self):
        runner = quiet_runner(factory=synthetic_factory(quietapp={"score": 0.2}))
        meter = BubbleScoreMeter(runner)
        assert meter.score("quietapp") == pytest.approx(0.2, abs=0.1)

    def test_master_discount_lowers_average(self):
        runner = quiet_runner(
            factory=synthetic_factory(
                framework={"score": 2.0, "master_factor": 0.25}
            )
        )
        meter = BubbleScoreMeter(runner)
        # 4 nodes: one master unit at 0.5, three at 2.0 -> mean 1.625.
        assert meter.score("framework") == pytest.approx(1.625, abs=0.1)

    def test_node_readings_cover_cluster(self):
        runner = quiet_runner(factory=synthetic_factory(app={"score": 3.0}))
        readings = BubbleScoreMeter(runner).node_readings("app")
        assert set(readings) == set(range(4))

    def test_score_table(self):
        runner = quiet_runner(
            factory=synthetic_factory(a={"score": 1.0}, b={"score": 4.0})
        )
        table = BubbleScoreMeter(runner).score_table(["a", "b"])
        assert table["b"] > table["a"]

    def test_invalid_probe_level(self):
        runner = quiet_runner()
        with pytest.raises(ModelError):
            BubbleScoreMeter(runner, probe_level=0.0)
