"""Tests for propagation matrices."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.curves import (
    HomogeneousSetting,
    PropagationMatrix,
    exhaustive_matrix_from,
)
from repro.errors import ModelError


def simple_matrix():
    """2 pressure levels x counts 0..2 with hand-set values."""
    return PropagationMatrix(
        pressures=[4.0, 8.0],
        counts=[0.0, 1.0, 2.0],
        values=np.array([[1.0, 1.2, 1.4], [1.0, 1.6, 2.0]]),
    )


class TestConstruction:
    def test_valid(self):
        matrix = simple_matrix()
        assert matrix.num_levels == 2
        assert matrix.max_count == 2.0

    def test_empty_has_ones_column(self):
        matrix = PropagationMatrix.empty([1.0, 2.0], [0.0, 1.0])
        assert (matrix.values[:, 0] == 1.0).all()
        assert not matrix.is_complete()

    def test_counts_must_start_at_zero(self):
        with pytest.raises(ModelError, match="start at 0"):
            PropagationMatrix([1.0], [1.0, 2.0], np.ones((1, 2)))

    def test_pressures_strictly_increasing(self):
        with pytest.raises(ModelError):
            PropagationMatrix([2.0, 2.0], [0.0, 1.0], np.ones((2, 2)))

    def test_counts_strictly_increasing(self):
        with pytest.raises(ModelError):
            PropagationMatrix([1.0], [0.0, 1.0, 1.0], np.ones((1, 3)))

    def test_shape_mismatch(self):
        with pytest.raises(ModelError, match="shape"):
            PropagationMatrix([1.0, 2.0], [0.0, 1.0], np.ones((1, 2)))

    def test_copy_is_deep(self):
        matrix = simple_matrix()
        clone = matrix.copy()
        clone.set(0, 1, 99.0)
        assert matrix.get(0, 1) == 1.2


class TestCellAccess:
    def test_set_get(self):
        matrix = PropagationMatrix.empty([1.0], [0.0, 1.0])
        matrix.set(0, 1, 1.5)
        assert matrix.get(0, 1) == 1.5
        assert matrix.is_complete()

    def test_non_positive_rejected(self):
        matrix = PropagationMatrix.empty([1.0], [0.0, 1.0])
        with pytest.raises(ModelError):
            matrix.set(0, 1, 0.0)


class TestLookup:
    def test_exact_grid_points(self):
        matrix = simple_matrix()
        assert matrix.lookup(HomogeneousSetting(8.0, 2.0)) == 2.0
        assert matrix.lookup(HomogeneousSetting(4.0, 1.0)) == 1.2

    def test_no_interference(self):
        matrix = simple_matrix()
        assert matrix.lookup(HomogeneousSetting(0.0, 2.0)) == 1.0
        assert matrix.lookup(HomogeneousSetting(8.0, 0.0)) == 1.0

    def test_interpolates_counts(self):
        matrix = simple_matrix()
        assert matrix.lookup(HomogeneousSetting(8.0, 1.5)) == pytest.approx(1.8)

    def test_interpolates_pressures(self):
        matrix = simple_matrix()
        assert matrix.lookup(HomogeneousSetting(6.0, 1.0)) == pytest.approx(1.4)

    def test_below_first_level_anchors_at_one(self):
        # Pressure 2 is halfway between the implicit pressure-0 row of
        # ones and the pressure-4 row.
        matrix = simple_matrix()
        assert matrix.lookup(HomogeneousSetting(2.0, 1.0)) == pytest.approx(1.1)

    def test_clamps_above_grid(self):
        matrix = simple_matrix()
        assert matrix.lookup(HomogeneousSetting(12.0, 5.0)) == 2.0

    def test_incomplete_rejected(self):
        matrix = PropagationMatrix.empty([1.0], [0.0, 1.0])
        with pytest.raises(ModelError, match="incomplete"):
            matrix.lookup(HomogeneousSetting(1.0, 1.0))

    @given(
        pressure=st.floats(min_value=0.0, max_value=10.0),
        count=st.floats(min_value=0.0, max_value=4.0),
    )
    def test_lookup_bounded_by_extremes(self, pressure, count):
        matrix = simple_matrix()
        value = matrix.lookup(HomogeneousSetting(pressure, count))
        assert 1.0 <= value <= 2.0


class TestSerialization:
    def test_roundtrip(self):
        matrix = simple_matrix()
        clone = PropagationMatrix.from_dict(matrix.to_dict())
        assert np.array_equal(clone.values, matrix.values)
        assert np.array_equal(clone.pressures, matrix.pressures)


class TestHomogeneousSetting:
    def test_validation(self):
        with pytest.raises(ValueError):
            HomogeneousSetting(-1.0, 1.0)
        with pytest.raises(ValueError):
            HomogeneousSetting(1.0, -1.0)


class TestExhaustive:
    def test_measures_every_cell(self):
        calls = []

        def measure(p, k):
            calls.append((p, k))
            return 1.0 + p * k / 16.0

        matrix = exhaustive_matrix_from(measure, [1.0, 2.0], [0.0, 1.0, 2.0])
        assert matrix.is_complete()
        assert len(calls) == 4  # 2 pressures x 2 non-zero counts
        assert matrix.get(1, 2) == pytest.approx(1.25)
