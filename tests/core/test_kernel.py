"""Bit-identity tests for the vectorized prediction kernel.

The batch path (:mod:`repro.core.kernel`) promises results that are
*bit-identical* to the scalar reference, not merely close — so every
comparison here is ``==``, never ``pytest.approx``.
"""

import random

import numpy as np
import pytest

from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.kernel import PredictionRequest
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.online import OnlineModel
from repro.errors import ModelError

POLICIES = ("N MAX", "N+1 MAX", "ALL MAX", "INTERPOLATE")

#: The paper's EC2 study samples node counts sparsely (Section 5.2).
EC2_COUNTS = [0, 1, 2, 4, 8, 16, 24, 32]


def random_model(rng, num_workloads=5, *, ec2=False):
    profiles = {}
    for i in range(num_workloads):
        name = f"w{i}"
        counts = EC2_COUNTS if ec2 else list(range(rng.randint(3, 6)))
        pressures = sorted(
            rng.uniform(0.5, 10.0) for _ in range(rng.randint(2, 5))
        )
        values = np.array(
            [
                [1.0 + rng.random() * p * (c + 1) / 8.0 for c in counts]
                for p in pressures
            ]
        )
        profiles[name] = InterferenceProfile(
            workload=name,
            matrix=PropagationMatrix(pressures, counts, values),
            policy_name=POLICIES[i % len(POLICIES)],
            bubble_score=rng.uniform(0.0, 9.0),
        )
    return InterferenceModel(profiles)


def random_request(rng, workloads):
    workload = rng.choice(workloads)
    form = rng.randrange(4)
    if form == 0:
        return workload, HomogeneousSetting(
            rng.uniform(0.0, 9.0), rng.uniform(0.0, 5.0)
        )
    if form == 1:
        return workload, (rng.uniform(0.0, 9.0), rng.uniform(0.0, 5.0))
    length = rng.randint(1, 5)
    if form == 2 and rng.random() < 0.3:
        return workload, [0.0] * length  # idle vector
    vector = [rng.uniform(0.0, 9.0) for _ in range(length)]
    if rng.random() < 0.2:
        vector = [p * 0.37 for p in vector]  # exercise fractional values
    return workload, vector


class TestBatchIdentity:
    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_requests_match_scalar_bitwise(self, seed):
        rng = random.Random(seed)
        model = random_model(rng, ec2=(seed % 2 == 0))
        workloads = sorted(model.workloads)
        requests = [random_request(rng, workloads) for _ in range(40)]
        scalar = [model.predict(w, arg) for w, arg in requests]
        batch = model.predict_batch(requests)
        assert list(batch) == scalar

    def test_small_and_large_batches_identical(self):
        # Small per-workload groups run the scalar ops directly, large
        # ones the array path; both must agree with the reference.
        rng = random.Random(99)
        model = random_model(rng, num_workloads=2)
        workloads = sorted(model.workloads)
        for size in (1, 2, 5, 30, 80):
            requests = [
                random_request(rng, workloads) for _ in range(size)
            ]
            scalar = [model.predict(w, arg) for w, arg in requests]
            assert list(model.predict_batch(requests)) == scalar

    def test_prediction_request_objects_accepted(self):
        rng = random.Random(3)
        model = random_model(rng)
        requests = [
            PredictionRequest("w0", [1.5, 2.5]),
            PredictionRequest("w1", HomogeneousSetting(4.0, 2.0)),
            PredictionRequest("w2", (3.0, 1.0)),
        ]
        scalar = [
            model.predict(r.workload, r.interference) for r in requests
        ]
        assert list(model.predict_batch(requests)) == scalar

    def test_float64_ndarray_fast_path(self):
        rng = random.Random(5)
        model = random_model(rng)
        vector = np.array([1.25, 0.0, 3.5], dtype=np.float64)
        assert model.predict("w0", vector) == model.predict(
            "w0", [float(p) for p in vector]
        )
        batch = model.predict_batch([("w0", vector), ("w1", vector)])
        assert list(batch) == [
            model.predict("w0", vector),
            model.predict("w1", vector),
        ]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_matches_scalar(self, policy):
        rng = random.Random(hash(policy) % 1000)
        counts = list(range(5))
        pressures = [2.0, 4.0, 8.0]
        values = np.array(
            [[1.0 + 0.05 * p * c for c in counts] for p in pressures]
        )
        model = InterferenceModel(
            {
                "app": InterferenceProfile(
                    workload="app",
                    matrix=PropagationMatrix(pressures, counts, values),
                    policy_name=policy,
                    bubble_score=2.0,
                )
            }
        )
        requests = [
            ("app", [rng.uniform(0.0, 9.0) for _ in range(rng.randint(1, 4))])
            for _ in range(25)
        ]
        scalar = [model.predict(w, arg) for w, arg in requests]
        assert list(model.predict_batch(requests)) == scalar

    def test_ec2_sparse_count_axis(self):
        rng = random.Random(11)
        model = random_model(rng, ec2=True)
        # Fractional converted counts land between the sparse knots.
        requests = [
            ("w0", [rng.uniform(0.0, 9.0) for _ in range(3)])
            for _ in range(30)
        ]
        scalar = [model.predict(w, arg) for w, arg in requests]
        assert list(model.predict_batch(requests)) == scalar

    def test_online_model_corrections_applied(self):
        rng = random.Random(21)
        base = random_model(rng)
        online = OnlineModel(base)
        online.observe("w0", predicted=1.2, measured=1.5)
        online.observe("w2", predicted=1.4, measured=1.1)
        requests = [
            ("w0", [2.0, 3.0]),
            ("w2", [1.0]),
            ("w1", [4.0, 0.5, 2.0]),
        ]
        scalar = [
            online.predict_heterogeneous(w, arg) for w, arg in requests
        ]
        assert list(online.predict_batch(requests)) == scalar


class TestSnapshotInvalidation:
    def test_add_profile_rebuilds_kernel(self):
        rng = random.Random(7)
        model = random_model(rng)
        first = model.prediction_kernel()
        assert model.prediction_kernel() is first  # cached snapshot
        counts = [0, 1, 2]
        matrix = PropagationMatrix(
            [2.0, 4.0], counts, np.array([[1.0, 1.1, 1.2], [1.0, 1.3, 1.5]])
        )
        model.add_profile(
            InterferenceProfile(
                workload="fresh",
                matrix=matrix,
                policy_name="N MAX",
                bubble_score=1.0,
            )
        )
        rebuilt = model.prediction_kernel()
        assert rebuilt is not first
        assert rebuilt.knows("fresh")
        assert not first.knows("fresh")
        # Predictions through the new snapshot see the new profile.
        assert model.predict_batch([("fresh", [1.0])])[0] == model.predict(
            "fresh", [1.0]
        )

    def test_kernel_snapshot_is_frozen(self):
        # Mutating the live model's matrix after the snapshot must not
        # leak into the old kernel (matrices are deep-copied).
        rng = random.Random(13)
        model = random_model(rng)
        kernel = model.prediction_kernel()
        before = kernel.lookup_settings(
            "w0", np.array([4.0]), np.array([2.0])
        )[0]
        model.profile("w0").matrix.values[:] += 0.5
        after = kernel.lookup_settings(
            "w0", np.array([4.0]), np.array([2.0])
        )[0]
        assert before == after


class TestErrorParity:
    def test_unknown_workload_raises_scalar_error(self):
        rng = random.Random(17)
        model = random_model(rng)
        with pytest.raises(ModelError) as scalar_err:
            model.predict("nope", [1.0, 2.0])
        with pytest.raises(ModelError) as batch_err:
            model.predict_batch([("w0", [1.0]), ("nope", [1.0, 2.0])])
        assert str(batch_err.value) == str(scalar_err.value)

    def test_empty_vector_raises_scalar_error(self):
        rng = random.Random(19)
        model = random_model(rng)
        with pytest.raises(ModelError) as scalar_err:
            model.predict("w0", [])
        with pytest.raises(ModelError) as batch_err:
            model.predict_batch([("w1", [1.0]), ("w0", [])])
        assert str(batch_err.value) == str(scalar_err.value)

    def test_negative_pressure_raises_scalar_error(self):
        rng = random.Random(23)
        model = random_model(rng)
        with pytest.raises(Exception) as scalar_err:
            model.predict("w0", [1.0, -2.0])
        with pytest.raises(Exception) as batch_err:
            model.predict_batch([("w0", [1.0, -2.0])])
        assert type(batch_err.value) is type(scalar_err.value)
        assert str(batch_err.value) == str(scalar_err.value)

    def test_nan_pressure_raises_scalar_error(self):
        rng = random.Random(29)
        model = random_model(rng)
        with pytest.raises(Exception) as scalar_err:
            model.predict("w0", [float("nan")])
        with pytest.raises(Exception) as batch_err:
            model.predict_batch([("w0", [float("nan")])])
        assert type(batch_err.value) is type(scalar_err.value)
        assert str(batch_err.value) == str(scalar_err.value)
