"""Tests for the heterogeneity mapping policies.

The central fixture is the worked example of Figure 5: four workloads
with pressure lists and their converted homogeneous equivalents.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import (
    AllMaxPolicy,
    InterpolatePolicy,
    NMaxPolicy,
    NPlusOneMaxPolicy,
    POLICY_CLASSES,
    all_policies,
    get_policy,
)
from repro.errors import ModelError

vectors = st.lists(
    st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=8
)


class TestFigure5Examples:
    def test_workload_a_n_plus_one_max(self):
        # A: [3, 2, 1, 1] -> [3, 3, 0, 0]
        setting = NPlusOneMaxPolicy().convert([3, 2, 1, 1])
        assert (setting.pressure, setting.count) == (3.0, 2.0)

    def test_workload_b_all_max(self):
        # B: [5, 2, 2, 1] -> [5, 5, 5, 5]
        setting = AllMaxPolicy().convert([5, 2, 2, 1])
        assert (setting.pressure, setting.count) == (5.0, 4.0)

    def test_workload_c_interpolate(self):
        # C: [3, 5, 3, 1] -> [3, 3, 3, 3]
        setting = InterpolatePolicy().convert([3, 5, 3, 1])
        assert (setting.pressure, setting.count) == (3.0, 4.0)

    def test_workload_d_n_max(self):
        # D: [5, 5, 3, 2] -> [5, 5, 0, 0]
        setting = NMaxPolicy().convert([5, 5, 3, 2])
        assert (setting.pressure, setting.count) == (5.0, 2.0)


class TestNMax:
    def test_single_peak(self):
        setting = NMaxPolicy().convert([7, 1, 0, 0])
        assert (setting.pressure, setting.count) == (7.0, 1.0)

    def test_all_zero(self):
        setting = NMaxPolicy().convert([0, 0, 0])
        assert (setting.pressure, setting.count) == (0.0, 0.0)

    def test_band_groups_near_ties(self):
        setting = NMaxPolicy(band=0.5).convert([5.0, 4.7, 1.0])
        assert setting.count == 2.0

    def test_negative_band_rejected(self):
        with pytest.raises(ModelError):
            NMaxPolicy(band=-0.1)


class TestNPlusOneMax:
    def test_no_milder_nodes_no_extra(self):
        # All interfering nodes already at the peak: nothing to merge.
        setting = NPlusOneMaxPolicy().convert([5, 5, 0, 0])
        assert setting.count == 2.0

    def test_count_capped_at_span(self):
        setting = NPlusOneMaxPolicy().convert([5, 5, 5, 3])
        assert setting.count == 4.0

    def test_all_zero(self):
        setting = NPlusOneMaxPolicy().convert([0, 0])
        assert (setting.pressure, setting.count) == (0.0, 0.0)


class TestAllMax:
    def test_single_loud_node_propagates(self):
        setting = AllMaxPolicy().convert([6, 0, 0, 0, 0, 0, 0, 0])
        assert (setting.pressure, setting.count) == (6.0, 8.0)

    def test_all_zero(self):
        setting = AllMaxPolicy().convert([0])
        assert (setting.pressure, setting.count) == (0.0, 0.0)


class TestInterpolate:
    def test_zeros_count_toward_average(self):
        setting = InterpolatePolicy().convert([8, 0, 0, 0])
        assert (setting.pressure, setting.count) == (2.0, 4.0)

    def test_all_zero(self):
        setting = InterpolatePolicy().convert([0, 0])
        assert (setting.pressure, setting.count) == (0.0, 0.0)


class TestRegistry:
    def test_four_policies(self):
        assert set(POLICY_CLASSES) == {"N MAX", "N+1 MAX", "ALL MAX", "INTERPOLATE"}

    def test_all_policies_fresh(self):
        assert len(all_policies()) == 4

    def test_get_policy(self):
        assert isinstance(get_policy("N MAX"), NMaxPolicy)

    def test_get_unknown(self):
        with pytest.raises(ModelError, match="unknown policy"):
            get_policy("MEDIAN")


class TestInvariants:
    @given(vector=vectors)
    def test_count_bounded_by_span(self, vector):
        for policy in all_policies():
            setting = policy.convert(vector)
            assert 0.0 <= setting.count <= len(vector)

    @given(vector=vectors)
    def test_pressure_bounded_by_peak(self, vector):
        for policy in all_policies():
            setting = policy.convert(vector)
            assert setting.pressure <= max(vector) + 1e-12

    @given(vector=vectors)
    def test_max_family_count_ordering(self, vector):
        # N max <= N+1 max <= ALL max in converted node count.
        n = NMaxPolicy().convert(vector)
        n1 = NPlusOneMaxPolicy().convert(vector)
        allm = AllMaxPolicy().convert(vector)
        assert n.count <= n1.count <= allm.count

    @given(vector=vectors)
    def test_empty_rejected(self, vector):
        with pytest.raises(ModelError):
            NMaxPolicy().convert([])
