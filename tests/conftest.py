"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.runner import ClusterRunner
from tests._synthetic import quiet_runner


@pytest.fixture
def small_runner() -> ClusterRunner:
    """A noise-free 4-node environment with synthetic BSP workloads."""
    return quiet_runner(num_nodes=4)


@pytest.fixture(scope="session")
def catalog_runner() -> ClusterRunner:
    """The real 8-node testbed with the Table 1 catalog (shared)."""
    return ClusterRunner(base_seed=99)
