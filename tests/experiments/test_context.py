"""Tests for the shared experiment context (on a synthetic runner)."""

import pytest

from repro.experiments.context import ExperimentContext
from repro.sim.runner import ClusterRunner


@pytest.fixture(scope="module")
def context():
    # Small sampling keeps this fast; the catalog runner is the real one.
    return ExperimentContext(
        ClusterRunner(base_seed=77), policy_samples=6, seed=77
    )


class TestLazyArtifacts:
    def test_truth_matrix_cached(self, context):
        first = context.truth_matrix("M.lmps")
        assert context.truth_matrix("M.lmps") is first
        assert first.is_complete()

    def test_oracle_shared(self, context):
        assert context.oracle("M.lmps") is context.oracle("M.lmps")

    def test_workload_lists(self, context):
        assert len(context.distributed_workloads()) == 12
        assert len(context.batch_workloads()) == 6

    def test_policy_selection_cached(self, context):
        first = context.policy_selection("M.lmps")
        assert context.policy_selection("M.lmps") is first
        assert first.samples == 6


class TestAxes:
    def test_default_axes_match_cluster(self, context):
        assert context.counts == [0, 1, 2, 3, 4, 5, 6, 7, 8]
        assert context.pressures == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_custom_counts(self):
        custom = ExperimentContext(
            ClusterRunner(base_seed=1), counts=[0.0, 2.0, 4.0]
        )
        assert custom.counts == [0.0, 2.0, 4.0]

    def test_placement_span_constant(self, context):
        assert context.PLACEMENT_SPAN == 4
