"""Tests for the Table 5 mixes and QoS mix definitions."""

import pytest

from repro.apps.catalog import ALL_WORKLOADS
from repro.errors import ConfigurationError
from repro.experiments.table5_mixes import (
    MixSpec,
    QOS_MIXES,
    TABLE5_MIXES,
    mix_by_name,
    render_table5,
    workload_pool,
)


class TestTable5Contents:
    def test_ten_mixes(self):
        assert len(TABLE5_MIXES) == 10

    def test_paper_names(self):
        names = [mix.name for mix in TABLE5_MIXES]
        assert names == [
            "HW1", "HW2", "HW3", "HM1", "HM2", "HM3", "MW", "MM", "MB", "L"
        ]

    def test_exact_paper_rows(self):
        assert mix_by_name("HW1").workloads == ("N.mg", "N.cg", "H.KM", "M.lmps")
        assert mix_by_name("HM3").workloads == ("S.CF", "H.KM", "M.Gems", "M.Gems")
        assert mix_by_name("L").workloads == ("M.lesl", "M.zeus", "M.zeus", "N.mg")

    def test_difficulty_bands(self):
        bands = {mix.name: mix.difficulty for mix in TABLE5_MIXES}
        assert bands["HW1"] == "high"
        assert bands["MB"] == "medium"
        assert bands["L"] == "low"

    def test_all_workloads_in_catalog(self):
        for mix in TABLE5_MIXES + QOS_MIXES:
            for abbrev in mix.workloads:
                assert abbrev in ALL_WORKLOADS, (mix.name, abbrev)

    def test_render(self):
        assert "HW1" in render_table5()

    def test_workload_pool(self):
        pool = workload_pool()
        assert pool["H.KM"] >= 4  # K-means appears in many mixes
        assert pool["M.Gems"] >= 4


class TestMixInstances:
    def test_unique_keys_with_duplicates(self):
        # HM3 runs M.Gems twice: keys must stay unique.
        instances = mix_by_name("HM3").instances()
        keys = [spec.instance_key for spec in instances]
        assert len(set(keys)) == 4
        assert "M.Gems#2" in keys and "M.Gems#3" in keys

    def test_default_four_units(self):
        for spec in mix_by_name("HW1").instances():
            assert spec.num_units == 4

    def test_qos_mix_unit_counts(self):
        instances = QOS_MIXES[0].instances()
        counts = [spec.num_units for spec in instances]
        assert counts == [4, 4, 4, 2, 2]
        assert sum(counts) == 16  # fills the 8x2 unit slots

    def test_qos_instance_key(self):
        mix = QOS_MIXES[0]
        assert mix.qos_instance_key == f"{mix.workloads[0]}#0"

    def test_qos_key_requires_target(self):
        with pytest.raises(ConfigurationError):
            mix_by_name("HW1").qos_instance_key

    def test_weights_proportional_to_units(self):
        instances = QOS_MIXES[0].instances()
        assert instances[0].weight == 1.0
        assert instances[3].weight == 0.5


class TestMixValidation:
    def test_too_few_workloads(self):
        with pytest.raises(ConfigurationError):
            MixSpec("x", ("A",))

    def test_unit_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            MixSpec("x", ("A", "B"), unit_counts=(4,))

    def test_qos_index_bounds(self):
        with pytest.raises(ConfigurationError):
            MixSpec("x", ("A", "B"), qos_index=2)

    def test_unknown_mix(self):
        with pytest.raises(ConfigurationError):
            mix_by_name("ZZ")
