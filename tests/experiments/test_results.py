"""Unit tests for experiment result classes (no simulation needed)."""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.experiments.fig2_motivation import Fig2Result
from repro.experiments.fig3_propagation import Fig3Result
from repro.experiments.fig9_gems import Fig9Result
from repro.experiments.fig11_performance import Fig11Result, MixPerformance
from repro.experiments.fig13_ec2_validation import Fig13Result
from repro.experiments.table4_bubble_scores import Table4Result
from repro.experiments.table5_mixes import MixSpec


class TestFig2Result:
    def test_render_columns(self):
        result = Fig2Result(
            counts=[0, 1], real=[1.0, 1.5], naive=[1.0, 1.1]
        )
        text = result.render()
        assert "naive expectation" in text and "real execution" in text
        assert "1.500" in text


class TestFig3Result:
    def _result(self):
        matrix = PropagationMatrix(
            [4.0, 8.0], [0.0, 1.0], np.array([[1.0, 1.2], [1.0, 1.5]])
        )
        return Fig3Result(matrices={"app": matrix})

    def test_curve_extraction(self):
        assert self._result().curve("app", 8.0) == [1.0, 1.5]

    def test_render_all_headers(self):
        assert "== app ==" in self._result().render_all()


class TestFig9Result:
    def test_errors(self):
        result = Fig9Result(
            workloads=("a",), predicted=(1.1,), actual=(1.0,)
        )
        assert result.errors()[0] == pytest.approx(10.0)
        assert "a" in result.render()


class TestFig11Result:
    def _result(self):
        mixes = []
        for name, best in (("X", 1.30), ("Y", 1.10), ("Z", 1.02)):
            mixes.append(
                MixPerformance(
                    mix=MixSpec(name, ("A", "B", "C", "D")),
                    speedups={
                        "best": best, "random": 1.0,
                        "naive": 1.0, "worst": 1.0,
                    },
                    measured_times={},
                )
            )
        return Fig11Result(mixes=tuple(mixes))

    def test_measured_bands(self):
        bands = self._result().measured_bands()
        assert bands == {"X": "high", "Y": "medium", "Z": "low"}

    def test_improvement_percent(self):
        result = self._result()
        assert result.mixes[0].best_improvement_percent == pytest.approx(30.0)

    def test_rows_order(self):
        rows = self._result().rows()
        assert rows[0][0] == "X"
        assert rows[0][1] == 1.30


class TestFig13Result:
    def test_summary_and_render(self):
        result = Fig13Result(errors={"a": [2.0, 4.0]})
        assert result.average_errors() == {"a": 3.0}
        assert "a" in result.render()


class TestTable4Result:
    def test_rows_include_paper_column(self):
        result = Table4Result(scores={"M.lmps": 1.1})
        rows = result.rows()
        assert rows[0] == ("M.lmps", 1.1, 1.0)
        assert "M.lmps" in result.render()
