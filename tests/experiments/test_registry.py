"""Tests for the experiment registry."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import (
    REGISTRY,
    all_experiment_ids,
    get_experiment,
)


class TestRegistry:
    def test_every_paper_artifact_present(self):
        ids = set(all_experiment_ids())
        assert {
            "fig2", "fig3", "fig4", "table3", "table4",
            "fig8", "fig9", "fig10", "fig11",
            "fig12", "table6", "fig13",
        } <= ids

    def test_entries_have_descriptions(self):
        for entry in REGISTRY.values():
            assert entry.description
            assert entry.paper_artifact
            assert callable(entry.run)
            assert callable(entry.render)

    def test_lookup(self):
        assert get_experiment("fig2").paper_artifact == "Figure 2"

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig99")
