"""Tests for the epoch-based dynamic rescheduler."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.builder import build_batch_profiles, build_model
from repro.errors import PlacementError
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.dynamic import DynamicRescheduler, units_moved
from repro.sim.runner import ClusterRunner


@pytest.fixture(scope="module")
def environment():
    runner = ClusterRunner(base_seed=31)
    report = build_model(
        runner, ["M.lmps", "M.milc", "H.KM"], policy_samples=8, seed=31, span=4
    )
    build_batch_profiles(runner, report.model, ["C.libq"], span=4)
    instances = [
        InstanceSpec("M.lmps#0", "M.lmps"),
        InstanceSpec("M.milc#1", "M.milc"),
        InstanceSpec("H.KM#2", "H.KM"),
        InstanceSpec("C.libq#3", "C.libq"),
    ]
    return runner, report.model, instances


class TestUnitsMoved:
    def test_identity_is_zero(self):
        spec = ClusterSpec(num_nodes=4)
        instances = [InstanceSpec("a", "a", num_units=2),
                     InstanceSpec("b", "b", num_units=2)]
        placement = Placement(spec, instances, {"a": [0, 1], "b": [2, 3]})
        assert units_moved(placement, placement) == 0

    def test_counts_changed_units(self):
        spec = ClusterSpec(num_nodes=4)
        instances = [InstanceSpec("a", "a", num_units=2),
                     InstanceSpec("b", "b", num_units=2)]
        before = Placement(spec, instances, {"a": [0, 1], "b": [2, 3]})
        after = Placement(spec, instances, {"a": [2, 1], "b": [0, 3]})
        assert units_moved(before, after) == 2


class TestDynamicRescheduler:
    def test_improves_over_random_start(self, environment):
        runner, model, instances = environment
        rescheduler = DynamicRescheduler(
            runner, model, instances,
            schedule=AnnealingSchedule(iterations=500, restarts=2),
            seed=3,
        )
        records = rescheduler.run(epochs=4)
        assert len(records) == 4
        assert records[0].migrated_units == 0  # first epoch just measures
        # After the first re-placement the measured total should not be
        # worse than the random start's.
        assert min(r.measured_total for r in records[1:]) <= (
            records[0].measured_total + 0.1
        )

    def test_migration_cost_gates_moves(self, environment):
        runner, model, instances = environment
        expensive = DynamicRescheduler(
            runner, model, instances,
            migration_cost=100.0,  # no gain can buy a move back
            schedule=AnnealingSchedule(iterations=300, restarts=1),
            seed=4,
        )
        records = expensive.run(epochs=3)
        assert all(not r.migrated for r in records)
        # The placement therefore never changes.
        assert records[0].placement == records[-1].placement

    def test_settles_after_convergence(self, environment):
        runner, model, instances = environment
        rescheduler = DynamicRescheduler(
            runner, model, instances,
            schedule=AnnealingSchedule(iterations=500, restarts=2),
            seed=5,
        )
        records = rescheduler.run(epochs=5)
        # Conservative by design: once placed well, later epochs should
        # mostly stay put rather than thrash.
        late_migrations = sum(1 for r in records[2:] if r.migrated)
        assert late_migrations <= 1

    def test_online_learning_recorded(self, environment):
        runner, model, instances = environment
        rescheduler = DynamicRescheduler(runner, model, instances, seed=6)
        rescheduler.run(epochs=2)
        # Two epochs x four instances observed.
        total_observations = sum(
            state[1] for state in rescheduler.model.staleness_report()
        )
        assert total_observations == 8

    def test_validation(self, environment):
        runner, model, instances = environment
        with pytest.raises(PlacementError):
            DynamicRescheduler(runner, model, instances, migration_cost=-1)
        with pytest.raises(PlacementError):
            DynamicRescheduler(runner, model, instances).run(epochs=0)
