"""Placement-level bit-identity of the batch prediction path.

``predict_placement`` dispatches to the vectorized
:meth:`~repro.core.model.InterferenceModel.predict_placement_batch`
whenever the model offers it; these tests pin that route to the scalar
reference (:func:`predict_placement_scalar`) bit for bit, including
through a whole annealing search.
"""

import random

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.online import OnlineModel
from repro.placement.annealing import AnnealingSchedule, SimulatedAnnealingPlacer
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    WeightedTimeEnergy,
    predict_placement,
    predict_placement_scalar,
)

POLICIES = ("N MAX", "N+1 MAX", "ALL MAX", "INTERPOLATE")


class ScalarOnly:
    """Model proxy hiding the batch interface.

    Forces every consumer down the scalar reference path, which is how
    the tests compare whole search trajectories batch-vs-scalar.
    """

    _HIDDEN = frozenset(
        {
            "predict_batch",
            "predict_corunners_batch",
            "predict_placement_batch",
            "predict_placements_batch",
            "prediction_kernel",
        }
    )

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        if name in ScalarOnly._HIDDEN:
            raise AttributeError(name)
        return getattr(self._model, name)


def random_model(rng, num_workloads=4):
    profiles = {}
    for i in range(num_workloads):
        name = f"w{i}"
        counts = list(range(rng.randint(3, 6)))
        pressures = sorted(
            rng.uniform(0.5, 10.0) for _ in range(rng.randint(2, 4))
        )
        values = np.array(
            [
                [1.0 + rng.random() * p * (c + 1) / 8.0 for c in counts]
                for p in pressures
            ]
        )
        profiles[name] = InterferenceProfile(
            workload=name,
            matrix=PropagationMatrix(pressures, counts, values),
            policy_name=POLICIES[i % len(POLICIES)],
            bubble_score=rng.uniform(0.0, 9.0),
        )
    return InterferenceModel(profiles)


def random_placement(rng, model, num_instances, num_nodes):
    kinds = sorted(model.workloads)
    spec = ClusterSpec(num_nodes=num_nodes)
    instances, assignment = [], {}
    free = {node: 2 for node in range(num_nodes)}
    for i in range(num_instances):
        units = rng.randint(1, 4)
        open_nodes = [node for node, slots in free.items() if slots > 0]
        if len(open_nodes) < units:
            break
        nodes = rng.sample(open_nodes, units)
        for node in nodes:
            free[node] -= 1
        key = f"job-{i}"
        instances.append(InstanceSpec(key, rng.choice(kinds), units))
        assignment[key] = tuple(nodes)
    return Placement(spec, instances, assignment, unit_slots_per_node=2)


class TestPlacementIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_full_placement_matches_scalar_bitwise(self, seed):
        rng = random.Random(seed)
        model = random_model(rng)
        placement = random_placement(
            rng, model, rng.randint(2, 20), rng.randint(8, 44)
        )
        assert predict_placement(model, placement) == (
            predict_placement_scalar(model, placement)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_online_model_matches_scalar_bitwise(self, seed):
        rng = random.Random(100 + seed)
        base = random_model(rng)
        online = OnlineModel(base)
        for _ in range(rng.randint(1, 5)):
            online.observe(
                rng.choice(sorted(base.workloads)),
                predicted=rng.uniform(1.0, 3.0),
                measured=rng.uniform(1.0, 3.0),
            )
        placement = random_placement(rng, base, 10, 24)
        assert predict_placement(online, placement) == (
            predict_placement_scalar(online, placement)
        )

    def test_table_preserves_instance_order(self):
        rng = random.Random(7)
        model = random_model(rng)
        placement = random_placement(rng, model, 8, 20)
        table = predict_placement(model, placement)
        assert list(table) == [
            spec.instance_key for spec in placement.instances
        ]


class TestAnnealingIdentity:
    @pytest.mark.parametrize("seed", range(3))
    def test_search_trajectory_identical(self, seed):
        rng = random.Random(40 + seed)
        model = random_model(rng)
        kinds = sorted(model.workloads)
        spec = ClusterSpec(num_nodes=16)
        instances = [
            InstanceSpec(f"{kinds[i % len(kinds)]}#{i}", kinds[i % len(kinds)], 3)
            for i in range(8)
        ]
        initial = Placement.random(spec, instances, seed=seed + 1)
        schedule = AnnealingSchedule(iterations=250, restarts=1)
        batch = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=schedule, seed=seed
        ).search_from(initial)
        scalar = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(ScalarOnly(model)), schedule=schedule, seed=seed
        ).search_from(initial)
        assert batch.energy == scalar.energy
        assert batch.energy_trajectory == scalar.energy_trajectory
        assert {
            s.instance_key: batch.placement.nodes_of(s.instance_key)
            for s in batch.placement.instances
        } == {
            s.instance_key: scalar.placement.nodes_of(s.instance_key)
            for s in scalar.placement.instances
        }


class TestMemoEviction:
    def test_eviction_drops_oldest_half_only(self):
        rng = random.Random(55)
        model = random_model(rng)
        energy = WeightedTimeEnergy(model)
        energy.MEMO_LIMIT = 8
        for i in range(8):
            energy._store(("key", i), float(i))
        assert len(energy._memo) == 8
        # The next store evicts the oldest half, keeps the newest.
        energy._store(("key", 8), 8.0)
        assert len(energy._memo) == 5
        assert set(energy._memo) == {("key", i) for i in range(4, 9)}

    def test_eviction_keeps_results_correct(self):
        rng = random.Random(56)
        model = random_model(rng)
        energy = WeightedTimeEnergy(model)
        energy.MEMO_LIMIT = 4  # force constant eviction
        placement = random_placement(rng, model, 6, 16)
        reference = predict_placement_scalar(model, placement)
        table = energy.full_state(placement).predictions
        assert table == reference
