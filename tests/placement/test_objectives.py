"""Tests for placement objectives and constraints."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    QoSConstraint,
    qos_energy,
    qos_status,
    weighted_average_speedup,
    weighted_total_time,
)

SPEC = ClusterSpec(num_nodes=4)


def two_apps(weight_b=1.0):
    return [
        InstanceSpec("a", "a", num_units=2),
        InstanceSpec("b", "b", num_units=2, weight=weight_b),
    ]


def placement(weight_b=1.0):
    return Placement(
        SPEC,
        two_apps(weight_b),
        {"a": [0, 1], "b": [2, 3]},
    )


class TestWeightedTotalTime:
    def test_equal_weights(self):
        assert weighted_total_time({"a": 1.2, "b": 1.4}, placement()) == (
            pytest.approx(2.6)
        )

    def test_weights_scale(self):
        total = weighted_total_time({"a": 1.0, "b": 2.0}, placement(weight_b=0.5))
        assert total == pytest.approx(2.0)


class TestSpeedup:
    def test_reference_equals_times_gives_one(self):
        times = {"a": 1.2, "b": 1.4}
        assert weighted_average_speedup(times, times, placement()) == 1.0

    def test_faster_gives_speedup(self):
        worst = {"a": 2.0, "b": 2.0}
        best = {"a": 1.0, "b": 2.0}
        assert weighted_average_speedup(best, worst, placement()) == 1.5

    def test_zero_time_rejected(self):
        with pytest.raises(PlacementError):
            weighted_average_speedup({"a": 0.0, "b": 1.0}, {"a": 1, "b": 1}, placement())


class TestQoSConstraint:
    def test_satisfied(self):
        constraint = QoSConstraint("a", 1.25)
        assert constraint.satisfied_by({"a": 1.2})
        assert not constraint.satisfied_by({"a": 1.3})

    def test_violation_magnitude(self):
        constraint = QoSConstraint("a", 1.25)
        assert constraint.violation({"a": 1.45}) == pytest.approx(0.2)
        assert constraint.violation({"a": 1.0}) == 0.0

    def test_unsatisfiable_bound_rejected(self):
        with pytest.raises(PlacementError):
            QoSConstraint("a", 0.9)

    def test_default_is_80_percent(self):
        assert QoSConstraint("a").max_normalized_time == 1.25


class TestQoSEnergy:
    def test_feasible_is_total_time(self):
        predictions = {"a": 1.1, "b": 1.2}
        energy = qos_energy(predictions, placement(), [QoSConstraint("a", 1.25)])
        assert energy == pytest.approx(2.3)

    def test_violation_dominates(self):
        predictions = {"a": 1.5, "b": 1.0}
        energy = qos_energy(
            predictions, placement(), [QoSConstraint("a", 1.25)], penalty=1000
        )
        assert energy > 100


def test_qos_status():
    constraints = [QoSConstraint("a", 1.25), QoSConstraint("b", 1.25)]
    assert qos_status({"a": 1.1, "b": 1.4}, constraints) == [True, False]
