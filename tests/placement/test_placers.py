"""Tests for the QoS-aware and throughput placers on a synthetic model."""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import InstanceSpec
from repro.placement.objectives import QoSConstraint, predict_placement
from repro.placement.qos import QoSAwarePlacer
from repro.placement.throughput import ThroughputPlacer

SPEC = ClusterSpec(num_nodes=4)
SCHEDULE = AnnealingSchedule(iterations=400, restarts=2)


def make_matrix(max_slowdown: float) -> PropagationMatrix:
    """High-propagation shape over counts 0..2 at pressures 4 and 8."""
    amplitude = max_slowdown - 1.0
    values = np.array(
        [
            [1.0, 1.0 + 0.45 * amplitude, 1.0 + 0.5 * amplitude],
            [1.0, 1.0 + 0.9 * amplitude, 1.0 + amplitude],
        ]
    )
    return PropagationMatrix([4.0, 8.0], [0.0, 1.0, 2.0], values)


def make_model() -> InterferenceModel:
    profiles = {
        "loud": InterferenceProfile(
            workload="loud", matrix=make_matrix(1.2),
            policy_name="N+1 MAX", bubble_score=8.0,
        ),
        "quiet": InterferenceProfile(
            workload="quiet", matrix=make_matrix(1.05),
            policy_name="INTERPOLATE", bubble_score=0.5,
        ),
        "sensitive": InterferenceProfile(
            workload="sensitive", matrix=make_matrix(2.0),
            policy_name="N+1 MAX", bubble_score=2.0,
        ),
        "target": InterferenceProfile(
            workload="target", matrix=make_matrix(1.6),
            policy_name="N+1 MAX", bubble_score=1.0,
        ),
    }
    return InterferenceModel(profiles)


def instances():
    return [
        InstanceSpec("target#0", "target", num_units=2),
        InstanceSpec("loud#1", "loud", num_units=2),
        InstanceSpec("quiet#2", "quiet", num_units=2),
        InstanceSpec("sensitive#3", "sensitive", num_units=2),
    ]


class TestThroughputPlacer:
    def test_best_pairs_loud_with_insensitive(self):
        # The only good matching pairs the loud app with the quiet
        # (insensitive) one and keeps the sensitive app away from it.
        placer = ThroughputPlacer(make_model(), SPEC, schedule=SCHEDULE, seed=1)
        result = placer.best(instances())
        sensitive_co = result.placement.co_runner_workloads("sensitive#3")
        partners = {w for ws in sensitive_co.values() for w in ws}
        assert "loud" not in partners

    def test_worst_exceeds_best(self):
        placer = ThroughputPlacer(make_model(), SPEC, schedule=SCHEDULE, seed=2)
        best = placer.best(instances())
        worst = placer.worst(instances())
        assert sum(worst.predictions.values()) > sum(best.predictions.values())

    def test_predictions_cover_instances(self):
        placer = ThroughputPlacer(make_model(), SPEC, schedule=SCHEDULE, seed=3)
        result = placer.best(instances())
        assert set(result.predictions) == {
            "target#0", "loud#1", "quiet#2", "sensitive#3"
        }


class TestQoSAwarePlacer:
    def test_protects_target(self):
        constraint = QoSConstraint("target#0", 1.15)
        placer = QoSAwarePlacer(
            make_model(), SPEC, [constraint], schedule=SCHEDULE, seed=4
        )
        result = placer.place(instances())
        assert result.predicted_feasible
        assert result.predictions["target#0"] <= 1.15

    def test_feasible_solution_keeps_loud_away(self):
        constraint = QoSConstraint("target#0", 1.15)
        placer = QoSAwarePlacer(
            make_model(), SPEC, [constraint], schedule=SCHEDULE, seed=5
        )
        result = placer.place(instances())
        partners = {
            w
            for ws in result.placement.co_runner_workloads("target#0").values()
            for w in ws
        }
        assert "loud" not in partners

    def test_infeasible_reports_honestly(self):
        # A bound below any achievable time: everything shares nodes
        # with someone, so 1.0 is unattainable and the result must not
        # claim feasibility.
        constraint = QoSConstraint("sensitive#3", 1.0)
        placer = QoSAwarePlacer(
            make_model(), SPEC, [constraint], schedule=SCHEDULE, seed=6
        )
        result = placer.place(instances())
        assert not result.predicted_feasible

    def test_multiple_constraints(self):
        constraints = [
            QoSConstraint("target#0", 1.3),
            QoSConstraint("sensitive#3", 1.3),
        ]
        placer = QoSAwarePlacer(
            make_model(), SPEC, constraints, schedule=SCHEDULE, seed=7
        )
        result = placer.place(instances())
        predictions = predict_placement(make_model(), result.placement)
        assert predictions["target#0"] <= 1.3 or not result.predicted_feasible
