"""Tests for the simulated-annealing search."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError
from repro.placement.annealing import (
    AnnealingSchedule,
    SimulatedAnnealingPlacer,
)
from repro.placement.assignment import InstanceSpec, Placement

SPEC = ClusterSpec(num_nodes=4)


def instances():
    return [
        InstanceSpec("a", "a", num_units=2),
        InstanceSpec("b", "b", num_units=2),
        InstanceSpec("c", "c", num_units=2),
        InstanceSpec("d", "d", num_units=2),
    ]


def adjacency_energy(placement: Placement) -> float:
    """Penalize a and b sharing nodes — a simple, known-optimum target."""
    shared = set(placement.nodes_of("a")) & set(placement.nodes_of("b"))
    return float(len(shared))


class TestSchedule:
    def test_temperature_decays(self):
        schedule = AnnealingSchedule(
            iterations=100, initial_temperature=1.0, final_temperature=0.01
        )
        assert schedule.temperature(0) == pytest.approx(1.0)
        assert schedule.temperature(99) == pytest.approx(0.01)
        assert schedule.temperature(50) < schedule.temperature(10)

    def test_zero_start_is_hill_climbing(self):
        schedule = AnnealingSchedule(initial_temperature=0.0)
        assert schedule.temperature(0) == 0.0

    def test_validation(self):
        with pytest.raises(PlacementError):
            AnnealingSchedule(iterations=0)
        with pytest.raises(PlacementError):
            AnnealingSchedule(initial_temperature=-1.0)
        with pytest.raises(PlacementError):
            AnnealingSchedule(restarts=0)


class TestSearch:
    def test_finds_separating_placement(self):
        placer = SimulatedAnnealingPlacer(
            adjacency_energy,
            schedule=AnnealingSchedule(iterations=500, restarts=2),
            seed=1,
        )
        result = placer.search(
            lambda seed: Placement.random(SPEC, instances(), seed=seed)
        )
        assert result.energy == 0.0

    def test_never_worse_than_initial(self):
        initial = Placement.random(SPEC, instances(), seed=3)
        placer = SimulatedAnnealingPlacer(
            adjacency_energy,
            schedule=AnnealingSchedule(iterations=50),
            seed=2,
        )
        result = placer.search_from(initial)
        assert result.energy <= adjacency_energy(initial)

    def test_result_placement_valid(self):
        placer = SimulatedAnnealingPlacer(
            adjacency_energy,
            schedule=AnnealingSchedule(iterations=100),
            seed=4,
        )
        result = placer.search_from(Placement.random(SPEC, instances(), seed=0))
        for spec in result.placement.instances:
            nodes = result.placement.nodes_of(spec.instance_key)
            assert len(set(nodes)) == len(nodes)

    def test_trajectory_recorded(self):
        placer = SimulatedAnnealingPlacer(
            adjacency_energy,
            schedule=AnnealingSchedule(iterations=20),
            seed=5,
        )
        result = placer.search_from(Placement.random(SPEC, instances(), seed=0))
        assert len(result.energy_trajectory) >= 1
        assert result.evaluations >= 1

    def test_deterministic_per_seed(self):
        def run(seed):
            placer = SimulatedAnnealingPlacer(
                adjacency_energy,
                schedule=AnnealingSchedule(iterations=100),
                seed=seed,
            )
            return placer.search(
                lambda s: Placement.random(SPEC, instances(), seed=s)
            )

        assert run(7).placement == run(7).placement
