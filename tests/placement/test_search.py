"""Tests for non-annealing placement baselines."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError
from repro.placement.annealing import AnnealingSchedule, SimulatedAnnealingPlacer
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import predict_placement, weighted_total_time
from repro.placement.search import (
    GreedyPlacer,
    average_random_total_time,
    exhaustive_best,
    random_placements,
)
from tests.placement.test_placers import SPEC, instances, make_model


class TestRandomPlacements:
    def test_count(self):
        placements = random_placements(SPEC, instances(), count=5, seed=1)
        assert len(placements) == 5

    def test_independent(self):
        placements = random_placements(SPEC, instances(), count=5, seed=1)
        assert len({p for p in placements}) > 1

    def test_deterministic(self):
        a = random_placements(SPEC, instances(), count=3, seed=2)
        b = random_placements(SPEC, instances(), count=3, seed=2)
        assert a == b

    def test_invalid_count(self):
        with pytest.raises(PlacementError):
            random_placements(SPEC, instances(), count=0)


class TestGreedyPlacer:
    def test_valid_placement(self):
        placement = GreedyPlacer(make_model(), SPEC).place(instances())
        for spec in placement.instances:
            nodes = placement.nodes_of(spec.instance_key)
            assert len(set(nodes)) == len(nodes)

    def test_spreads_loud_units(self):
        # The loudest app is placed first; its units land on the
        # least-pressured nodes, so they never stack.
        placement = GreedyPlacer(make_model(), SPEC).place(instances())
        loud_nodes = placement.nodes_of("loud#1")
        assert len(set(loud_nodes)) == 2


class TestExhaustiveBest:
    def _small(self):
        small_spec = ClusterSpec(num_nodes=4)
        small_instances = [
            InstanceSpec("target#0", "target", num_units=2),
            InstanceSpec("loud#1", "loud", num_units=2),
            InstanceSpec("quiet#2", "quiet", num_units=2),
            InstanceSpec("sensitive#3", "sensitive", num_units=2),
        ]
        model = make_model()

        def energy(placement: Placement) -> float:
            return weighted_total_time(predict_placement(model, placement), placement)

        return small_spec, small_instances, energy

    def test_annealing_matches_exhaustive(self):
        spec, insts, energy = self._small()
        optimal, optimal_energy = exhaustive_best(spec, insts, energy)
        placer = SimulatedAnnealingPlacer(
            energy, schedule=AnnealingSchedule(iterations=600, restarts=3), seed=3
        )
        result = placer.search(lambda s: Placement.random(spec, insts, seed=s))
        assert result.energy == pytest.approx(optimal_energy, rel=0.01)

    def test_too_large_rejected(self):
        big = ClusterSpec(num_nodes=8)
        with pytest.raises(PlacementError, match="exhaustive"):
            exhaustive_best(big, instances(), lambda p: 0.0)


class TestAverageRandom:
    def test_between_best_and_worst(self):
        model = make_model()

        def energy(placement):
            return weighted_total_time(predict_placement(model, placement), placement)

        spec, insts, energy_fn = (SPEC, instances(), energy)
        average = average_random_total_time(model, spec, insts, count=5, seed=4)
        optimal, optimal_energy = exhaustive_best(spec, insts, energy_fn)
        assert average >= optimal_energy - 1e-9
