"""Tests for incremental (delta) energy evaluation and parallel restarts.

The contract under test: the fast paths — per-swap delta evaluation,
fanned-out restarts, subsampled trajectories — must be *bit-identical*
to the slow paths they replace, not merely close.
"""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.errors import PlacementError
from repro.placement.annealing import (
    AnnealingSchedule,
    MAX_TRAJECTORY_POINTS,
    SimulatedAnnealingPlacer,
)
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    QoSConstraint,
    WeightedTimeEnergy,
    predict_placement,
    weighted_total_time,
)
from repro.placement.qos import (
    INFEASIBLE_ENERGY,
    PRESSURE_TIEBREAK,
    ConstrainedThroughputEnergy,
    FeasibilityEnergy,
)

SPEC = ClusterSpec(num_nodes=6)


def make_matrix(max_slowdown: float) -> PropagationMatrix:
    amplitude = max_slowdown - 1.0
    values = np.array(
        [
            [1.0, 1.0 + 0.4 * amplitude, 1.0 + 0.6 * amplitude, 1.0 + 0.7 * amplitude],
            [1.0, 1.0 + 0.8 * amplitude, 1.0 + 0.9 * amplitude, 1.0 + amplitude],
        ]
    )
    return PropagationMatrix([4.0, 8.0], [0.0, 1.0, 2.0, 3.0], values)


def make_model() -> InterferenceModel:
    profiles = {
        "loud": InterferenceProfile(
            workload="loud", matrix=make_matrix(1.3),
            policy_name="N+1 MAX", bubble_score=8.0,
        ),
        "quiet": InterferenceProfile(
            workload="quiet", matrix=make_matrix(1.05),
            policy_name="INTERPOLATE", bubble_score=0.5,
        ),
        "sensitive": InterferenceProfile(
            workload="sensitive", matrix=make_matrix(2.0),
            policy_name="N+1 MAX", bubble_score=2.0,
        ),
    }
    return InterferenceModel(profiles)


def instances():
    return [
        InstanceSpec("loud#0", "loud", num_units=3),
        InstanceSpec("quiet#1", "quiet", num_units=3),
        InstanceSpec("sensitive#2", "sensitive", num_units=3),
        InstanceSpec("loud#3", "loud", num_units=3),
    ]


def full_energy_callable(model):
    """The pre-delta-evaluation energy: a plain callable."""

    def energy(placement: Placement) -> float:
        return weighted_total_time(predict_placement(model, placement), placement)

    return energy


def assignment_of(placement: Placement):
    return {
        spec.instance_key: tuple(placement.nodes_of(spec.instance_key))
        for spec in placement.instances
    }


class TestSwapState:
    def test_swap_state_matches_full_state(self):
        model = make_model()
        energy = WeightedTimeEnergy(model)
        placement = Placement.random(SPEC, instances(), seed=3)
        state = energy.full_state(placement)
        node_a = placement.nodes_of("loud#0")[0]
        node_b = placement.nodes_of("quiet#1")[1]
        if node_a == node_b:
            pytest.skip("degenerate seed: same node on both sides")
        swapped = placement.swap_units("loud#0", 0, "quiet#1", 1)
        incremental = energy.swap_state(state, swapped, (node_a, node_b))
        full = energy.full_state(swapped)
        assert incremental.predictions == full.predictions
        assert incremental.energy == full.energy

    def test_callable_protocol_matches_full_state(self):
        model = make_model()
        energy = WeightedTimeEnergy(model)
        placement = Placement.random(SPEC, instances(), seed=4)
        assert energy(placement) == energy.full_state(placement).energy

    def test_matches_plain_callable(self):
        model = make_model()
        placement = Placement.random(SPEC, instances(), seed=5)
        assert WeightedTimeEnergy(model)(placement) == (
            full_energy_callable(model)(placement)
        )


class TestIncrementalSearch:
    SCHEDULE = AnnealingSchedule(iterations=300, restarts=2)

    def test_search_from_bit_identical_to_full(self):
        model = make_model()
        initial = Placement.random(SPEC, instances(), seed=9)
        fast = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=self.SCHEDULE, seed=2
        ).search_from(initial)
        slow = SimulatedAnnealingPlacer(
            full_energy_callable(model), schedule=self.SCHEDULE, seed=2
        ).search_from(initial)
        assert fast.energy == slow.energy
        assert assignment_of(fast.placement) == assignment_of(slow.placement)
        assert fast.energy_trajectory == slow.energy_trajectory
        assert fast.accepted_moves == slow.accepted_moves
        assert fast.evaluations == slow.evaluations

    def test_search_bit_identical_to_full(self):
        model = make_model()

        def factory(seed):
            return Placement.random(SPEC, instances(), seed=seed)

        fast = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=self.SCHEDULE, seed=6
        ).search(factory)
        slow = SimulatedAnnealingPlacer(
            full_energy_callable(model), schedule=self.SCHEDULE, seed=6
        ).search(factory)
        assert fast.energy == slow.energy
        assert assignment_of(fast.placement) == assignment_of(slow.placement)

    def test_parallel_restarts_bit_identical_to_serial(self):
        model = make_model()

        def factory(seed):
            return Placement.random(SPEC, instances(), seed=seed)

        serial = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=self.SCHEDULE, seed=6
        ).search(factory, max_workers=None)
        parallel = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=self.SCHEDULE, seed=6
        ).search(factory, max_workers=2)
        assert parallel.energy == serial.energy
        assert assignment_of(parallel.placement) == assignment_of(serial.placement)
        assert parallel.energy_trajectory == serial.energy_trajectory


class TestTrajectoryStride:
    def test_validation(self):
        with pytest.raises(PlacementError):
            AnnealingSchedule(trajectory_stride=0)

    def test_explicit_stride(self):
        schedule = AnnealingSchedule(iterations=100, trajectory_stride=10)
        assert schedule.effective_stride() == 10

    def test_auto_stride_caps_points(self):
        schedule = AnnealingSchedule(iterations=5120)
        assert schedule.effective_stride() == 5120 // MAX_TRAJECTORY_POINTS

    def test_short_schedules_record_every_point(self):
        assert AnnealingSchedule(iterations=100).effective_stride() == 1

    def test_subsampled_trajectory_is_bounded(self):
        model = make_model()
        schedule = AnnealingSchedule(
            iterations=400, restarts=1, trajectory_stride=50
        )
        result = SimulatedAnnealingPlacer(
            WeightedTimeEnergy(model), schedule=schedule, seed=1
        ).search_from(Placement.random(SPEC, instances(), seed=1))
        # initial + one point per stride + the final state.
        assert len(result.energy_trajectory) <= 2 + 400 // 50
        assert result.energy_trajectory[-1] >= result.energy


class TestQoSEnergies:
    def _old_formula(self, model, constraints, placement, infeasible_base):
        predictions = predict_placement(model, placement)
        violation = sum(c.violation(predictions) for c in constraints)
        if violation <= 0:
            return weighted_total_time(predictions, placement)
        pressures = []
        for constraint in constraints:
            pressures.extend(
                model.pressure_vector(
                    placement.spanned_nodes(constraint.instance_key),
                    placement.co_runner_workloads(constraint.instance_key),
                )
            )
        tiebreak = sum(pressures) / len(pressures) if pressures else 0.0
        return infeasible_base + violation + PRESSURE_TIEBREAK * tiebreak

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_energies_match_reference_formula(self, seed):
        model = make_model()
        constraints = [QoSConstraint("sensitive#2", 1.25)]
        placement = Placement.random(SPEC, instances(), seed=seed)
        feasibility = FeasibilityEnergy(model, constraints)
        throughput = ConstrainedThroughputEnergy(model, constraints)
        assert feasibility(placement) == self._old_formula(
            model, constraints, placement, INFEASIBLE_ENERGY / 2
        )
        assert throughput(placement) == self._old_formula(
            model, constraints, placement, INFEASIBLE_ENERGY
        )
