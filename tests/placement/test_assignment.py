"""Tests for the placement representation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError
from repro.placement.assignment import InstanceSpec, Placement

SPEC = ClusterSpec(num_nodes=8)


def four_apps():
    return [InstanceSpec(f"app{i}#%d" % i, f"app{i}") for i in range(4)]


def paired_assignment():
    """The canonical segregated matching: app pairs on node halves."""
    return {
        "app0#0": [0, 1, 2, 3],
        "app1#1": [4, 5, 6, 7],
        "app2#2": [0, 1, 2, 3],
        "app3#3": [4, 5, 6, 7],
    }


class TestValidation:
    def test_valid(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        assert placement.nodes_of("app0#0") == (0, 1, 2, 3)

    def test_missing_instance(self):
        assignment = paired_assignment()
        del assignment["app3#3"]
        with pytest.raises(PlacementError, match="do not match"):
            Placement(SPEC, four_apps(), assignment)

    def test_wrong_unit_count(self):
        assignment = paired_assignment()
        assignment["app0#0"] = [0, 1]
        with pytest.raises(PlacementError, match="unit nodes"):
            Placement(SPEC, four_apps(), assignment)

    def test_duplicate_node_within_instance(self):
        assignment = paired_assignment()
        assignment["app0#0"] = [0, 0, 1, 2]
        with pytest.raises(PlacementError, match="distinct nodes"):
            Placement(SPEC, four_apps(), assignment)

    def test_node_capacity(self):
        assignment = paired_assignment()
        assignment["app1#1"] = [0, 1, 2, 3]
        assignment["app3#3"] = [0, 1, 2, 3]  # four units on node 0
        with pytest.raises(PlacementError, match="capacity"):
            Placement(SPEC, four_apps(), assignment)

    def test_node_out_of_range(self):
        assignment = paired_assignment()
        assignment["app0#0"] = [0, 1, 2, 9]
        with pytest.raises(PlacementError, match="out of range"):
            Placement(SPEC, four_apps(), assignment)

    def test_pairwise_limit_with_three_slots(self):
        # With 3 unit slots per node, three distinct workloads could
        # land together — the spec's limit of 2 must still hold.
        instances = [InstanceSpec(f"a{i}", f"a{i}", num_units=1) for i in range(3)]
        with pytest.raises(PlacementError, match="pairwise"):
            Placement(
                SPEC,
                instances,
                {"a0": [0], "a1": [0], "a2": [0]},
                unit_slots_per_node=3,
            )

    def test_duplicate_instance_keys(self):
        instances = [InstanceSpec("x", "a"), InstanceSpec("x", "b")]
        with pytest.raises(PlacementError, match="unique"):
            Placement(SPEC, instances, {"x": [0, 1, 2, 3]})


class TestRandom:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_always_valid(self, seed):
        placement = Placement.random(SPEC, four_apps(), seed=seed)
        for spec in placement.instances:
            nodes = placement.nodes_of(spec.instance_key)
            assert len(set(nodes)) == 4

    def test_random_deterministic(self):
        a = Placement.random(SPEC, four_apps(), seed=5)
        b = Placement.random(SPEC, four_apps(), seed=5)
        assert a == b

    def test_too_many_units(self):
        instances = [InstanceSpec(f"a{i}", f"a{i}", num_units=8) for i in range(3)]
        with pytest.raises(PlacementError, match="exceed"):
            Placement.random(SPEC, instances)


class TestQueries:
    def test_co_runner_workloads(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        co = placement.co_runner_workloads("app0#0")
        assert co == {0: ["app2"], 1: ["app2"], 2: ["app2"], 3: ["app2"]}

    def test_spanned_nodes(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        assert placement.spanned_nodes("app1#1") == [4, 5, 6, 7]

    def test_units_to_nodes(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        assert placement.units_to_nodes("app0#0") == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_deployments(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        deployments = placement.deployments()
        assert len(deployments) == 4
        key, workload, units = deployments[0]
        assert key == "app0#0" and workload == "app0"

    def test_occupancy(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        assert placement.occupancy()[0] == ["app0#0", "app2#2"]

    def test_unknown_instance(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        with pytest.raises(PlacementError):
            placement.nodes_of("ghost")


class TestSwap:
    def test_swap_exchanges_nodes(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        swapped = placement.swap_units("app0#0", 0, "app1#1", 0)
        assert swapped.nodes_of("app0#0")[0] == 4
        assert swapped.nodes_of("app1#1")[0] == 0

    def test_swap_is_pure(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        placement.swap_units("app0#0", 0, "app1#1", 0)
        assert placement.nodes_of("app0#0")[0] == 0

    def test_swap_same_instance_rejected(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        with pytest.raises(PlacementError, match="different"):
            placement.swap_units("app0#0", 0, "app0#0", 1)

    def test_swap_violating_distinctness_rejected(self):
        # Swapping app0's unit at node 0 with app2's unit at node 1
        # would give app0 two units on node 1.
        placement = Placement(SPEC, four_apps(), paired_assignment())
        with pytest.raises(PlacementError, match="distinct"):
            placement.swap_units("app0#0", 0, "app2#2", 1)

    def test_swap_bad_index(self):
        placement = Placement(SPEC, four_apps(), paired_assignment())
        with pytest.raises(PlacementError, match="out of range"):
            placement.swap_units("app0#0", 7, "app1#1", 0)


class TestInstanceSpec:
    def test_invalid_units(self):
        with pytest.raises(PlacementError):
            InstanceSpec("a", "a", num_units=0)

    def test_invalid_weight(self):
        with pytest.raises(PlacementError):
            InstanceSpec("a", "a", weight=0.0)


class TestEquality:
    def test_equal_assignments(self):
        a = Placement(SPEC, four_apps(), paired_assignment())
        b = Placement(SPEC, four_apps(), paired_assignment())
        assert a == b
        assert hash(a) == hash(b)

    def test_different_assignments(self):
        a = Placement(SPEC, four_apps(), paired_assignment())
        b = a.swap_units("app0#0", 0, "app1#1", 0)
        assert a != b
