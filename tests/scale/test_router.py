"""Headroom-ordering invariants of the :class:`HeadroomRouter`."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.scale import HeadroomRouter, free_slot_count
from repro.service.jobs import Job
from tests.scale._helpers import sharded_service


def _job(job_id: str, *, units: int = 2, qos: float = None) -> Job:
    return Job(
        job_id=job_id,
        workload="appA",
        num_units=units,
        duration_epochs=4,
        arrival_epoch=0,
        qos_target=qos,
    )


def _load(cell, job: Job) -> None:
    """Place ``job`` in the cell directly (no epoch machinery)."""
    service = cell.service
    decision = service.admission.try_admit(
        service.placement, service.tenants, job
    )
    assert decision.admitted, f"could not load {job.job_id}: {decision.reason}"
    service.admit_transfer(job, ends_at=99, decision=decision)


@pytest.fixture
def cells(synthetic_model):
    """Three 4-node cells, all empty."""
    return sharded_service(synthetic_model, 3, num_nodes=12).cells


def test_empty_cell_outscores_a_loaded_one(synthetic_model, cells):
    router = HeadroomRouter()
    for i in range(3):
        _load(cells[0], _job(f"crowd-{i}", units=2))
    probe = _job("probe", qos=1.25)
    empty = router.score(cells[1], probe)
    loaded = router.score(cells[0], probe)
    assert empty is not None and loaded is not None
    assert empty.headroom > loaded.headroom
    assert router.route(cells, probe) in (1, 2)


def test_ties_break_toward_the_lowest_cell_id(synthetic_model, cells):
    router = HeadroomRouter()
    # All three cells identical and empty: identical headroom.
    assert router.route(cells, _job("probe")) == 0


def test_score_is_none_without_capacity(synthetic_model, cells):
    router = HeadroomRouter()
    assert router.score(cells[0], _job("probe", units=9)) is None


def test_full_cells_fall_back_to_most_free_slots(synthetic_model, cells):
    router = HeadroomRouter()
    # Fill cells 0 and 2 completely (4 nodes x 2 slots = 8 units each),
    # and leave cell 1 exactly one free slot: a 2-unit arrival needs
    # two distinct free nodes, so no cell can be scored and the router
    # falls back to the cell with the most free slots.
    for cell_id in (0, 2):
        for i in range(4):
            _load(cells[cell_id], _job(f"fill-{cell_id}-{i}", units=2))
    _load(cells[1], _job("fill-1-a", units=2))
    _load(cells[1], _job("fill-1-b", units=2))
    _load(cells[1], _job("fill-1-c", units=3))
    probe = _job("probe", units=2)
    assert all(router.score(cell, probe) is None for cell in cells)
    assert free_slot_count(cells[1]) == 1
    assert router.route(cells, probe) == 1


def test_route_many_spreads_a_wave_across_equal_cells(synthetic_model, cells):
    router = HeadroomRouter()
    wave = [_job(f"wave-{i}") for i in range(6)]
    room = {cell.cell_id: 2 for cell in cells}
    assignments = router.route_many(cells, wave, queue_room=room)
    taken = {cid: 0 for cid in (0, 1, 2)}
    for target in assignments.values():
        taken[target] += 1
    assert taken == {0: 2, 1: 2, 2: 2}


def test_route_many_overflows_only_when_every_cell_is_at_cap(
    synthetic_model, cells
):
    router = HeadroomRouter()
    wave = [_job(f"wave-{i}") for i in range(7)]
    room = {cell.cell_id: 2 for cell in cells}
    assignments = router.route_many(cells, wave, queue_room=room)
    taken = {cid: 0 for cid in (0, 1, 2)}
    for target in assignments.values():
        taken[target] += 1
    # Six jobs fill every cap; the seventh lands somewhere anyway (the
    # router never drops work) — exactly one cell goes one over.
    assert sorted(taken.values()) == [2, 2, 3]


def test_router_rejects_nonpositive_probe_budget():
    with pytest.raises(ServiceError):
        HeadroomRouter(probe_candidates=0)
