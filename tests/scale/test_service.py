"""The sharded service's core contracts: flat parity and determinism."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.core.online import OnlineModel
from repro.cluster.cluster import ClusterSpec
from repro.scale import build_sharded_service
from tests.scale._helpers import (
    arrival_stream,
    flat_service,
    sharded_service,
)

EPOCHS = 6


def test_one_cell_replays_the_flat_service_byte_for_byte(synthetic_model):
    """The load-bearing equivalence: ``--cells 1`` == the flat service."""
    flat = flat_service(synthetic_model)
    flat.run(EPOCHS)
    sharded = sharded_service(synthetic_model, 1)
    sharded.run(EPOCHS)
    assert sharded.log.to_jsonl() == flat.log.to_jsonl()
    assert [s.to_dict() for s in sharded.snapshots] == [
        s.to_dict() for s in flat.snapshots
    ]


def test_one_cell_events_carry_no_cell_field(synthetic_model):
    sharded = sharded_service(synthetic_model, 1)
    sharded.run(2)
    for line in sharded.log.to_jsonl().splitlines():
        assert "cell" not in json.loads(line)
    assert sharded.snapshots[-1].cells is None


def test_multi_cell_day_is_deterministic(synthetic_model):
    a = sharded_service(synthetic_model, 3)
    a.run(EPOCHS)
    b = sharded_service(synthetic_model, 3)
    b.run(EPOCHS)
    assert a.log.to_jsonl() == b.log.to_jsonl()
    assert [s.to_dict() for s in a.snapshots] == [
        s.to_dict() for s in b.snapshots
    ]


def test_multi_cell_events_are_cell_tagged(synthetic_model):
    sharded = sharded_service(synthetic_model, 3)
    sharded.run(EPOCHS)
    events = [json.loads(l) for l in sharded.log.to_jsonl().splitlines()]
    assert events, "the day produced no events"
    for event in events:
        if event["kind"] == "cell_migrate":
            # Coordinator events are global: they name both endpoints.
            assert {"from_cell", "to_cell"} <= set(event)
        else:
            assert event["cell"] in (0, 1, 2)
    # The global log holds every cell's events.
    merged_per_cell = {
        cell.cell_id: sum(
            1
            for e in events
            if e["kind"] != "cell_migrate" and e["cell"] == cell.cell_id
        )
        for cell in sharded.cells
    }
    for cell in sharded.cells:
        assert merged_per_cell[cell.cell_id] == len(cell.service.log)


def test_multi_cell_snapshot_aggregates_and_adds_cell_rows(synthetic_model):
    sharded = sharded_service(synthetic_model, 3)
    sharded.run(EPOCHS)
    snap = sharded.snapshots[-1]
    assert snap.cells is not None and len(snap.cells) == 3
    assert snap.running_jobs == sum(
        row["running_jobs"] for row in snap.cells
    )
    assert snap.queued_jobs == sum(row["queued_jobs"] for row in snap.cells)
    assert snap.admitted_total == sum(
        cell.service.snapshots[-1].admitted_total for cell in sharded.cells
    )
    for row in snap.cells:
        assert set(row) == {
            "cell",
            "nodes",
            "running_jobs",
            "queued_jobs",
            "free_slots",
            "utilization",
            "worst_qos_margin",
            "migrated_units_total",
            "migrations_in_total",
            "migrations_out_total",
        }
    # The cells section round-trips through serialization.
    from repro.service.telemetry import MetricsSnapshot

    assert MetricsSnapshot.from_dict(snap.to_dict()).cells == snap.cells


def test_cell_workers_fan_out_matches_serial(synthetic_model):
    serial = sharded_service(synthetic_model, 3)
    serial.run(EPOCHS)
    parallel = sharded_service(synthetic_model, 3, cell_workers=4)
    parallel.run(EPOCHS)
    assert parallel.log.to_jsonl() == serial.log.to_jsonl()
    assert [s.to_dict() for s in parallel.snapshots] == [
        s.to_dict() for s in serial.snapshots
    ]


def test_wave_routing_respects_queue_room(synthetic_model):
    """No cell's intake may exceed its queue room while siblings have room."""
    sharded = sharded_service(synthetic_model, 3, seed=11)
    for epoch in range(4):
        arrivals = sharded.stream.arrivals(epoch)
        room = {
            cell.cell_id: max(
                0,
                cell.service.config.max_queue_depth
                - cell.service.queue_depth,
            )
            for cell in sharded.cells
        }
        assignments = sharded.router.route_many(
            sharded.cells, arrivals, queue_room=room
        )
        taken = {cell.cell_id: 0 for cell in sharded.cells}
        for job in arrivals:
            taken[assignments[job.job_id]] += 1
        spare = sum(
            max(0, room[cid] - taken[cid]) for cid in room
        )
        for cid, count in taken.items():
            if count > room[cid]:
                assert spare == 0, (
                    f"cell {cid} over-filled while {spare} slots were free"
                )
        sharded.run_epoch(epoch)


def test_multi_cell_rejects_shared_online_model(synthetic_model):
    online = OnlineModel(synthetic_model)
    with pytest.raises(ServiceError):
        build_sharded_service(
            online,
            ClusterSpec(num_nodes=12, cores_per_node=16),
            3,
            arrival_stream(),
        )


def test_epochs_must_be_sequential(synthetic_model):
    sharded = sharded_service(synthetic_model, 2)
    with pytest.raises(ServiceError):
        sharded.run_epoch(3)
    with pytest.raises(ServiceError):
        sharded.run(0)
