"""Deterministic cell partitioning (``repro.scale.sharding``)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.errors import ConfigurationError
from repro.scale import shard_cluster


def test_sharding_is_deterministic():
    spec = ClusterSpec(num_nodes=40)
    first = shard_cluster(spec, 7, seed=3)
    second = shard_cluster(spec, 7, seed=3)
    assert [s.node_ids for s in first] == [s.node_ids for s in second]


def test_different_seeds_shuffle_differently():
    spec = ClusterSpec(num_nodes=40)
    a = shard_cluster(spec, 7, seed=3)
    b = shard_cluster(spec, 7, seed=4)
    assert [s.node_ids for s in a] != [s.node_ids for s in b]


def test_shards_partition_the_cluster():
    spec = ClusterSpec(num_nodes=41)
    shards = shard_cluster(spec, 6, seed=9)
    seen = [node for shard in shards for node in shard.node_ids]
    assert sorted(seen) == list(range(41))
    sizes = [shard.num_nodes for shard in shards]
    assert max(sizes) - min(sizes) <= 1
    for shard in shards:
        assert shard.spec.num_nodes == shard.num_nodes
        assert shard.node_ids == tuple(sorted(shard.node_ids))


def test_single_cell_is_the_identity_view():
    spec = ClusterSpec(num_nodes=10)
    (shard,) = shard_cluster(spec, 1, seed=123)
    assert shard.cell_id == 0
    assert shard.node_ids == tuple(range(10))
    assert shard.spec.num_nodes == 10


def test_accepts_a_cluster_instance():
    cluster = Cluster(ClusterSpec(num_nodes=12))
    shards = shard_cluster(cluster, 3, seed=0)
    assert len(shards) == 3


def test_invalid_cell_counts_rejected():
    spec = ClusterSpec(num_nodes=8)
    with pytest.raises(ConfigurationError):
        shard_cluster(spec, 0)
    with pytest.raises(ConfigurationError):
        shard_cluster(spec, 9)
