"""The global coordinator migrates only on margin collapse."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.scale import CoordinatorConfig, GlobalCoordinator, HeadroomRouter
from repro.service.events import EventLog
from repro.service.jobs import Job
from tests.scale._helpers import sharded_service


def _job(job_id: str, *, workload: str = "appA", units: int = 2, qos=None):
    return Job(
        job_id=job_id,
        workload=workload,
        num_units=units,
        duration_epochs=4,
        arrival_epoch=0,
        qos_target=qos,
    )


def _load(cell, job: Job) -> None:
    service = cell.service
    decision = service.admission.try_admit(
        service.placement, service.tenants, job
    )
    assert decision.admitted, f"could not load {job.job_id}: {decision.reason}"
    service.admit_transfer(job, ends_at=99, decision=decision)


def _crowded_cells(synthetic_model):
    """Three cells; cell 0 full, hosting one squeezed MC tenant.

    The tenant's predicted margin in the crowded cell is 0.35; an empty
    sibling would give it far more, so a coordinator watching with
    ``margin_threshold=0.5`` sees a collapse while the default (0.0 —
    a predicted violation) does not.
    """
    cells = sharded_service(synthetic_model, 3, num_nodes=12).cells
    for i in range(3):
        _load(cells[0], _job(f"be-{i}"))
    _load(cells[0], _job("mc", workload="appB", qos=1.6))
    return cells


def _tenant_cell(cells, job_id: str):
    homes = [
        cell.cell_id
        for cell in cells
        if any(job.job_id == job_id for job in cell.service.tenants)
    ]
    assert len(homes) == 1
    return homes[0]


def test_no_migration_while_margins_hold(synthetic_model):
    cells = _crowded_cells(synthetic_model)
    log = EventLog()
    moves = GlobalCoordinator().rebalance(cells, 0, log, HeadroomRouter())
    assert moves == []
    assert len(log) == 0
    assert _tenant_cell(cells, "mc") == 0


def test_collapse_triggers_one_gated_migration(synthetic_model):
    cells = _crowded_cells(synthetic_model)
    assert GlobalCoordinator.worst_margin(cells[0]) == pytest.approx(0.35)
    log = EventLog()
    coordinator = GlobalCoordinator(CoordinatorConfig(margin_threshold=0.5))
    moves = coordinator.rebalance(cells, 0, log, HeadroomRouter())
    assert moves == [
        {"job": "mc", "from_cell": 0, "to_cell": 1, "units": 2}
    ]
    assert _tenant_cell(cells, "mc") == 1
    (line,) = log.to_jsonl().splitlines()
    event = json.loads(line)
    assert event["kind"] == "cell_migrate"
    assert event["from_cell"] == 0 and event["to_cell"] == 1
    assert event["margin"] == pytest.approx(0.35)
    # The move happened once; a second sweep sees a healthy source.
    again = coordinator.rebalance(cells, 1, log, HeadroomRouter())
    assert again == []


def test_empty_and_best_effort_cells_cannot_collapse(synthetic_model):
    cells = sharded_service(synthetic_model, 3, num_nodes=12).cells
    assert GlobalCoordinator.worst_margin(cells[0]) is None
    _load(cells[0], _job("be-only"))
    assert GlobalCoordinator.worst_margin(cells[0]) is None


def test_migration_cap_bounds_coordinator_churn(synthetic_model):
    cells = _crowded_cells(synthetic_model)
    coordinator = GlobalCoordinator(
        CoordinatorConfig(margin_threshold=0.5, max_migrations_per_epoch=0)
    )
    log = EventLog()
    assert coordinator.rebalance(cells, 0, log, HeadroomRouter()) == []
    assert _tenant_cell(cells, "mc") == 0


def test_no_migration_without_an_absorbing_cell(synthetic_model):
    cells = _crowded_cells(synthetic_model)
    # Fill both siblings: nowhere to move the squeezed tenant.
    for cell_id in (1, 2):
        for i in range(4):
            _load(cells[cell_id], _job(f"fill-{cell_id}-{i}"))
    coordinator = GlobalCoordinator(CoordinatorConfig(margin_threshold=0.5))
    log = EventLog()
    assert coordinator.rebalance(cells, 0, log, HeadroomRouter()) == []
    assert _tenant_cell(cells, "mc") == 0


def test_config_validation():
    with pytest.raises(ServiceError):
        CoordinatorConfig(migration_cost=-0.1)
    with pytest.raises(ServiceError):
        CoordinatorConfig(max_migrations_per_epoch=-1)
