"""Crash-safe resume of sharded days (``ScaleCheckpoint``)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.scale import SCALE_CHECKPOINT_VERSION, ScaleCheckpoint
from repro.service.events import EventLog
from tests.scale._helpers import sharded_service


def test_resumed_day_is_byte_identical(synthetic_model, tmp_path):
    """Kill at epoch 3, resume, finish — same bytes as an unbroken day."""
    checkpoint_path = str(tmp_path / "scale.ckpt")
    event_path = str(tmp_path / "events.jsonl")

    unbroken = sharded_service(synthetic_model, 3)
    unbroken.run(6)

    first = sharded_service(
        synthetic_model, 3, checkpoint_path=checkpoint_path
    )
    first.log.attach(event_path)
    first.run(3)
    first.log.detach()

    resumed = sharded_service(
        synthetic_model, 3, checkpoint_path=checkpoint_path
    )
    checkpoint = ScaleCheckpoint.load(checkpoint_path)
    assert checkpoint.epoch == 3
    assert checkpoint.n_cells == 3
    resumed.restore(checkpoint, log=EventLog.recover(event_path))
    resumed.log.attach(event_path)
    resumed.run(3)
    resumed.log.detach()

    assert resumed.log.to_jsonl() == unbroken.log.to_jsonl()
    assert [s.to_dict() for s in resumed.snapshots] == [
        s.to_dict() for s in unbroken.snapshots
    ]
    with open(event_path, "r", encoding="utf-8") as handle:
        assert handle.read() == unbroken.log.to_jsonl()


def test_checkpoint_round_trips_through_json(synthetic_model, tmp_path):
    path = str(tmp_path / "scale.ckpt")
    service = sharded_service(synthetic_model, 2, checkpoint_path=path)
    service.run(2)
    loaded = ScaleCheckpoint.load(path)
    assert loaded.to_dict() == service.checkpoint().to_dict()
    assert loaded.version == SCALE_CHECKPOINT_VERSION


def test_restore_requires_matching_seed(synthetic_model, tmp_path):
    path = str(tmp_path / "scale.ckpt")
    service = sharded_service(synthetic_model, 2, checkpoint_path=path)
    service.run(1)
    other = sharded_service(synthetic_model, 2, seed=99)
    with pytest.raises(ServiceError):
        other.restore(ScaleCheckpoint.load(path))


def test_restore_requires_matching_cell_count(synthetic_model, tmp_path):
    path = str(tmp_path / "scale.ckpt")
    service = sharded_service(synthetic_model, 2, checkpoint_path=path)
    service.run(1)
    other = sharded_service(synthetic_model, 3)
    with pytest.raises(ServiceError):
        other.restore(ScaleCheckpoint.load(path))


def test_restore_requires_a_fresh_service(synthetic_model, tmp_path):
    path = str(tmp_path / "scale.ckpt")
    service = sharded_service(synthetic_model, 2, checkpoint_path=path)
    service.run(2)
    with pytest.raises(ServiceError):
        service.restore(ScaleCheckpoint.load(path))


def test_malformed_checkpoint_rejected(synthetic_model, tmp_path):
    path = tmp_path / "scale.ckpt"
    path.write_text("{not json")
    with pytest.raises(ServiceError):
        ScaleCheckpoint.load(str(path))
    path.write_text(json.dumps({"version": SCALE_CHECKPOINT_VERSION}))
    with pytest.raises(ServiceError):
        ScaleCheckpoint.load(str(path))
    path.write_text(json.dumps({"version": 999}))
    with pytest.raises(ServiceError):
        ScaleCheckpoint.load(str(path))


def test_recovered_log_must_cover_the_checkpoint(synthetic_model, tmp_path):
    path = str(tmp_path / "scale.ckpt")
    service = sharded_service(synthetic_model, 2, checkpoint_path=path)
    service.run(2)
    fresh = sharded_service(synthetic_model, 2)
    short = EventLog()
    with pytest.raises(ServiceError):
        fresh.restore(ScaleCheckpoint.load(path), log=short)
