"""The sharded 1000-node day smoke (``-m scale_smoke``).

Deselected from the default test run (it replays a real slice of the
scale scenario, minutes of work); the ``scale-smoke`` CI job runs it
explicitly.  Two guards:

* **Determinism** — the replayed prefix of the seeded 1000-node day
  must reproduce the checked-in event counters and final snapshot in
  ``benchmarks/baselines/scale_smoke.json`` exactly.  A drift means
  the deterministic day changed and the baseline needs a refresh.
* **Wall time** — the slowest epoch must stay within
  :data:`REGRESSION_FACTOR` x of the recorded per-epoch baseline, so
  per-epoch latency at 1000 nodes stays bounded as the code grows.

To refresh after an intentional change::

    REPRO_UPDATE_SCALE_BASELINE=1 PYTHONPATH=src python -m pytest -m scale_smoke
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.scale import scale_day_service

pytestmark = pytest.mark.scale_smoke

BASELINE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "scale_smoke.json"
)

#: Set this environment variable to re-record the baseline instead of
#: asserting against it.
UPDATE_ENV = "REPRO_UPDATE_SCALE_BASELINE"

#: Allowed per-epoch slowdown before the wall-time guard trips (same
#: tolerance as the perf-smoke suite).
REGRESSION_FACTOR = 2.0

#: Epochs of the 1000-node day the smoke replays.  A prefix keeps CI
#: turnaround reasonable while still loading the cluster well past
#: half utilization; the full 25-epoch day runs via
#: ``examples/scale_day.py``.
SMOKE_EPOCHS = 8


def test_scale_day_prefix_matches_baseline_with_bounded_epochs():
    service = scale_day_service()
    epoch_seconds = []
    for epoch in range(SMOKE_EPOCHS):
        start = time.perf_counter()
        service.run_epoch(epoch)
        epoch_seconds.append(time.perf_counter() - start)

    actual = {
        "counters": service.log.counts(),
        "final": service.snapshots[-1].to_dict(),
    }
    slowest = max(epoch_seconds)

    if os.environ.get(UPDATE_ENV):
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "epochs": SMOKE_EPOCHS,
                    "counters": actual["counters"],
                    "final": actual["final"],
                    "max_epoch_seconds": round(slowest, 3),
                },
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["epochs"] == SMOKE_EPOCHS
    assert actual["counters"] == baseline["counters"], (
        "the seeded scale day drifted; refresh the baseline if the "
        f"change is intentional ({UPDATE_ENV}=1)"
    )
    assert actual["final"] == baseline["final"]
    limit = REGRESSION_FACTOR * float(baseline["max_epoch_seconds"])
    assert slowest <= limit, (
        f"slowest epoch took {slowest:.2f}s; baseline "
        f"{baseline['max_epoch_seconds']}s (limit {REGRESSION_FACTOR}x)"
    )
    # The day must actually be loaded for the guard to mean anything.
    assert actual["final"]["utilization"] > 0.5
