"""Builders for the scale-layer tests: quiet synthetic cells.

Every helper runs cells over noise-free synthetic workloads (see
``tests/_synthetic.py``) so days are fast and exactly deterministic:
byte-identity assertions compare full JSONL event logs.
"""

from __future__ import annotations

from repro.cluster.cluster import ClusterSpec
from repro.core.builder import build_model
from repro.placement.annealing import AnnealingSchedule
from repro.scale import build_sharded_service
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner
from tests._synthetic import QUIET_NOISE, synthetic_factory

FAST_SCHEDULE = AnnealingSchedule(iterations=200, restarts=1)


class CellRunnerFactory:
    """Picklable per-cell runner factory over quiet synthetic workloads."""

    def __call__(self, shard, cell_seed: int) -> ClusterRunner:
        return ClusterRunner(
            shard.spec,
            noise=QUIET_NOISE,
            base_seed=cell_seed,
            workload_factory=synthetic_factory(),
        )


def build_synthetic_model():
    """A model profiled on the quiet synthetic testbed."""
    runner = ClusterRunner(
        ClusterSpec(num_nodes=8, cores_per_node=16),
        noise=QUIET_NOISE,
        base_seed=1,
        workload_factory=synthetic_factory(),
    )
    report = build_model(
        runner, ["appA", "appB"], policy_samples=4, seed=31, span=4
    )
    return report.model


def service_config(**overrides) -> ServiceConfig:
    overrides.setdefault("schedule", FAST_SCHEDULE)
    return ServiceConfig(**overrides)


def arrival_stream(seed: int = 11, rate: float = 2.5) -> WorkloadStream:
    return WorkloadStream(
        StreamConfig(workloads=("appA", "appB"), arrival_rate=rate),
        seed=seed,
    )


class _IdentityShard:
    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec


def flat_service(model, *, num_nodes: int = 12, seed: int = 11, **config):
    """The flat reference service over the same environment."""
    runner = CellRunnerFactory()(
        _IdentityShard(ClusterSpec(num_nodes=num_nodes, cores_per_node=16)),
        seed,
    )
    return ConsolidationService(
        runner,
        model,
        arrival_stream(seed),
        config=service_config(**config),
        seed=seed,
    )


def sharded_service(
    model,
    n_cells: int,
    *,
    num_nodes: int = 12,
    seed: int = 11,
    checkpoint_path=None,
    cell_workers: int = 0,
    coordinator=None,
    **config,
):
    """A sharded day over quiet synthetic cells."""
    return build_sharded_service(
        model,
        ClusterSpec(num_nodes=num_nodes, cores_per_node=16),
        n_cells,
        arrival_stream(seed),
        seed=seed,
        config=service_config(**config),
        runner_factory=CellRunnerFactory(),
        checkpoint_path=checkpoint_path,
        cell_workers=cell_workers,
        coordinator=coordinator,
    )
