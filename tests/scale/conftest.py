"""Shared fixtures for the scale-layer tests."""

from __future__ import annotations

import pytest

from tests.scale._helpers import build_synthetic_model


@pytest.fixture(scope="session")
def synthetic_model():
    """A model profiled once on the quiet synthetic testbed (shared)."""
    return build_synthetic_model()
