"""Tests for plain-text rendering."""

import pytest

from repro.analysis.reporting import (
    format_bar_chart,
    format_series,
    format_table,
    normalized_times_table,
)
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [("a", 1.5), ("longer", 2.25)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in text
        assert "2.25" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [("only-one",)])

    def test_custom_float_format(self):
        text = format_table(["x"], [(1.23456,)], float_format="{:.4f}")
        assert "1.2346" in text


class TestFormatSeries:
    def test_columns(self):
        text = format_series("k", [0, 1], {"real": [1.0, 1.5], "naive": [1.0, 1.1]})
        assert "real" in text and "naive" in text
        assert "1.500" in text

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_series("k", [0, 1], {"s": [1.0]})


class TestBarChart:
    def test_bars_scale(self):
        text = format_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_bar_chart({})


def test_normalized_times_table_sorted():
    text = normalized_times_table({"b": 1.2, "a": 1.1})
    assert text.index("a") < text.index("b")
