"""Tests for error metrics."""

import pytest

from repro.analysis.errors import (
    ErrorSummary,
    absolute_percent_error,
    percent_errors,
)
from repro.errors import ConfigurationError


class TestAbsolutePercentError:
    def test_basic(self):
        assert absolute_percent_error(1.1, 1.0) == pytest.approx(10.0)

    def test_symmetric_in_magnitude(self):
        assert absolute_percent_error(0.9, 1.0) == pytest.approx(10.0)

    def test_zero_actual(self):
        with pytest.raises(ConfigurationError):
            absolute_percent_error(1.0, 0.0)


class TestPercentErrors:
    def test_elementwise(self):
        errors = percent_errors([1.1, 2.0], [1.0, 2.0])
        assert errors[0] == pytest.approx(10.0)
        assert errors[1] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            percent_errors([1.0], [1.0, 2.0])

    def test_non_positive_actual(self):
        with pytest.raises(ConfigurationError):
            percent_errors([1.0], [0.0])


class TestErrorSummary:
    def test_statistics(self):
        summary = ErrorSummary.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p25 == 2.0
        assert summary.p75 == 4.0
        assert summary.count == 5

    def test_bars(self):
        summary = ErrorSummary.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.iqr_bar() == (2.0, 4.0)
        assert summary.range_bar() == (1.0, 5.0)

    def test_single_sample(self):
        summary = ErrorSummary.of([3.0])
        assert summary.std == 0.0
        assert summary.mean == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ErrorSummary.of([])
