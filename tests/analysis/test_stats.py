"""Tests for the sampling statistics of Section 3.3."""

import numpy as np
import pytest

from repro.analysis.stats import (
    finite_population_correction,
    margin_of_error,
    required_sample_size,
)
from repro.errors import ConfigurationError


class TestFinitePopulationCorrection:
    def test_full_sample_is_zero(self):
        assert finite_population_correction(100, 100) == 0.0

    def test_small_sample_near_one(self):
        assert finite_population_correction(10, 1_000_000) == pytest.approx(
            1.0, abs=1e-4
        )

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            finite_population_correction(0, 10)
        with pytest.raises(ConfigurationError):
            finite_population_correction(11, 10)


class TestMarginOfError:
    def test_papers_calculation(self):
        # Section 3.3: 60 samples of 12,870 configurations with the
        # observed standard deviations give roughly +/-1.7 at 99%.
        rng = np.random.default_rng(0)
        sample = rng.normal(5.0, 5.0, size=60)  # sd ~= 5 percentage points
        moe = margin_of_error(sample, population_size=12870, confidence=0.99)
        assert moe == pytest.approx(1.7, abs=0.4)

    def test_higher_confidence_wider(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo = margin_of_error(sample, population_size=1000, confidence=0.90)
        hi = margin_of_error(sample, population_size=1000, confidence=0.99)
        assert hi > lo

    def test_invalid_confidence(self):
        with pytest.raises(ConfigurationError):
            margin_of_error([1.0, 2.0], population_size=100, confidence=0.5)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            margin_of_error([1.0], population_size=100)


class TestRequiredSampleSize:
    def test_roundtrip_with_margin(self):
        n = required_sample_size(
            5.0, target_margin=1.7, population_size=12870, confidence=0.99
        )
        # The paper's 60 samples should be in the right neighbourhood.
        assert 40 <= n <= 80

    def test_zero_std(self):
        assert required_sample_size(0.0, target_margin=1.0, population_size=100) == 2

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            required_sample_size(-1.0, target_margin=1.0, population_size=100)
        with pytest.raises(ConfigurationError):
            required_sample_size(1.0, target_margin=0.0, population_size=100)
