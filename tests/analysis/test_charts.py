"""Tests for the ASCII chart renderers."""

import numpy as np
import pytest

from repro.analysis.charts import ascii_chart, propagation_chart
from repro.core.curves import PropagationMatrix
from repro.errors import ConfigurationError


class TestAsciiChart:
    def test_contains_glyphs_and_legend(self):
        text = ascii_chart([0, 1, 2], {"a": [1.0, 1.5, 2.0], "b": [1.0, 1.1, 1.2]})
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_axis_labels(self):
        text = ascii_chart([0, 8], {"a": [1.0, 2.0]})
        assert "2.00" in text and "1.00" in text
        assert text.rstrip().splitlines()[-2].strip().startswith("0")

    def test_extremes_plotted_at_edges(self):
        text = ascii_chart([0, 1], {"a": [1.0, 2.0]}, width=10, height=5)
        lines = text.splitlines()
        assert "o" in lines[0]   # max value on the top row
        assert "o" in lines[4]   # min value on the bottom row

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], {})
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], {"a": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart([0], {"a": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], {"a": [1, 2]}, width=2)

    def test_flat_series_does_not_crash(self):
        text = ascii_chart([0, 1, 2], {"a": [1.0, 1.0, 1.0]})
        assert "o" in text


class TestPropagationChart:
    def _matrix(self):
        return PropagationMatrix(
            [2.0, 5.0, 8.0],
            [0.0, 1.0, 2.0],
            np.array([[1.0, 1.1, 1.2], [1.0, 1.3, 1.5], [1.0, 1.6, 2.0]]),
        )

    def test_default_rows(self):
        text = propagation_chart(self._matrix())
        assert "p2" in text and "p5" in text and "p8" in text

    def test_explicit_rows(self):
        text = propagation_chart(self._matrix(), pressures=[8.0])
        assert "p8" in text and "p2" not in text

    def test_unknown_pressure(self):
        with pytest.raises(ConfigurationError):
            propagation_chart(self._matrix(), pressures=[3.0])
