"""Tests for memory-subsystem accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.resources import (
    MemorySubsystem,
    miss_rate_to_pressure,
    pressure_to_miss_rate,
)
from repro.units import MAX_PRESSURE


class TestMemorySubsystem:
    def test_defaults(self):
        mem = MemorySubsystem()
        assert mem.llc_mb == 40.0
        assert mem.saturation_pressure() == MAX_PRESSURE

    def test_invalid(self):
        with pytest.raises(ValueError):
            MemorySubsystem(llc_mb=0)
        with pytest.raises(ValueError):
            MemorySubsystem(bandwidth_gbps=-1)


class TestPressureMissRateConversion:
    def test_zero_maps_to_zero(self):
        assert pressure_to_miss_rate(0.0) == 0.0
        assert miss_rate_to_pressure(0.0) == 0.0

    def test_doubling_per_level(self):
        # Section 4.4: +1 pressure level == doubled LLC misses.
        assert pressure_to_miss_rate(4.0) == pytest.approx(
            2.0 * pressure_to_miss_rate(3.0)
        )

    def test_negative_miss_rate_rejected(self):
        with pytest.raises(ValueError):
            miss_rate_to_pressure(-1.0)

    @given(p=st.floats(min_value=0.1, max_value=MAX_PRESSURE))
    def test_roundtrip(self, p):
        assert miss_rate_to_pressure(pressure_to_miss_rate(p)) == pytest.approx(p)
