"""Tests for the interconnect model."""

import pytest

from repro.cluster.topology import SwitchTopology


class TestSwitchTopology:
    def test_point_to_point(self):
        topo = SwitchTopology(base_latency=0.001, per_node_cost=0.0001)
        assert topo.point_to_point() == 0.001

    def test_collective_scales_with_nodes(self):
        topo = SwitchTopology(base_latency=0.001, per_node_cost=0.0001)
        assert topo.collective_cost(8) == pytest.approx(0.0018)
        assert topo.collective_cost(4) < topo.collective_cost(8)

    def test_single_node_collective_free(self):
        topo = SwitchTopology()
        assert topo.collective_cost(1) == 0.0

    def test_zero_nodes_rejected(self):
        # A collective needs at least one participant.
        with pytest.raises(ValueError):
            SwitchTopology().collective_cost(0)

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology().collective_cost(-1)

    def test_shuffle_exceeds_collective(self):
        topo = SwitchTopology()
        assert topo.shuffle_cost(8) > topo.collective_cost(8)

    def test_shuffle_data_scale(self):
        topo = SwitchTopology()
        assert topo.shuffle_cost(8, data_scale=2.0) == pytest.approx(
            topo.collective_cost(8) * 3.0
        )

    def test_negative_data_scale(self):
        with pytest.raises(ValueError):
            SwitchTopology().shuffle_cost(8, data_scale=-1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology(base_latency=-0.1)
