"""Seeded synthetic cluster builder (``Cluster.synthetic``)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError


def _inventory(cluster: Cluster):
    return [(node.node_id, node.cores, node.memory_gb) for node in cluster.nodes]


def test_same_arguments_build_the_same_inventory():
    a = Cluster.synthetic(50, seed=7)
    b = Cluster.synthetic(50, seed=7)
    assert _inventory(a) == _inventory(b)


def test_seed_changes_the_inventory():
    a = Cluster.synthetic(50, seed=7)
    b = Cluster.synthetic(50, seed=8)
    assert _inventory(a) != _inventory(b)


def test_nodes_draw_from_the_choices():
    cluster = Cluster.synthetic(
        200, seed=1, cores_choices=(16, 32), memory_choices=(64,)
    )
    assert cluster.spec.num_nodes == 200
    assert cluster.spec.cores_per_node == 16  # floor of the choices
    cores = {node.cores for node in cluster.nodes}
    assert cores == {16, 32}
    assert all(node.memory_gb == 64 for node in cluster.nodes)


def test_invalid_arguments_rejected():
    with pytest.raises(ConfigurationError):
        Cluster.synthetic(0)
    with pytest.raises(ConfigurationError):
        Cluster.synthetic(4, cores_choices=())
