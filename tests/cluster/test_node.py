"""Tests for the physical host model."""

import pytest

from repro.cluster.node import PhysicalNode
from repro.errors import PlacementError


class TestConstruction:
    def test_defaults(self):
        node = PhysicalNode(node_id=0)
        assert node.cores == 16
        assert node.free_vcpus == 16
        assert node.used_vcpus == 0

    def test_invalid_id(self):
        with pytest.raises(ValueError):
            PhysicalNode(node_id=-1)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            PhysicalNode(node_id=0, cores=0)


class TestAssignment:
    def test_assign_tracks_usage(self):
        node = PhysicalNode(node_id=0)
        node.assign("a", 8)
        assert node.used_vcpus == 8
        assert node.free_vcpus == 8
        assert node.vcpus_of("a") == 8

    def test_assign_accumulates(self):
        node = PhysicalNode(node_id=0)
        node.assign("a", 4)
        node.assign("a", 4)
        assert node.vcpus_of("a") == 8

    def test_overcommit_rejected(self):
        node = PhysicalNode(node_id=0, cores=16)
        node.assign("a", 8)
        with pytest.raises(PlacementError, match="cannot assign"):
            node.assign("b", 10)

    def test_pairwise_limit(self):
        node = PhysicalNode(node_id=0)
        node.assign("a", 4)
        node.assign("b", 4)
        with pytest.raises(PlacementError, match="pairwise"):
            node.assign("c", 4)

    def test_custom_workload_limit(self):
        node = PhysicalNode(node_id=0)
        node.assign("a", 4)
        with pytest.raises(PlacementError):
            node.assign("b", 4, max_workloads=1)

    def test_zero_vcpus_rejected(self):
        node = PhysicalNode(node_id=0)
        with pytest.raises(ValueError):
            node.assign("a", 0)

    def test_resident_workloads_sorted(self):
        node = PhysicalNode(node_id=0)
        node.assign("b", 4)
        node.assign("a", 4)
        assert node.resident_workloads == ["a", "b"]


class TestRelease:
    def test_release(self):
        node = PhysicalNode(node_id=0)
        node.assign("a", 8)
        node.release("a")
        assert node.free_vcpus == 16
        assert node.vcpus_of("a") == 0

    def test_release_unknown_is_noop(self):
        node = PhysicalNode(node_id=0)
        node.release("ghost")

    def test_clear(self):
        node = PhysicalNode(node_id=0)
        node.assign("a", 4)
        node.assign("b", 4)
        node.clear()
        assert node.used_vcpus == 0
        assert node.resident_workloads == []
