"""Tests for VM and VM-unit models."""

import pytest

from repro.cluster.vm import VirtualMachine, VMUnit


class TestVirtualMachine:
    def test_defaults_match_testbed(self):
        vm = VirtualMachine(vm_id=0)
        assert vm.vcpus == 2
        assert vm.memory_gb == 5

    def test_invalid_id(self):
        with pytest.raises(ValueError):
            VirtualMachine(vm_id=-1)

    def test_invalid_vcpus(self):
        with pytest.raises(ValueError):
            VirtualMachine(vm_id=0, vcpus=0)

    def test_frozen(self):
        vm = VirtualMachine(vm_id=0)
        with pytest.raises(AttributeError):
            vm.vcpus = 4


class TestVMUnit:
    def test_vcpus(self):
        unit = VMUnit(instance_key="a", unit_index=0)
        assert unit.vcpus == 8  # 4 VMs x 2 vCPUs

    def test_label(self):
        unit = VMUnit(instance_key="M.lmps#0", unit_index=2)
        assert unit.label == "M.lmps#0/u2"

    def test_invalid_unit_index(self):
        with pytest.raises(ValueError):
            VMUnit(instance_key="a", unit_index=-1)

    def test_invalid_vms(self):
        with pytest.raises(ValueError):
            VMUnit(instance_key="a", unit_index=0, vms=0)

    def test_custom_shape(self):
        unit = VMUnit(instance_key="a", unit_index=0, vms=2, vcpus_per_vm=4)
        assert unit.vcpus == 8
