"""Tests for the cluster inventory."""

import pytest

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.errors import ConfigurationError, PlacementError


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 8
        assert spec.cores_per_node == 16
        assert spec.max_workloads_per_node == 2
        assert spec.total_cores == 128

    def test_invalid_nodes(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_nodes=0)

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(cores_per_node=-1)


class TestCluster:
    def test_len_and_iteration(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        assert len(cluster) == 3
        assert [n.node_id for n in cluster] == [0, 1, 2]

    def test_node_lookup(self):
        cluster = Cluster()
        assert cluster.node(5).node_id == 5

    def test_node_out_of_range(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        with pytest.raises(ConfigurationError):
            cluster.node(2)

    def test_assign_and_occupancy(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        cluster.assign("a", 0, 8)
        cluster.assign("b", 0, 8)
        cluster.assign("a", 1, 8)
        assert cluster.occupancy() == {0: ["a", "b"], 1: ["a"]}

    def test_assign_respects_pairwise_limit(self):
        cluster = Cluster(ClusterSpec(num_nodes=1, max_workloads_per_node=2))
        cluster.assign("a", 0, 4)
        cluster.assign("b", 0, 4)
        with pytest.raises(PlacementError):
            cluster.assign("c", 0, 4)

    def test_nodes_hosting(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        cluster.assign("a", 0, 8)
        cluster.assign("a", 2, 8)
        assert cluster.nodes_hosting("a") == [0, 2]

    def test_co_runners_at(self):
        cluster = Cluster(ClusterSpec(num_nodes=1))
        cluster.assign("a", 0, 8)
        cluster.assign("b", 0, 8)
        assert cluster.co_runners_at(0, "a") == ["b"]

    def test_release(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        cluster.assign("a", 0, 8)
        cluster.assign("a", 1, 8)
        cluster.release("a")
        assert cluster.nodes_hosting("a") == []

    def test_clear(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        cluster.assign("a", 0, 8)
        cluster.clear()
        assert cluster.occupancy() == {0: [], 1: []}
