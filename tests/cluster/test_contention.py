"""Tests for sensitivity functions and pressure combination."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster.contention import (
    ExponentialSensitivity,
    FlatSensitivity,
    LinearSensitivity,
    combine_pressures,
)
from repro.units import MAX_PRESSURE

pressures = st.floats(min_value=0.0, max_value=MAX_PRESSURE)


class TestExponentialSensitivity:
    def test_no_pressure_no_slowdown(self):
        f = ExponentialSensitivity(max_slowdown=2.0)
        assert f.slowdown(0.0) == 1.0

    def test_max_pressure_hits_max_slowdown(self):
        f = ExponentialSensitivity(max_slowdown=2.0)
        assert f.slowdown(MAX_PRESSURE) == pytest.approx(2.0)

    def test_above_max_clamps(self):
        f = ExponentialSensitivity(max_slowdown=2.0)
        assert f.slowdown(20.0) == pytest.approx(2.0)

    def test_threshold_gates_response(self):
        f = ExponentialSensitivity(max_slowdown=2.0, threshold=3.0)
        assert f.slowdown(2.9) == 1.0
        assert f.slowdown(3.5) > 1.0
        assert f.slowdown(MAX_PRESSURE) == pytest.approx(2.0)

    def test_zero_curvature_is_linear(self):
        f = ExponentialSensitivity(max_slowdown=3.0, curvature=0.0)
        assert f.slowdown(4.0) == pytest.approx(2.0)

    def test_convexity(self):
        # With positive curvature the response is back-loaded: the
        # midpoint slowdown is below the linear midpoint.
        f = ExponentialSensitivity(max_slowdown=3.0, curvature=0.5)
        assert f.slowdown(4.0) < 2.0

    @given(p1=pressures, p2=pressures)
    def test_monotone(self, p1, p2):
        f = ExponentialSensitivity(max_slowdown=2.5, curvature=0.4, threshold=1.0)
        lo, hi = sorted([p1, p2])
        assert f.slowdown(lo) <= f.slowdown(hi) + 1e-12

    def test_invalid_max_slowdown(self):
        with pytest.raises(ValueError):
            ExponentialSensitivity(max_slowdown=0.9)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ExponentialSensitivity(max_slowdown=2.0, threshold=MAX_PRESSURE)

    def test_invalid_curvature(self):
        with pytest.raises(ValueError):
            ExponentialSensitivity(max_slowdown=2.0, curvature=-1.0)

    def test_callable(self):
        f = ExponentialSensitivity(max_slowdown=2.0)
        assert f(4.0) == f.slowdown(4.0)


class TestLinearSensitivity:
    def test_endpoints(self):
        f = LinearSensitivity(max_slowdown=3.0)
        assert f.slowdown(0.0) == 1.0
        assert f.slowdown(MAX_PRESSURE) == 3.0

    def test_midpoint(self):
        f = LinearSensitivity(max_slowdown=3.0)
        assert f.slowdown(4.0) == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LinearSensitivity(max_slowdown=0.5)


class TestFlatSensitivity:
    @given(p=pressures)
    def test_always_one(self, p):
        assert FlatSensitivity().slowdown(p) == 1.0


class TestCombinePressures:
    def test_empty(self):
        assert combine_pressures([]) == 0.0

    def test_zeros_ignored(self):
        assert combine_pressures([0.0, 0.0, 3.0]) == 3.0

    def test_single_passthrough(self):
        assert combine_pressures([4.2]) == 4.2

    def test_equal_scores_add_one_plus_surcharge(self):
        # Section 4.4: combining two equal scores S gives S + 1 plus
        # the collision surcharge.
        assert combine_pressures([3.0, 3.0], collision_surcharge=0.0) == (
            pytest.approx(4.0)
        )
        assert combine_pressures([3.0, 3.0], collision_surcharge=0.15) == (
            pytest.approx(4.15)
        )

    def test_log_combination(self):
        expected = math.log2(2**2 + 2**5)
        assert combine_pressures([2.0, 5.0], collision_surcharge=0.0) == (
            pytest.approx(expected)
        )

    def test_clamped_to_max(self):
        assert combine_pressures([8.0, 8.0]) == MAX_PRESSURE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            combine_pressures([-1.0])

    @given(scores=st.lists(pressures, min_size=1, max_size=4))
    def test_bounds(self, scores):
        combined = combine_pressures(scores)
        assert 0.0 <= combined <= MAX_PRESSURE
        positive = [s for s in scores if s > 0]
        if positive:
            assert combined >= min(max(positive), MAX_PRESSURE) - 1e-12

    @given(scores=st.lists(pressures, min_size=1, max_size=4), extra=pressures)
    def test_monotone_in_sources(self, scores, extra):
        base = combine_pressures(scores)
        assert combine_pressures(scores + [extra]) >= base - 1e-12
