"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

SERVE_FAST = [
    "serve",
    "--epochs", "2",
    "--seed", "9",
    "--workloads", "M.lmps", "H.KM",
    "--policy-samples", "5",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestListCommand:
    def test_lists_catalog_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "M.lmps" in out
        assert "fig2" in out
        assert "fig13" in out


class TestProfilePredictRoundtrip:
    def test_profile_then_predict(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        code = main(
            [
                "profile", "M.lmps",
                "--out", model_path,
                "--policy-samples", "5",
                "--seed", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M.lmps" in out and "Bubble score" in out

        code = main(
            [
                "predict", "--model", model_path,
                "--workload", "M.lmps",
                "--pressure", "6", "--count", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M.lmps" in out and "x solo time" in out

    def test_predict_heterogeneous(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        main(["profile", "M.lmps", "--out", model_path,
              "--policy-samples", "5", "--seed", "4"])
        capsys.readouterr()
        code = main(
            [
                "predict", "--model", model_path,
                "--workload", "M.lmps",
                "--pressures", "6,3,0,0,0,0,0,0",
            ]
        )
        assert code == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_predict_missing_model_errors(self, capsys):
        code = main(
            ["predict", "--model", "/nonexistent.json", "--workload", "M.lmps"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestProfileAlgorithms:
    def test_random_sampling_algorithm(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        code = main(
            [
                "profile", "M.lmps",
                "--out", model_path,
                "--algorithm", "random-30%",
                "--policy-samples", "5",
                "--seed", "4",
            ]
        )
        assert code == 0
        assert "Bubble score" in capsys.readouterr().out


class TestServeCommand:
    def test_serves_a_short_day(self, tmp_path, capsys):
        log_path = tmp_path / "events.jsonl"
        code = main(SERVE_FAST + ["--event-log", str(log_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch" in out
        assert "epoch_end" in out
        lines = log_path.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "epoch_end" in kinds

    def test_day_is_deterministic_across_processes(self, tmp_path, capsys):
        paths = []
        for name in ("a", "b"):
            log = tmp_path / f"{name}.jsonl"
            snap = tmp_path / f"{name}.json"
            assert main(
                SERVE_FAST + ["--event-log", str(log), "--snapshot", str(snap)]
            ) == 0
            paths.append((log, snap))
        capsys.readouterr()
        (log_a, snap_a), (log_b, snap_b) = paths
        assert log_a.read_bytes() == log_b.read_bytes()
        assert snap_a.read_bytes() == snap_b.read_bytes()

    def test_expectation_roundtrip(self, tmp_path, capsys):
        expect = tmp_path / "expect.json"
        assert main(SERVE_FAST + ["--update-expect", str(expect)]) == 0
        assert main(SERVE_FAST + ["--expect", str(expect)]) == 0
        assert "expectation check passed" in capsys.readouterr().out

    def test_expectation_fails_on_violation_regression(self, tmp_path, capsys):
        expect = tmp_path / "expect.json"
        assert main(SERVE_FAST + ["--update-expect", str(expect)]) == 0
        data = json.loads(expect.read_text())
        data["final"]["qos_violations_total"] = -1
        expect.write_text(json.dumps(data))
        assert main(SERVE_FAST + ["--expect", str(expect)]) == 1
        assert "QoS-violation regression" in capsys.readouterr().err

    def test_bad_fault_plan_reports_cli_error(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"crash_rat": 0.5}))
        assert main(SERVE_FAST + ["--faults", str(plan)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "crash_rat" in err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(SERVE_FAST + ["--resume"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--resume requires --checkpoint" in err


class TestNetworkFlags:
    """``--network-noise`` / ``--domains`` on profile, serve and daemon."""

    def test_flat_defaults(self):
        from repro.cli._parents import wants_network

        parser = build_parser()
        for argv in (
            ["profile", "M.lmps"],
            ["serve"],
            ["daemon", "--spool", "/tmp/s"],
        ):
            args = parser.parse_args(argv)
            assert args.network_noise == 0.0, argv[0]
            assert tuple(args.domains) == ("compute",), argv[0]
            assert not wants_network(args), argv[0]

    def test_parse_values(self):
        from repro.cli._parents import wants_network

        args = build_parser().parse_args(
            ["serve", "--network-noise", "2.5",
             "--domains", "compute", "network"]
        )
        assert args.network_noise == 2.5
        assert "network" in args.domains
        assert wants_network(args)

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--domains", "disk"])

    def test_profile_network_then_predict_by_domain(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        code = main(
            [
                "profile", "D.PS",
                "--out", model_path,
                "--policy-samples", "5",
                "--seed", "4",
                "--domains", "compute", "network",
            ]
        )
        assert code == 0
        assert "Network score" in capsys.readouterr().out

        code = main(
            [
                "predict", "--model", model_path,
                "--workload", "D.PS",
                "--pressure", "6", "--count", "2",
                "--domain", "network",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "network domain" in out and "x solo time" in out

    def test_compute_profile_table_unchanged_by_default(self, capsys):
        assert main(
            ["profile", "M.lmps", "--policy-samples", "5", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Bubble score" in out
        assert "Network score" not in out
