"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestListCommand:
    def test_lists_catalog_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "M.lmps" in out
        assert "fig2" in out
        assert "fig13" in out


class TestProfilePredictRoundtrip:
    def test_profile_then_predict(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        code = main(
            [
                "profile", "M.lmps",
                "--out", model_path,
                "--policy-samples", "5",
                "--seed", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M.lmps" in out and "Bubble score" in out

        code = main(
            [
                "predict", "--model", model_path,
                "--workload", "M.lmps",
                "--pressure", "6", "--count", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M.lmps" in out and "x solo time" in out

    def test_predict_heterogeneous(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        main(["profile", "M.lmps", "--out", model_path,
              "--policy-samples", "5", "--seed", "4"])
        capsys.readouterr()
        code = main(
            [
                "predict", "--model", model_path,
                "--workload", "M.lmps",
                "--pressures", "6,3,0,0,0,0,0,0",
            ]
        )
        assert code == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_predict_missing_model_errors(self, capsys):
        code = main(
            ["predict", "--model", "/nonexistent.json", "--workload", "M.lmps"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
