"""Tests for pressure-scale conventions."""

import pytest

from repro import units


class TestValidatePressure:
    def test_accepts_zero(self):
        assert units.validate_pressure(0.0) == 0.0

    def test_accepts_max(self):
        assert units.validate_pressure(units.MAX_PRESSURE) == 8.0

    def test_accepts_above_max(self):
        # Validation only rejects nonsense, not out-of-scale values;
        # clamping is the caller's policy decision.
        assert units.validate_pressure(12.5) == 12.5

    def test_coerces_int(self):
        assert units.validate_pressure(3) == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            units.validate_pressure(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            units.validate_pressure(float("nan"))

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="intensity"):
            units.validate_pressure(-1, name="intensity")


class TestConstants:
    def test_pressure_scale(self):
        assert units.MAX_PRESSURE == 8.0
        assert units.NUM_PRESSURE_LEVELS == 8
        assert units.NO_PRESSURE == 0.0

    def test_testbed_shape(self):
        # Section 3.1: 8 hosts x 16 cores, dual-vCPU VMs, 4-VM units.
        assert units.DEFAULT_NUM_HOSTS == 8
        assert units.DEFAULT_CORES_PER_HOST == 16
        assert units.DEFAULT_VCPUS_PER_VM == 2
        assert units.DEFAULT_VMS_PER_UNIT == 4
