"""ConsolidationDaemon end-to-end: byte identity, API round-trip, recovery."""

import json

import pytest

from repro.daemon import ConsolidationDaemon, SpoolLock
from repro.errors import DaemonError, ServiceError
from repro.faults import FaultConfig, FaultPlan
from tests.daemon._helpers import (
    EPOCHS,
    day_bytes,
    make_blueprint,
    make_daemon,
)

CHAOS = FaultPlan(FaultConfig(
    seed=7, worker_crash_rate=0.4, lease_expiry_rate=0.3
))


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_cannot_change_the_day(
        self, tmp_path, model, flat_day, workers
    ):
        daemon = make_daemon(tmp_path / "spool", model, workers=workers)
        daemon.run(EPOCHS)
        assert day_bytes(daemon) == flat_day
        assert daemon.stats["commits"] == EPOCHS

    def test_injected_crashes_and_wedges_cannot_either(
        self, tmp_path, model, flat_day
    ):
        daemon = make_daemon(
            tmp_path / "spool", model, workers=4, faults=CHAOS
        )
        daemon.run(EPOCHS)
        assert day_bytes(daemon) == flat_day
        stats = daemon.stats
        # The protocol must actually have been exercised...
        assert stats["worker_crashes"] > 0
        assert stats["wedges"] > 0
        assert stats["requeues"] > 0
        # ...and every wedged completion fenced, every epoch committed
        # exactly once.
        assert stats["stale_commits"] == stats["wedges"]
        assert stats["commits"] == EPOCHS

    def test_durable_log_matches_the_in_memory_log(
        self, tmp_path, model, flat_day
    ):
        daemon = make_daemon(tmp_path / "spool", model)
        daemon.run(EPOCHS)
        on_disk = daemon.spool.events_path.read_text(encoding="utf-8")
        assert on_disk == flat_day[0]


class TestResume:
    def test_interrupted_daemon_finishes_byte_identically(
        self, tmp_path, model, flat_day
    ):
        spool = tmp_path / "spool"
        make_daemon(spool, model, workers=2).run(3)
        resumed = make_daemon(spool, model, workers=4, faults=CHAOS)
        fresh = resumed.run(EPOCHS)
        assert len(fresh) == EPOCHS - 3
        assert day_bytes(resumed) == flat_day

    def test_commit_interrupted_mid_append_is_rederived(
        self, tmp_path, model, flat_day
    ):
        spool = tmp_path / "spool"
        daemon = make_daemon(spool, model)
        daemon.run(3)
        # Simulate a crash mid-commit of epoch 3: some events hit the
        # durable log, the checkpoint did not.
        extra = daemon.log.since(0)[-1]
        with open(daemon.spool.events_path, "a", encoding="utf-8") as fh:
            entry = extra.to_dict()
            entry.update(seq=len(daemon.log), epoch=3, kind="arrival")
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.write('{"epoch": 3, "seq": 99, "ki')  # plus a torn line
        resumed = make_daemon(spool, model)
        resumed.run(EPOCHS)
        assert day_bytes(resumed) == flat_day

    def test_mismatched_log_and_checkpoint_fail_descriptively(
        self, tmp_path, model
    ):
        spool = tmp_path / "spool"
        daemon = make_daemon(spool, model)
        daemon.run(3)
        # Chop the durable log below the checkpoint boundary.
        lines = daemon.spool.events_path.read_text().splitlines()
        daemon.spool.events_path.write_text(
            "\n".join(lines[:2]) + "\n", encoding="utf-8"
        )
        resumed = make_daemon(spool, model)
        with pytest.raises(ServiceError) as err:
            resumed.run(EPOCHS)
        message = str(err.value)
        assert "epoch boundary 3" in message
        assert str(daemon.spool.events_path) in message
        assert "2 event(s)" in message

    def test_finished_spool_runs_nothing(self, tmp_path, model, flat_day):
        spool = tmp_path / "spool"
        make_daemon(spool, model).run(EPOCHS)
        again = make_daemon(spool, model)
        assert again.run(EPOCHS) == []
        assert day_bytes(again) == flat_day


class TestSingleInstance:
    def test_second_daemon_on_the_spool_fails_fast(self, tmp_path, model):
        spool = tmp_path / "spool"
        daemon = make_daemon(spool, model)
        with SpoolLock(daemon.spool.lock_path):
            with pytest.raises(DaemonError, match="another daemon"):
                daemon.run(1)

    def test_lock_is_released_after_a_run(self, tmp_path, model):
        spool = tmp_path / "spool"
        make_daemon(spool, model).run(1)
        lock = SpoolLock(spool / "daemon.pid")
        lock.acquire()
        lock.release()


class TestSubmitStatusCancelRoundTrip:
    def test_live_round_trip_against_the_daemon(self, tmp_path, model):
        daemon = make_daemon(tmp_path / "spool", model)
        daemon.run(2)
        record = daemon.submit(
            "A", num_units=2, duration_epochs=6, job_id="mine"
        )
        assert record.status == "submitted"
        daemon.run(3)
        record = daemon.status("mine")
        assert record.arrival_epoch == 2
        assert record.status in ("running", "waiting")
        daemon.cancel("mine")
        daemon.run(EPOCHS)
        record = daemon.status("mine")
        assert record.status == "cancelled"
        cancels = daemon.log.of_kind("job_cancel")
        assert [dict(e.payload)["job"] for e in cancels] == ["mine"]

    def test_submission_changes_only_the_tail_of_the_day(
        self, tmp_path, model, flat_day
    ):
        daemon = make_daemon(tmp_path / "spool", model)
        daemon.run(3)
        daemon.submit("B", num_units=2, duration_epochs=1, job_id="late")
        daemon.run(EPOCHS)
        flat_lines = flat_day[0].splitlines()
        got_lines = daemon.log.to_jsonl().splitlines()
        # Epochs 0-2 committed before the submission are untouched.
        boundary = daemon.snapshots[2]
        assert boundary.to_dict() == flat_day[1][2]
        prefix = [l for l in flat_lines if json.loads(l)["epoch"] < 3]
        assert got_lines[:len(prefix)] == prefix
        arrivals = [
            dict(e.payload)["job"]
            for e in daemon.log.of_kind("arrival")
        ]
        assert "late" in arrivals

    def test_two_daemons_disagree_only_by_the_submission(
        self, tmp_path, model
    ):
        # The same submissions at the same boundaries reproduce the
        # same day — the spool is part of the deterministic input.
        days = []
        for name in ("one", "two"):
            daemon = make_daemon(tmp_path / name, model)
            daemon.run(2)
            daemon.submit("A", num_units=2, duration_epochs=2,
                          job_id="fixed")
            daemon.run(EPOCHS)
            days.append(day_bytes(daemon))
        assert days[0] == days[1]
