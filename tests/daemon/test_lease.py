"""SlotManager lease protocol: claim, renew, fence, reap."""

import pytest

from repro.daemon import LogicalClock, SlotManager
from repro.errors import DaemonError


@pytest.fixture
def slots():
    return SlotManager(lease_ticks=3, clock=LogicalClock())


class TestLogicalClock:
    def test_starts_at_zero_and_ticks_forward(self):
        clock = LogicalClock()
        assert clock.now() == 0
        assert clock.tick() == 1
        assert clock.tick(5) == 6

    def test_rejects_non_positive_steps(self):
        with pytest.raises(DaemonError, match="forward"):
            LogicalClock().tick(0)


class TestClaim:
    def test_grants_monotonic_fencing_tokens(self, slots):
        first = slots.claim("epoch-0#a0", 0)
        second = slots.claim("epoch-1#a0", 1)
        assert second.token > first.token
        assert slots.active_count == 2

    def test_claimed_work_is_exclusive(self, slots):
        slots.claim("epoch-0#a0", 0)
        with pytest.raises(DaemonError, match="already leased to worker 0"):
            slots.claim("epoch-0#a0", 1)

    def test_expired_work_is_reclaimable(self, slots):
        old = slots.claim("epoch-0#a0", 0)
        slots.clock.tick(3)
        fresh = slots.claim("epoch-0#a0", 1)
        assert fresh.token > old.token
        assert not slots.is_current(old)
        assert slots.is_current(fresh)

    def test_lease_ticks_floor(self):
        # Below 2 a healthy renew-every-tick worker could still be
        # reaped between renewal and health check.
        with pytest.raises(DaemonError, match="lease_ticks"):
            SlotManager(lease_ticks=1)


class TestRenew:
    def test_renewal_keeps_a_slow_worker_alive(self, slots):
        lease = slots.claim("epoch-0#a0", 0)
        for _ in range(10):  # far past the original expiry
            slots.clock.tick()
            assert slots.renew(lease)
            assert slots.is_current(lease)

    def test_stale_token_cannot_renew(self, slots):
        old = slots.claim("epoch-0#a0", 0)
        slots.clock.tick(3)
        slots.reap_expired()
        fresh = slots.claim("epoch-0#a0", 1)
        assert not slots.renew(old)
        assert slots.is_current(fresh)

    def test_lapsed_lease_cannot_resurrect_itself(self, slots):
        lease = slots.claim("epoch-0#a0", 0)
        slots.clock.tick(3)
        # Expired but not yet reaped: renewal must still fail, because
        # the reaper may requeue this work on the next health check.
        assert not slots.renew(lease)
        assert not slots.is_current(lease)


class TestReapAndRelease:
    def test_reap_returns_and_removes_lapsed_leases(self, slots):
        kept = slots.claim("epoch-0#a0", 0)
        slots.claim("epoch-1#a0", 1)
        slots.claim("epoch-2#a0", 2)
        slots.clock.tick(2)
        slots.renew(kept)
        slots.clock.tick(1)
        reaped = slots.reap_expired()
        assert [lease.work_id for lease in reaped] == [
            "epoch-1#a0", "epoch-2#a0"
        ]
        assert slots.is_current(kept)
        assert slots.reap_expired() == []

    def test_release_drops_only_the_holder(self, slots):
        lease = slots.claim("epoch-0#a0", 0)
        assert slots.release(lease)
        assert not slots.release(lease)
        assert not slots.is_current(lease)
        assert slots.active_count == 0
