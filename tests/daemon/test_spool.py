"""JobSpool durability, cancel markers, and the single-instance lock."""

import subprocess
import sys

import pytest

from repro.daemon import JobSpool, SpoolLock
from repro.errors import DaemonError, ServiceError
from repro.service.events import EventLog


@pytest.fixture
def spool(tmp_path):
    return JobSpool(tmp_path / "spool")


class TestSubmit:
    def test_assigns_sequential_ids(self, spool):
        first = spool.submit("A")
        second = spool.submit("B", num_units=2)
        assert (first.seq, first.job_id) == (1, "sub-000001")
        assert (second.seq, second.job_id) == (2, "sub-000002")
        assert [r.job_id for r in spool.jobs()] == [
            "sub-000001", "sub-000002"
        ]

    def test_explicit_ids_must_be_unique(self, spool):
        spool.submit("A", job_id="mine")
        with pytest.raises(DaemonError, match="already spooled"):
            spool.submit("B", job_id="mine")

    def test_validates_through_the_job_constructor(self, spool):
        with pytest.raises(ServiceError, match="num_units"):
            spool.submit("A", num_units=0)
        assert spool.jobs() == []

    def test_records_survive_reopening(self, spool):
        spool.submit("A", duration_epochs=3, qos_target=1.25)
        reopened = JobSpool(spool.root)
        record = reopened.status("sub-000001")
        assert record.duration_epochs == 3
        assert record.qos_target == 1.25
        assert record.status == "submitted"

    def test_unknown_job_raises(self, spool):
        with pytest.raises(DaemonError, match="no spooled job"):
            spool.status("ghost")


class TestDraining:
    def test_drained_arrival_epochs_are_persisted(self, spool):
        spool.submit("A")
        drained = spool.drain_submissions(3)
        assert [job.arrival_epoch for job in drained] == [3]
        # A crashed daemon rebuilding epoch 3 sees the same arrivals.
        rebuilt = JobSpool(spool.root).arrivals_for(3)
        assert [job.job_id for job in rebuilt] == ["sub-000001"]
        assert spool.drain_submissions(4) == []

    def test_cancel_before_arrival_never_enters_the_service(self, spool):
        spool.submit("A")
        spool.request_cancel("sub-000001")
        assert spool.drain_submissions(0) == []
        record = spool.status("sub-000001")
        assert record.status == "cancelled"
        assert record.arrival_epoch is None

    def test_cancels_drain_only_for_live_jobs(self, spool):
        spool.submit("A")
        spool.drain_submissions(0)
        spool.request_cancel("sub-000001")
        # Status is still "arrived": the epoch that admits it has not
        # committed, so the cancel waits for the next boundary.
        assert spool.drain_cancels(1) == []
        log = EventLog()
        log.append("admit", 0, job="sub-000001", workload="A")
        spool.apply_events(list(log))
        assert spool.drain_cancels(1) == ["sub-000001"]
        # Persisted: a rebuild of epoch 1 re-issues the same cancel.
        assert JobSpool(spool.root).cancels_for(1) == ["sub-000001"]
        assert spool.drain_cancels(2) == []

    def test_cancel_of_terminal_job_raises(self, spool):
        spool.submit("A")
        spool.drain_submissions(0)
        log = EventLog()
        log.append("admit", 0, job="sub-000001", workload="A")
        log.append("depart", 2, job="sub-000001", workload="A")
        spool.apply_events(list(log))
        with pytest.raises(DaemonError, match="already completed"):
            spool.request_cancel("sub-000001")


class TestApplyEvents:
    def test_folds_lifecycle_and_ignores_stream_jobs(self, spool):
        spool.submit("A")
        spool.submit("B")
        spool.drain_submissions(0)
        log = EventLog()
        log.append("arrival", 0, job="sub-000001", workload="A")
        log.append("admit", 0, job="sub-000001", workload="A")
        log.append("queue", 0, job="sub-000002", reason="no-fit")
        log.append("admit", 0, job="A@e0.0", workload="A")  # stream job
        spool.apply_events(list(log))
        assert spool.status("sub-000001").status == "running"
        assert spool.status("sub-000002").status == "waiting"

    def test_replay_is_idempotent(self, spool):
        spool.submit("A")
        spool.drain_submissions(0)
        log = EventLog()
        log.append("admit", 0, job="sub-000001", workload="A")
        log.append("depart", 3, job="sub-000001", workload="A")
        assert spool.apply_events(list(log)) > 0
        assert spool.apply_events(list(log)) == 0
        assert spool.status("sub-000001").status == "completed"


class TestSpoolLock:
    def test_acquire_is_exclusive_per_spool(self, spool):
        with SpoolLock(spool.lock_path):
            with pytest.raises(DaemonError, match="another daemon \\(pid"):
                SpoolLock(spool.lock_path).acquire()
        # Released: a new daemon may take over.
        with SpoolLock(spool.lock_path):
            pass

    def test_stale_lock_of_a_dead_process_is_recovered(self, spool):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        spool.lock_path.write_text(f"{child.pid}\n", encoding="ascii")
        lock = SpoolLock(spool.lock_path)
        lock.acquire()
        assert lock.held
        lock.release()

    def test_torn_pidfile_is_recovered(self, spool):
        spool.lock_path.write_text("12", encoding="ascii")
        spool.lock_path.write_text("", encoding="ascii")
        lock = SpoolLock(spool.lock_path)
        lock.acquire()
        assert lock.held
        lock.release()
        assert not spool.lock_path.exists()
