"""Session fixtures for the daemon tests (profiled once, shared)."""

import pytest

from repro.core.builder import build_model
from tests.daemon._helpers import (
    EPOCHS,
    day_bytes,
    make_flat_service,
    make_runner,
)


@pytest.fixture(scope="session")
def model():
    runner = make_runner()
    report = build_model(
        runner, ["A", "B"], policy_samples=4, seed=31, span=4
    )
    return report.model


@pytest.fixture(scope="session")
def flat_day(model):
    """The uninterrupted flat day every daemon run must reproduce."""
    service = make_flat_service(model)
    service.run(EPOCHS)
    return day_bytes(service)
