"""Shared builders for the daemon test suite.

Everything runs on the synthetic two-workload environment the service
recovery tests use: a quiet 4-node runner, a model profiled once per
session, and a seeded 6-epoch traffic day whose flat
:class:`~repro.service.loop.ConsolidationService` rendering is the
byte-identity reference every daemon configuration must reproduce.
"""

from __future__ import annotations

from repro.placement.annealing import AnnealingSchedule
from repro.daemon import ConsolidationDaemon, ServiceBlueprint
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from tests._synthetic import quiet_runner, synthetic_factory

SEED = 4
EPOCHS = 6
FAST_SCHEDULE = AnnealingSchedule(iterations=150, restarts=1)


def make_runner():
    """A fresh quiet synthetic runner (one per pure execution)."""
    return quiet_runner(num_nodes=4, factory=synthetic_factory())


def make_config():
    return ServiceConfig(schedule=FAST_SCHEDULE)


def make_stream(seed: int = SEED) -> WorkloadStream:
    return WorkloadStream(
        StreamConfig(workloads=("A", "B"), arrival_rate=1.2), seed=seed
    )


def make_blueprint(model) -> ServiceBlueprint:
    return ServiceBlueprint(
        make_runner, model, config=make_config(), seed=SEED
    )


def make_daemon(spool, model, **kwargs) -> ConsolidationDaemon:
    kwargs.setdefault("stream", make_stream())
    stream = kwargs.pop("stream")
    return ConsolidationDaemon(
        str(spool), make_blueprint(model), stream, **kwargs
    )


def make_flat_service(model, seed: int = SEED) -> ConsolidationService:
    return ConsolidationService(
        make_runner(), model, make_stream(seed),
        config=make_config(), seed=seed,
    )


def day_bytes(holder):
    """The determinism contract's view: (event JSONL, snapshot dicts)."""
    return (
        holder.log.to_jsonl(),
        [snapshot.to_dict() for snapshot in holder.snapshots],
    )


class ScriptedFaults:
    """Duck-typed fault plan wedging/crashing exact (epoch, attempt)s."""

    def __init__(self, crashes=(), wedges=()):
        self.crashes = set(crashes)
        self.wedges = set(wedges)

    def worker_crashes(self, epoch: int, attempt: int) -> bool:
        return (epoch, attempt) in self.crashes

    def lease_expires(self, epoch: int, attempt: int) -> bool:
        return (epoch, attempt) in self.wedges
