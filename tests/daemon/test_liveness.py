"""Lease liveness: stragglers renew, orphans requeue, nothing runs twice."""

import pytest

from repro.errors import DaemonError
from repro.faults import FaultConfig, FaultPlan
from tests.daemon._helpers import (
    EPOCHS,
    ScriptedFaults,
    day_bytes,
    make_daemon,
)


class TestStraggler:
    def test_slow_workers_renew_instead_of_being_reaped(
        self, tmp_path, model, flat_day
    ):
        # Execution takes three lease lifetimes; per-tick renewal must
        # carry the worker through without the reaper stealing the work.
        daemon = make_daemon(
            tmp_path / "spool", model,
            workers=2, exec_ticks=9, lease_ticks=3,
        )
        daemon.run(EPOCHS)
        assert daemon.stats["reaps"] == 0
        assert daemon.stats["requeues"] == 0
        assert daemon.stats["claims"] == EPOCHS
        assert day_bytes(daemon) == flat_day


class TestExpiryRequeue:
    def test_every_first_attempt_wedges_yet_nothing_runs_twice(
        self, tmp_path, model, flat_day
    ):
        faults = ScriptedFaults(
            wedges=[(epoch, 0) for epoch in range(EPOCHS)]
        )
        daemon = make_daemon(
            tmp_path / "spool", model, workers=2, faults=faults
        )
        daemon.run(EPOCHS)
        stats = daemon.stats
        # Each epoch: attempt 0 wedges, is reaped and requeued, attempt 1
        # commits; the late wedged completion is fenced, never committed.
        # (The final epoch's wedged attempt may still be mid-flight when
        # the day ends, so its stale completion never surfaces.)
        assert stats["requeues"] == EPOCHS
        assert EPOCHS - 1 <= stats["stale_commits"] <= EPOCHS
        assert stats["commits"] == EPOCHS
        assert day_bytes(daemon) == flat_day

    def test_every_first_attempt_crashes_yet_the_day_completes(
        self, tmp_path, model, flat_day
    ):
        faults = ScriptedFaults(
            crashes=[(epoch, 0) for epoch in range(EPOCHS)]
        )
        daemon = make_daemon(
            tmp_path / "spool", model, workers=2, faults=faults
        )
        daemon.run(EPOCHS)
        stats = daemon.stats
        assert stats["worker_crashes"] == EPOCHS
        assert stats["respawns"] == EPOCHS
        assert stats["requeues"] == EPOCHS
        # A crashed worker never produces a completion, so nothing is
        # ever fenced — the retry is the only execution that finishes.
        assert stats["stale_commits"] == 0
        assert stats["commits"] == EPOCHS
        assert day_bytes(daemon) == flat_day


class TestLivenessBound:
    def test_perpetual_expiry_raises_instead_of_spinning(
        self, tmp_path, model
    ):
        plan = FaultPlan(FaultConfig(seed=3, lease_expiry_rate=1.0))
        daemon = make_daemon(
            tmp_path / "spool", model,
            workers=2, faults=plan, max_ticks_per_epoch=40,
        )
        with pytest.raises(DaemonError, match="no progress"):
            daemon.run(1)


class TestFaultyResume:
    def test_resume_under_faults_is_byte_identical(
        self, tmp_path, model, flat_day
    ):
        plan = FaultPlan(FaultConfig(
            seed=11, worker_crash_rate=0.5, lease_expiry_rate=0.5
        ))
        spool = tmp_path / "spool"
        make_daemon(spool, model, workers=3, faults=plan).run(2)
        resumed = make_daemon(spool, model, workers=3, faults=plan)
        resumed.run(EPOCHS)
        assert day_bytes(resumed) == flat_day
