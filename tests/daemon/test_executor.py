"""Pure epoch execution and the deterministic executor pool."""

import json

import pytest

from repro.core.online import OnlineModel
from repro.daemon import (
    EpochTask,
    ExecutorPool,
    LogicalClock,
    ServiceBlueprint,
    SlotManager,
    execute_epoch,
)
from repro.errors import DaemonError
from repro.service.checkpoint import ServiceCheckpoint
from tests.daemon._helpers import (
    ScriptedFaults,
    make_blueprint,
    make_flat_service,
    make_runner,
    make_stream,
)


class TestBlueprint:
    def test_rejects_an_online_model(self, model):
        with pytest.raises(DaemonError, match="base profiled model"):
            ServiceBlueprint(make_runner, OnlineModel(model))

    def test_initial_checkpoint_is_the_pristine_boundary(self, model):
        checkpoint = make_blueprint(model).initial_checkpoint()
        assert checkpoint.epoch == 0
        assert checkpoint.log_length == 0
        assert checkpoint.tenants == []


class TestExecuteEpoch:
    @pytest.fixture(scope="class")
    def boundary(self, model):
        """A mid-day boundary with history: 3 flat epochs."""
        service = make_flat_service(model)
        service.run(3)
        return service.checkpoint()

    def _task(self, boundary):
        return EpochTask(
            epoch=boundary.epoch,
            arrivals=tuple(make_stream().arrivals(boundary.epoch)),
        )

    def test_is_pure(self, model, boundary):
        blueprint = make_blueprint(model)
        # Round-trip the checkpoint through JSON, as the daemon does.
        restored = ServiceCheckpoint.from_dict(
            json.loads(json.dumps(boundary.to_dict()))
        )
        first = execute_epoch(blueprint, boundary, self._task(boundary))
        second = execute_epoch(blueprint, restored, self._task(boundary))
        assert [e.to_json() for e in first.events] == [
            e.to_json() for e in second.events
        ]
        assert first.snapshot.to_dict() == second.snapshot.to_dict()
        assert first.checkpoint.to_dict() == second.checkpoint.to_dict()

    def test_events_are_globally_numbered(self, model, boundary):
        outcome = execute_epoch(
            make_blueprint(model), boundary, self._task(boundary)
        )
        assert outcome.events[0].seq == boundary.log_length
        assert outcome.checkpoint.log_length == (
            boundary.log_length + len(outcome.events)
        )
        assert outcome.checkpoint.epoch == boundary.epoch + 1

    def test_rejects_an_out_of_phase_task(self, model, boundary):
        with pytest.raises(DaemonError, match="boundary"):
            execute_epoch(
                make_blueprint(model),
                boundary,
                EpochTask(epoch=boundary.epoch + 1),
            )


def make_pool(workers=2, *, faults=None, exec_ticks=2, lease_ticks=4):
    clock = LogicalClock()
    slots = SlotManager(lease_ticks=lease_ticks, clock=clock)
    pool = ExecutorPool(
        workers, slots, faults=faults, exec_ticks=exec_ticks
    )
    return clock, slots, pool


class TestExecutorPool:
    def test_needs_at_least_one_worker(self):
        clock = LogicalClock()
        with pytest.raises(DaemonError, match="at least one worker"):
            ExecutorPool(0, SlotManager(clock=clock))

    def test_healthy_claim_completes_after_exec_ticks(self):
        clock, slots, pool = make_pool(exec_ticks=3)
        task = EpochTask(epoch=0)
        lease = pool.dispatch(task)
        assert lease is not None and lease.worker_id == 0
        done = []
        for _ in range(3):
            assert not done
            clock.tick()
            done = [ex for ex in pool.advance() if ex.task is task]
        assert done and slots.is_current(done[0].lease)
        assert pool.idle_count == 2

    def test_all_busy_returns_none(self):
        _, _, pool = make_pool(workers=1)
        assert pool.dispatch(EpochTask(epoch=0)) is not None
        assert pool.dispatch(EpochTask(epoch=0, attempt=1)) is None

    def test_crashed_worker_is_replaced_and_task_orphaned(self):
        clock, slots, pool = make_pool(
            workers=1, faults=ScriptedFaults(crashes=[(0, 0)]),
            lease_ticks=2,
        )
        task = EpochTask(epoch=0)
        lease = pool.dispatch(task)
        clock.tick()
        assert pool.advance() == []  # the worker dies instead
        assert pool.stats["worker_crashes"] == 1
        assert pool.stats["respawns"] == 1
        assert pool.idle_count == 1  # replacement worker
        clock.tick()
        reaped = slots.reap_expired()
        assert [l.token for l in reaped] == [lease.token]
        assert pool.task_of_reaped(reaped[0]) is task
        # The orphan is handed back exactly once.
        assert pool.task_of_reaped(reaped[0]) is None

    def test_wedged_worker_finishes_late_under_a_stale_lease(self):
        clock, slots, pool = make_pool(
            workers=1, faults=ScriptedFaults(wedges=[(0, 0)]),
            exec_ticks=2, lease_ticks=2,
        )
        task = EpochTask(epoch=0)
        lease = pool.dispatch(task)
        done = []
        while not done:
            clock.tick()
            for reaped in slots.reap_expired():
                # The reaper can still identify the wedged task...
                assert pool.task_of_reaped(reaped) is task
            done = pool.advance()
        # ...and the eventual completion is fenced by its stale token.
        assert done[0].lease.token == lease.token
        assert not slots.is_current(done[0].lease)
        assert pool.stats["wedges"] == 1
        assert pool.idle_count == 1  # the worker recovers afterwards
