"""Tests for the process fan-out primitive."""

import os

import pytest

from repro.parallel import (
    MAX_WORKERS_ENV,
    default_max_workers,
    fan_out,
    resolve_workers,
)


def square(x):
    return x * x


_WORKER_STATE = {}


def remember(value):
    _WORKER_STATE["value"] = value


def read_state(_):
    return _WORKER_STATE.get("value")


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_is_serial(self):
        assert resolve_workers(0) == 1

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_uses_default(self):
        assert resolve_workers(-1) == default_max_workers()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "7")
        assert default_max_workers() == 7

    def test_env_ignored_when_invalid(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "zero")
        assert default_max_workers() == max(1, os.cpu_count() or 1)


class TestFanOut:
    def test_serial_matches_map(self):
        items = list(range(10))
        assert fan_out(square, items, max_workers=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        serial = fan_out(square, items, max_workers=1)
        parallel = fan_out(square, items, max_workers=2)
        assert parallel == serial

    def test_empty_batch(self):
        assert fan_out(square, [], max_workers=4) == []

    def test_single_item_runs_serially(self):
        assert fan_out(square, [5], max_workers=4) == [25]

    def test_unpicklable_items_fall_back_to_serial(self):
        items = [lambda: 1, lambda: 2]  # lambdas cannot cross processes
        results = fan_out(lambda f: f(), items, max_workers=2)
        assert results == [1, 2]

    def test_initializer_runs_on_serial_path(self):
        _WORKER_STATE.clear()
        results = fan_out(
            read_state, [0], max_workers=4, initializer=remember, initargs=(42,)
        )
        assert results == [42]

    def test_initializer_runs_in_workers(self):
        _WORKER_STATE.clear()
        results = fan_out(
            read_state,
            list(range(6)),
            max_workers=2,
            initializer=remember,
            initargs=(7,),
        )
        assert results == [7] * 6
