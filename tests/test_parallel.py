"""Tests for the process fan-out primitive."""

import os

import pytest

from repro.parallel import (
    MAX_WORKERS_ENV,
    default_max_workers,
    fan_out,
    resolve_workers,
)


def square(x):
    return x * x


def square_or_die(payload):
    """Kill the hosting pool worker when asked; compute otherwise.

    ``payload`` is ``(value, die, parent_pid)`` — in the parent process
    (serial recovery) the die flag is ignored, so the recovered batch
    result is identical to an undisturbed run.
    """
    value, die, parent_pid = payload
    if die and os.getpid() != parent_pid:
        os._exit(1)
    return value * value


_WORKER_STATE = {}


def remember(value):
    _WORKER_STATE["value"] = value


def read_state(_):
    return _WORKER_STATE.get("value")


def _read_state_or_die(payload):
    index, die, parent_pid = payload
    if die and os.getpid() != parent_pid:
        os._exit(1)
    return _WORKER_STATE.get("value")


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_is_serial(self):
        assert resolve_workers(0) == 1

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_uses_default(self):
        assert resolve_workers(-1) == default_max_workers()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "7")
        assert default_max_workers() == 7

    def test_env_ignored_when_invalid(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "zero")
        assert default_max_workers() == max(1, os.cpu_count() or 1)


class TestFanOut:
    def test_serial_matches_map(self):
        items = list(range(10))
        assert fan_out(square, items, max_workers=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        serial = fan_out(square, items, max_workers=1)
        parallel = fan_out(square, items, max_workers=2)
        assert parallel == serial

    def test_empty_batch(self):
        assert fan_out(square, [], max_workers=4) == []

    def test_single_item_runs_serially(self):
        assert fan_out(square, [5], max_workers=4) == [25]

    def test_unpicklable_items_fall_back_to_serial(self):
        items = [lambda: 1, lambda: 2]  # lambdas cannot cross processes
        results = fan_out(lambda f: f(), items, max_workers=2)
        assert results == [1, 2]

    def test_initializer_runs_on_serial_path(self):
        _WORKER_STATE.clear()
        results = fan_out(
            read_state, [0], max_workers=4, initializer=remember, initargs=(42,)
        )
        assert results == [42]

    def test_initializer_runs_in_workers(self):
        _WORKER_STATE.clear()
        results = fan_out(
            read_state,
            list(range(6)),
            max_workers=2,
            initializer=remember,
            initargs=(7,),
        )
        assert results == [7] * 6


class TestBrokenPoolRecovery:
    """A worker dying mid-batch must not lose the batch."""

    def test_killed_worker_recovers_to_serial_result(self):
        from repro.obs import recording

        parent_pid = os.getpid()
        items = [(value, value == 7, parent_pid) for value in range(16)]
        with recording() as rec:
            results = fan_out(square_or_die, items, max_workers=2)
        assert results == [value * value for value in range(16)]
        assert rec.counters.get("fault.pool_failure") == 1
        # At least the doomed item had to be recovered serially.
        assert rec.counters.get("retry.pool_serial_items", 0) >= 1

    def test_recovery_reruns_initializer_in_parent(self):
        _WORKER_STATE.clear()
        parent_pid = os.getpid()
        items = [(index, index == 0, parent_pid) for index in range(6)]

        results = fan_out(
            _read_state_or_die,
            items,
            max_workers=2,
            initializer=remember,
            initargs=(9,),
        )
        assert results == [9] * 6
