"""Tests for deterministic fault plans."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import FAULT_FAMILIES, FaultConfig, FaultPlan


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan(FaultConfig())
        assert not plan.enabled
        assert not plan.crashes(("a",), 0)
        assert plan.straggler(("a",), 0) == 1.0
        assert plan.outlier(("a",), 0) == 1.0
        assert not plan.pool_fails(("a",))

    @pytest.mark.parametrize("field", [
        "crash_rate", "straggler_rate", "outlier_rate", "pool_failure_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(FaultError):
            FaultConfig(**{field: -0.1})
        with pytest.raises(FaultError):
            FaultConfig(**{field: 1.5})

    def test_straggler_factor_must_slow_down(self):
        with pytest.raises(FaultError):
            FaultConfig(straggler_factor=0.9)

    def test_outlier_factor_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultConfig(outlier_factor=0.0)


class TestDeterminism:
    def test_decisions_are_pure_functions_of_labels(self):
        a = FaultPlan.chaos(seed=7)
        b = FaultPlan.chaos(seed=7)
        labels = [("measure", "app", rep) for rep in range(50)]
        assert [a.crashes(l, 0) for l in labels] == [
            b.crashes(l, 0) for l in labels
        ]
        assert [a.straggler(l, 1) for l in labels] == [
            b.straggler(l, 1) for l in labels
        ]
        assert [a.outlier(l, 0) for l in labels] == [
            b.outlier(l, 0) for l in labels
        ]

    def test_decisions_independent_of_query_order(self):
        plan = FaultPlan.chaos(seed=3)
        first = plan.crashes(("x",), 0)
        # Interleave unrelated queries; the original decision must hold.
        for rep in range(20):
            plan.crashes(("y", rep), 0)
            plan.straggler(("z", rep), 0)
        assert plan.crashes(("x",), 0) == first

    def test_families_draw_independent_streams(self):
        # Zeroing one family's rate must not change another family's
        # decisions: each family derives its own stream.
        full = FaultPlan.chaos(seed=11)
        crash_only = FaultPlan(FaultConfig(seed=11, crash_rate=0.15))
        labels = [("m", rep) for rep in range(100)]
        assert [full.crashes(l, 0) for l in labels] == [
            crash_only.crashes(l, 0) for l in labels
        ]

    def test_different_seeds_differ(self):
        a, b = FaultPlan.chaos(seed=1), FaultPlan.chaos(seed=2)
        labels = [("m", rep) for rep in range(200)]
        assert [a.crashes(l, 0) for l in labels] != [
            b.crashes(l, 0) for l in labels
        ]

    def test_with_seed_keeps_rates(self):
        reseeded = FaultPlan.chaos(seed=1, scale=0.5).with_seed(9)
        assert reseeded.config.seed == 9
        assert reseeded.config.crash_rate == pytest.approx(0.075)

    def test_rates_are_hit_in_the_long_run(self):
        plan = FaultPlan(FaultConfig(seed=0, crash_rate=0.25))
        crashes = sum(
            plan.crashes(("m", rep), 0) for rep in range(2000)
        )
        assert 0.2 < crashes / 2000 < 0.3

    def test_pool_victim_in_range_and_stable(self):
        plan = FaultPlan.chaos(seed=5)
        victim = plan.pool_victim(("fanout", 1), 8)
        assert 0 <= victim < 8
        assert plan.pool_victim(("fanout", 1), 8) == victim
        with pytest.raises(FaultError):
            plan.pool_victim(("fanout", 1), 0)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan.chaos(seed=42, scale=0.5)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.config == plan.config
        assert loaded.signature() == plan.signature()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultError, match="crash_rat"):
            FaultPlan.from_dict({"crash_rat": 0.5})

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{torn")
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.load(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(FaultError, match="JSON object"):
            FaultPlan.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read"):
            FaultPlan.load(tmp_path / "absent.json")

    def test_signature_distinguishes_plans(self):
        assert (
            FaultPlan.chaos(seed=1).signature()
            != FaultPlan.chaos(seed=2).signature()
        )
        assert (
            FaultPlan.chaos(seed=1).signature()
            != FaultPlan.chaos(seed=1, scale=2.0).signature()
        )

    def test_chaos_rejects_negative_scale(self):
        with pytest.raises(FaultError):
            FaultPlan.chaos(scale=-1.0)

    def test_families_constant_is_exhaustive(self):
        assert FAULT_FAMILIES == (
            "crash", "straggler", "outlier", "pool", "worker", "lease",
            "preempt",
        )


class TestDaemonFamilies:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan(FaultConfig())
        assert not plan.worker_crashes(0, 0)
        assert not plan.lease_expires(0, 0)

    @pytest.mark.parametrize("field", [
        "worker_crash_rate", "lease_expiry_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(FaultError):
            FaultConfig(**{field: -0.1})
        with pytest.raises(FaultError):
            FaultConfig(**{field: 1.5})

    def test_either_rate_enables_the_plan(self):
        assert FaultPlan(FaultConfig(worker_crash_rate=0.1)).enabled
        assert FaultPlan(FaultConfig(lease_expiry_rate=0.1)).enabled

    def test_decisions_are_pure_functions_of_epoch_and_attempt(self):
        a = FaultPlan(FaultConfig(
            seed=7, worker_crash_rate=0.4, lease_expiry_rate=0.4
        ))
        b = FaultPlan(FaultConfig(
            seed=7, worker_crash_rate=0.4, lease_expiry_rate=0.4
        ))
        draws = [(e, att) for e in range(20) for att in range(3)]
        assert [a.worker_crashes(e, att) for e, att in draws] == [
            b.worker_crashes(e, att) for e, att in draws
        ]
        assert [a.lease_expires(e, att) for e, att in draws] == [
            b.lease_expires(e, att) for e, att in draws
        ]

    def test_daemon_draws_leave_measurement_families_untouched(self):
        # Adding daemon fault rates to a plan must not perturb the
        # measurement-path decisions: the byte-identity contract relies
        # on worker/lease deriving their own streams.
        quiet = FaultPlan(FaultConfig(seed=11, crash_rate=0.15))
        noisy = FaultPlan(FaultConfig(
            seed=11, crash_rate=0.15,
            worker_crash_rate=0.9, lease_expiry_rate=0.9,
        ))
        labels = [("m", rep) for rep in range(100)]
        assert [quiet.crashes(l, 0) for l in labels] == [
            noisy.crashes(l, 0) for l in labels
        ]
        assert [quiet.straggler(l, 0) for l in labels] == [
            noisy.straggler(l, 0) for l in labels
        ]

    def test_rates_are_hit_in_the_long_run(self):
        plan = FaultPlan(FaultConfig(seed=0, worker_crash_rate=0.25))
        crashed = sum(
            plan.worker_crashes(epoch, 0) for epoch in range(2000)
        )
        assert 0.2 < crashed / 2000 < 0.3

    def test_signature_covers_daemon_rates(self):
        base = FaultPlan(FaultConfig(seed=1))
        assert (
            base.signature()
            != FaultPlan(FaultConfig(seed=1, worker_crash_rate=0.1)).signature()
        )
        assert (
            base.signature()
            != FaultPlan(FaultConfig(seed=1, lease_expiry_rate=0.1)).signature()
        )

    def test_round_trip_preserves_daemon_rates(self, tmp_path):
        plan = FaultPlan(FaultConfig(
            seed=42, worker_crash_rate=0.2, lease_expiry_rate=0.3
        ))
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.config == plan.config
        assert loaded.config.worker_crash_rate == 0.2
        assert loaded.config.lease_expiry_rate == 0.3
