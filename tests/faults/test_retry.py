"""Tests for retry policies and the retrying measurement path."""

import pytest

from repro.errors import FaultError, MeasurementFault
from repro.faults import FaultConfig, FaultPlan, RetryPolicy, attempt_reading
from repro.obs import recording


class TestRetryPolicy:
    def test_backoff_is_geometric(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.20)

    def test_total_backoff_sums_retries(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0)
        assert policy.total_backoff(3) == pytest.approx(0.05 + 0.10 + 0.20)
        assert policy.total_backoff(0) == 0.0

    def test_backoff_index_is_one_based(self):
        with pytest.raises(FaultError):
            RetryPolicy().backoff(0)

    def test_times_out(self):
        assert RetryPolicy(reading_timeout=5.0).times_out(5.1)
        assert not RetryPolicy(reading_timeout=5.0).times_out(5.0)
        assert not RetryPolicy().times_out(1e9)  # disabled by default

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"reading_timeout": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)


def _crashy_plan(rate, **kwargs):
    return FaultPlan(FaultConfig(seed=0, crash_rate=rate, **kwargs))


class TestAttemptReading:
    def test_clean_plan_returns_simulation(self):
        value = attempt_reading(
            FaultPlan.none(), RetryPolicy(), ("m", 0), lambda: 3.5
        )
        assert value == 3.5

    def test_crash_retries_then_recovers(self):
        # Find a label whose first attempt crashes but a later one
        # survives; the reading must come back clean with recovery
        # accounted.
        plan = _crashy_plan(0.5)
        policy = RetryPolicy(max_attempts=6)
        label = next(
            ("m", rep) for rep in range(100)
            if plan.crashes(("m", rep), 0)
            and any(not plan.crashes(("m", rep), a) for a in range(1, 6))
        )
        with recording() as rec:
            value = attempt_reading(plan, policy, label, lambda: 4.0)
        assert value == 4.0
        assert rec.counters["fault.crash"] >= 1
        assert rec.counters["retry.attempts"] == rec.counters["fault.crash"]
        assert rec.counters["retry.recovered"] == 1
        assert rec.counters["retry.backoff_sim"] > 0

    def test_exhaustion_raises_with_workload(self):
        plan = _crashy_plan(1.0)
        policy = RetryPolicy(max_attempts=3)
        with recording() as rec:
            with pytest.raises(MeasurementFault) as excinfo:
                attempt_reading(
                    plan, policy, ("m",), lambda: 1.0, workload="app"
                )
        assert excinfo.value.workload == "app"
        assert rec.counters["fault.exhausted"] == 1
        assert rec.counters["retry.attempts"] == 3
        assert rec.counters["fault.crash"] == 3

    def test_crashed_attempt_never_simulates(self):
        plan = _crashy_plan(1.0)
        calls = []
        with pytest.raises(MeasurementFault):
            attempt_reading(
                plan, RetryPolicy(max_attempts=2), ("m",),
                lambda: calls.append(1) or 1.0,
            )
        assert calls == []

    def test_perturbation_applies_stragglers_and_outliers(self):
        plan = FaultPlan(FaultConfig(
            seed=0, straggler_rate=1.0, straggler_factor=1.5,
            outlier_rate=1.0, outlier_factor=25.0,
        ))
        with recording() as rec:
            value = attempt_reading(plan, RetryPolicy(), ("m",), lambda: 2.0)
        assert value == pytest.approx(2.0 * 1.5 * 25.0)
        assert rec.counters["fault.straggler"] == 1
        assert rec.counters["fault.outlier"] == 1

    def test_perturb_false_believes_completed_readings(self):
        plan = FaultPlan(FaultConfig(
            seed=0, straggler_rate=1.0, outlier_rate=1.0,
        ))
        with recording() as rec:
            value = attempt_reading(
                plan, RetryPolicy(), ("m",), lambda: 2.0, perturb=False
            )
        assert value == 2.0
        assert "fault.straggler" not in rec.counters
        assert "fault.outlier" not in rec.counters

    def test_timeout_discards_slow_readings(self):
        # No crashes; every reading exceeds the timeout, so the budget
        # exhausts on timeouts alone.
        plan = FaultPlan(FaultConfig(seed=0, straggler_rate=1.0))
        policy = RetryPolicy(max_attempts=2, reading_timeout=1.0)
        with recording() as rec:
            with pytest.raises(MeasurementFault):
                attempt_reading(plan, policy, ("m",), lambda: 2.0)
        assert rec.counters["fault.timeout"] == 2

    def test_dict_readings_do_not_time_out(self):
        plan = FaultPlan(FaultConfig(seed=0, straggler_rate=1.0))
        policy = RetryPolicy(reading_timeout=0.5)
        value = attempt_reading(
            plan, policy, ("m",), lambda: {"a": 9.0}, perturb=False
        )
        assert value == {"a": 9.0}

    def test_retry_spans_charge_simulated_backoff(self):
        plan = _crashy_plan(1.0)
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.05, backoff_factor=2.0
        )
        with recording() as rec:
            with pytest.raises(MeasurementFault):
                attempt_reading(plan, policy, ("m",), lambda: 1.0)
        spans = rec.spans_named("retry.attempt")
        assert [s.sim_elapsed for s in spans] == pytest.approx(
            [0.05, 0.10, 0.20]
        )
        assert rec.counters["retry.backoff_sim"] == pytest.approx(0.35)
