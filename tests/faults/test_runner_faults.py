"""Tests for fault injection on the measurement oracle (ClusterRunner)."""

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.core.profiling.plan import (
    FALLBACK_FLOOR,
    MeasurementOracle,
    OUTLIER_BOUND,
    REPROBE_K,
)
from repro.errors import MeasurementFault
from repro.faults import FaultConfig, FaultPlan, RetryPolicy
from repro.obs import recording
from repro.sim.runner import ClusterRunner, MeasurementRequest
from tests._synthetic import QUIET_NOISE, quiet_runner, synthetic_factory


def faulty_runner(plan, *, retry=None, base_seed=1):
    return ClusterRunner(
        ClusterSpec(num_nodes=4, cores_per_node=16),
        noise=QUIET_NOISE,
        base_seed=base_seed,
        workload_factory=synthetic_factory(),
        faults=plan,
        retry=retry,
    )


def measure_all(runner):
    return {
        "solo": runner.solo_time("app"),
        "hom": runner.measure("app", 8.0, 2),
        "het": runner.measure_heterogeneous("app", {0: 4.0, 2: 8.0}),
        "corun": runner.corun_pair("app", "other"),
        "deploy": runner.run_deployments(
            [("a", "app", {0: 0, 1: 1}), ("b", "other", {0: 2, 1: 3})]
        ),
    }


class TestCleanPath:
    def test_no_plan_is_inactive(self):
        assert not quiet_runner().faults_active

    def test_all_zero_plan_is_inactive_and_free(self):
        clean = quiet_runner(factory=synthetic_factory())
        nulled = faulty_runner(FaultPlan.none())
        assert not nulled.faults_active
        with recording() as rec:
            values = measure_all(nulled)
        assert values == measure_all(clean)
        # The clean path records no fault activity whatsoever.
        assert not any(
            name.startswith(("fault.", "retry.")) for name in rec.counters
        )

    def test_null_plan_keeps_the_fingerprint(self):
        # An all-zero plan must replay the same cache entries as no
        # plan at all.
        assert (
            faulty_runner(FaultPlan.none())._environment_fingerprint()
            == quiet_runner()._environment_fingerprint()
        )

    def test_active_plan_namespaces_the_fingerprint(self):
        clean = quiet_runner()
        chaotic = faulty_runner(FaultPlan.chaos(seed=0))
        other = faulty_runner(FaultPlan.chaos(seed=1))
        assert chaotic._environment_fingerprint() != clean._environment_fingerprint()
        assert chaotic._environment_fingerprint() != other._environment_fingerprint()


class TestCrashRetries:
    def test_crash_only_faults_never_change_values(self):
        # Crashes kill attempts, not values: a retried reading
        # re-simulates the same deterministic run, so every measurement
        # matches the clean runner exactly.
        clean = quiet_runner(factory=synthetic_factory())
        crashy = faulty_runner(FaultPlan(FaultConfig(seed=0, crash_rate=0.3)))
        with recording() as rec:
            values = measure_all(crashy)
        assert values == measure_all(clean)
        assert rec.counters["fault.crash"] >= 1
        assert rec.counters["retry.recovered"] >= 1
        assert crashy.measurement_count == clean.measurement_count
        assert not crashy.faulted_workloads

    def test_faulty_runs_replay_byte_stable(self):
        plan = FaultPlan.chaos(seed=7)
        with recording() as first:
            a = measure_all(faulty_runner(plan))
        with recording() as second:
            b = measure_all(faulty_runner(plan))
        assert a == b
        assert first.counters == second.counters
        assert len(first.spans) == len(second.spans)

    def test_exhaustion_marks_workloads_degraded(self):
        doomed = faulty_runner(
            FaultPlan(FaultConfig(seed=0, crash_rate=1.0)),
            retry=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(MeasurementFault) as excinfo:
            doomed.corun_pair("app", "other")
        assert excinfo.value.workload == "app,other"
        assert doomed.faulted_workloads == {"app", "other"}


class TestPerturbation:
    def test_stragglers_inflate_probe_readings_only(self):
        clean = quiet_runner(factory=synthetic_factory())
        slowed = faulty_runner(FaultPlan(FaultConfig(
            seed=0, straggler_rate=1.0, straggler_factor=1.5,
        )))
        assert slowed.measure_heterogeneous_time(
            "app", {0: 8.0}
        ) == pytest.approx(
            1.5 * clean.measure_heterogeneous_time("app", {0: 8.0})
        )
        # Solo baselines and ground-truth co-runs are crash-retry-only.
        assert slowed.solo_time("app") == clean.solo_time("app")
        assert slowed.corun_pair("app", "other") == clean.corun_pair(
            "app", "other"
        )
        assert slowed.run_deployments(
            [("a", "app", {0: 0, 1: 1})]
        ) == clean.run_deployments([("a", "app", {0: 0, 1: 1})])

    def test_outliers_multiply_by_the_garbage_factor(self):
        clean = quiet_runner(factory=synthetic_factory())
        noisy = faulty_runner(FaultPlan(FaultConfig(
            seed=0, outlier_rate=1.0, outlier_factor=25.0,
        )))
        assert noisy.measure_heterogeneous_time(
            "app", {0: 8.0}
        ) == pytest.approx(
            25.0 * clean.measure_heterogeneous_time("app", {0: 8.0})
        )


class TestRobustProfiling:
    def test_outlier_detection_reprobes_to_a_clean_median(self):
        plan = FaultPlan(FaultConfig(
            seed=3, outlier_rate=0.35, outlier_factor=25.0,
        ))
        runner = faulty_runner(plan)
        clean = quiet_runner(factory=synthetic_factory())
        clean_oracle = MeasurementOracle(clean, "app")
        oracle = MeasurementOracle(runner, "app")
        recovered = 0
        for step in range(1, 13):
            pressure = float(step)
            with recording() as rec:
                value = oracle.normalized(pressure, 2)
            if rec.counters.get("fault.outlier_detected"):
                # The suspect plus REPROBE_K - 1 repetitions, one
                # probe span each (retry cost lands in Table 3).
                assert len(rec.spans_named("profile.probe")) == REPROBE_K
                assert rec.counters["retry.reprobe"] == REPROBE_K - 1
                if value < OUTLIER_BOUND:
                    recovered += 1
                    assert value == pytest.approx(
                        clean_oracle.normalized(pressure, 2)
                    )
        # At least one outlier was caught and cleaned by the median.
        assert recovered >= 1

    def test_exhausted_probe_falls_back_conservatively(self):
        runner = faulty_runner(
            FaultPlan(FaultConfig(seed=0, crash_rate=1.0)),
            retry=RetryPolicy(max_attempts=1),
        )
        oracle = MeasurementOracle(runner, "app")
        with recording() as rec:
            value = oracle.normalized(8.0, 2)
        assert value == FALLBACK_FLOOR
        assert rec.counters["fault.probe_fallback"] == 1
        assert "app" in runner.faulted_workloads


class TestPoolFaults:
    def test_killed_fanout_batch_matches_serial_results(self):
        requests = [
            MeasurementRequest.measure("app", 8.0, 2),
            MeasurementRequest.measure("app", 4.0, 1),
            MeasurementRequest.solo("other"),
            MeasurementRequest.corun("app", "other"),
        ]
        serial = quiet_runner(factory=synthetic_factory())
        expected = serial.measure_many(requests, max_workers=1)

        lossy = faulty_runner(FaultPlan(FaultConfig(
            seed=0, pool_failure_rate=1.0,
        )))
        with recording() as rec:
            values = lossy.measure_many(requests, max_workers=2)
        assert values == expected
        assert rec.counters["fault.pool_kill"] == 1
        assert rec.counters["fault.pool_failure"] == 1
        assert rec.counters.get("retry.pool_serial_items", 0) >= 1
        # Accounting is replayed exactly despite the recovery.
        assert lossy.measurement_count == serial.measurement_count
        assert lossy.solo_measurement_count == serial.solo_measurement_count
