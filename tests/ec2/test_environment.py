"""Tests for the EC2 validation environment."""

from repro.ec2.environment import (
    EC2_COUNTS,
    EC2_POLICY_SAMPLES,
    EC2_WORKLOADS,
    ec2_cluster_spec,
    ec2_counts,
    make_ec2_runner,
)
from repro.sim.noise import EC2_NOISE


class TestEC2Spec:
    def test_32_instances(self):
        spec = ec2_cluster_spec()
        assert spec.num_nodes == 32
        assert spec.cores_per_node == 8  # c4.2xlarge vCPUs

    def test_pairwise_colocation(self):
        assert ec2_cluster_spec().max_workloads_per_node == 2


class TestEC2Constants:
    def test_figure12_counts(self):
        assert EC2_COUNTS == (0, 1, 2, 4, 8, 16, 24, 32)
        assert ec2_counts()[0] == 0.0

    def test_four_short_workloads(self):
        assert EC2_WORKLOADS == ("M.milc", "M.Gems", "M.zeus", "M.lu")

    def test_hundred_policy_samples(self):
        assert EC2_POLICY_SAMPLES == 100


class TestEC2Runner:
    def test_noise_profile(self):
        runner = make_ec2_runner()
        assert runner.noise is EC2_NOISE
        assert runner.num_nodes == 32

    def test_measurement_has_ambient_noise(self):
        # Normalized EC2 times can land below 1.0 because the solo
        # baseline itself carries tenant noise — the paper's
        # "unmeasured interference" caveat.
        runner = make_ec2_runner()
        value = runner.measure("M.zeus", 1.0, 1)
        assert 0.5 < value < 2.0
