"""Tests for the EC2 validation environment."""

import warnings

import pytest

from repro.providers.ec2 import (
    EC2_COUNTS,
    EC2_NUM_INSTANCES,
    EC2_POLICY_SAMPLES,
    EC2_WORKLOADS,
    EC2Provider,
    ec2_cluster_spec,
    ec2_counts,
    make_ec2_runner,
)
from repro.sim.noise import EC2_NOISE


class TestEC2Spec:
    def test_32_instances(self):
        spec = ec2_cluster_spec()
        assert spec.num_nodes == 32
        assert spec.cores_per_node == 8  # c4.2xlarge vCPUs

    def test_pairwise_colocation(self):
        assert ec2_cluster_spec().max_workloads_per_node == 2


class TestEC2Constants:
    def test_figure12_counts(self):
        assert EC2_COUNTS == (0, 1, 2, 4, 8, 16, 24, 32)
        assert ec2_counts()[0] == 0.0

    def test_four_short_workloads(self):
        assert EC2_WORKLOADS == ("M.milc", "M.Gems", "M.zeus", "M.lu")

    def test_hundred_policy_samples(self):
        assert EC2_POLICY_SAMPLES == 100


class TestEC2Runner:
    def test_noise_profile(self):
        runner = make_ec2_runner()
        assert runner.noise is EC2_NOISE
        assert runner.num_nodes == 32

    def test_measurement_has_ambient_noise(self):
        # Normalized EC2 times can land below 1.0 because the solo
        # baseline itself carries tenant noise — the paper's
        # "unmeasured interference" caveat.
        runner = make_ec2_runner()
        value = runner.measure("M.zeus", 1.0, 1)
        assert 0.5 < value < 2.0


class TestEC2Provider:
    def test_registered_fixed_pool(self):
        from repro.providers import make_provider

        provider = make_provider("ec2")
        assert isinstance(provider, EC2Provider)
        assert not provider.elastic
        assert provider.live_nodes() == list(range(EC2_NUM_INSTANCES))
        assert provider.durable_nodes() == provider.schedulable_nodes()


class TestLegacyShim:
    def test_old_import_path_warns_once(self):
        import repro.ec2.environment as legacy

        legacy._WARNED.discard("ec2_cluster_spec")
        legacy.__dict__.pop("ec2_cluster_spec", None)
        with pytest.warns(DeprecationWarning, match="repro.providers.ec2"):
            spec_fn = legacy.ec2_cluster_spec
        assert spec_fn is ec2_cluster_spec
        # Cached: the second lookup neither warns nor re-resolves.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert legacy.ec2_cluster_spec is ec2_cluster_spec

    def test_package_shim_forwards(self):
        import repro.ec2 as legacy_pkg

        legacy_pkg._WARNED.discard("make_ec2_runner")
        legacy_pkg.__dict__.pop("make_ec2_runner", None)
        with pytest.warns(DeprecationWarning):
            assert legacy_pkg.make_ec2_runner is make_ec2_runner

    def test_unknown_attribute_still_raises(self):
        import repro.ec2.environment as legacy

        with pytest.raises(AttributeError):
            legacy.does_not_exist
