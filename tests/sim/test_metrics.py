"""Tests for trace-derived run metrics."""

import pytest

from repro.errors import SimulationError
from repro.sim.execution import CoRunExecutor, DeployedInstance
from repro.sim.metrics import all_stage_stats, slowdown_breakdown, stage_stats
from repro.sim.trace import ExecutionTrace
from tests._synthetic import QUIET_NOISE, bsp_workload


def traced_run(*instances, seed=0):
    trace = ExecutionTrace()
    CoRunExecutor(list(instances), seed=seed, noise=QUIET_NOISE, trace=trace).run()
    return trace


class TestStageStats:
    def test_solo_stats(self):
        workload = bsp_workload("app", iterations=4, base_time=8.0)
        trace = traced_run(DeployedInstance("app", workload, {0: 0, 1: 1}))
        stats = stage_stats(trace, "app")
        assert stats.stages == 4
        assert stats.total_time == pytest.approx(8.0)
        assert stats.mean_stage_time == pytest.approx(2.0)
        assert stats.stage_time_cv == pytest.approx(0.0, abs=1e-9)
        assert stats.straggler_ratio == pytest.approx(1.0)

    def test_missing_instance(self):
        with pytest.raises(SimulationError):
            stage_stats(ExecutionTrace(), "ghost")

    def test_all_stage_stats(self):
        a = bsp_workload("a", iterations=3)
        b = bsp_workload("b", iterations=5)
        trace = traced_run(
            DeployedInstance("a", a, {0: 0}),
            DeployedInstance("b", b, {0: 1}),
        )
        stats = all_stage_stats(trace)
        assert stats["a"].stages == 3
        assert stats["b"].stages == 5


class TestSlowdownBreakdown:
    def test_uniform_interference(self):
        from repro.apps.bubble import BubbleWorkload

        workload = bsp_workload("t", iterations=4, base_time=8.0, score=0.0)
        solo = traced_run(DeployedInstance("t", workload, {0: 0, 1: 1}))
        trace = ExecutionTrace()
        CoRunExecutor(
            [
                DeployedInstance("t", workload, {0: 0, 1: 1}),
                DeployedInstance("b0", BubbleWorkload(8.0), {0: 0}),
                DeployedInstance("b1", BubbleWorkload(8.0), {0: 1}),
            ],
            seed=0,
            noise=QUIET_NOISE,
            trace=trace,
        ).run()
        ratios = slowdown_breakdown(solo, trace, "t")
        assert len(ratios) == 4
        # LinearSensitivity(2.0) at pressure 8 -> 2x per stage.
        for ratio in ratios:
            assert ratio == pytest.approx(2.0, rel=0.01)

    def test_stage_count_mismatch(self):
        a = bsp_workload("t", iterations=2)
        b = bsp_workload("t", iterations=3)
        trace_a = traced_run(DeployedInstance("t", a, {0: 0}))
        trace_b = traced_run(DeployedInstance("t", b, {0: 0}))
        with pytest.raises(SimulationError, match="mismatch"):
            slowdown_breakdown(trace_a, trace_b, "t")
