"""Tests for the persistent measurement cache."""

import json

import pytest

import repro.sim.runner as runner_module
from repro.sim.cache import MeasurementCache, cache_key
from tests._synthetic import quiet_runner, synthetic_factory


class TestCacheKey:
    def test_embeds_fingerprint_and_labels(self):
        key = cache_key("env", "measure", "app", 0)
        assert key == "env|measure|app|0"

    def test_distinct_labels_distinct_keys(self):
        assert cache_key("env", "a", 1) != cache_key("env", "a", 2)


class TestMeasurementCache:
    def test_miss_then_hit(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache.json")
        assert cache.get("k") is None
        cache.put("k", 1.5)
        assert cache.get("k") == 1.5
        assert cache.misses == 1
        assert cache.hits == 1

    def test_put_does_not_overwrite(self):
        cache = MeasurementCache()
        cache.put("k", 1.0)
        cache.put("k", 2.0)
        assert cache.get("k") == 1.0

    def test_flush_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = MeasurementCache(path)
        cache.put("a", 1.0)
        cache.put("b", {"x": 2.0})
        cache.flush()
        reloaded = MeasurementCache(path)
        assert reloaded.get("a") == 1.0
        assert reloaded.get("b") == {"x": 2.0}

    def test_flush_merges_with_on_disk_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        first = MeasurementCache(path)
        first.put("a", 1.0)
        first.flush()
        second = MeasurementCache(path)
        second.put("b", 2.0)
        # Another writer lands a new entry between load and flush.
        path.write_text(json.dumps({"a": 1.0, "c": 3.0}))
        second.flush()
        final = json.loads(path.read_text())
        assert final == {"a": 1.0, "b": 2.0, "c": 3.0}

    def test_autosave_writes_immediately(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = MeasurementCache(path, autosave=True)
        cache.put("a", 1.0)
        assert json.loads(path.read_text()) == {"a": 1.0}

    def test_fresh_entries_track_new_puts_only(self, tmp_path):
        path = tmp_path / "cache.json"
        seeded = MeasurementCache(path)
        seeded.put("old", 1.0)
        seeded.flush()
        cache = MeasurementCache(path)
        cache.put("new", 2.0)
        assert cache.fresh_entries() == {"new": 2.0}

    def test_pickle_ships_entries_without_path(self, tmp_path):
        import pickle

        cache = MeasurementCache(tmp_path / "cache.json")
        cache.put("a", 1.0)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.path is None
        assert clone.get("a") == 1.0
        assert clone.fresh_entries() == {}

    def test_corrupt_file_is_quarantined(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json!!")
        cache = MeasurementCache(path)
        # The cache starts empty and is usable (flushing must not
        # clobber the quarantined bytes).
        assert len(cache) == 0
        cache.put("a", 1.0)
        cache.flush()
        assert json.loads(path.read_text()) == {"a": 1.0}
        # The corrupt bytes survive untouched for manual repair.
        quarantine = tmp_path / "cache.json.corrupt"
        assert quarantine.read_text() == "{not json!!"

    def test_quarantine_then_reload_round_trips(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("[torn")
        MeasurementCache(path)
        reloaded = MeasurementCache(path)  # no file: starts empty again
        assert len(reloaded) == 0


class _Bomb:
    """Stand-in executor that fails the test if any simulation runs."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("simulated a run that should have been replayed")


class TestRunnerReplay:
    def _measure_all(self, runner):
        return {
            "solo": runner.solo_time("app"),
            "hom": runner.measure("app", 8.0, 2),
            "het": runner.measure_heterogeneous("app", {0: 4.0, 2: 8.0}),
            "corun": runner.corun_pair("app", "other"),
            "deploy": runner.run_deployments(
                [("a", "app", {0: 0, 1: 1}), ("b", "other", {0: 2, 1: 3})]
            ),
        }

    def test_cache_round_trip_replays_without_simulating(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "measurements.json"
        first = quiet_runner(factory=synthetic_factory())
        first.cache = MeasurementCache(path)
        recorded = self._measure_all(first)
        first.cache.flush()

        replayer = quiet_runner(factory=synthetic_factory())
        replayer.cache = MeasurementCache(path)
        monkeypatch.setattr(runner_module, "CoRunExecutor", _Bomb)
        replayed = self._measure_all(replayer)

        assert replayed == recorded
        assert replayer.measurement_count == first.measurement_count
        assert replayer.solo_measurement_count == first.solo_measurement_count

    def test_cache_results_identical_to_uncached(self, tmp_path):
        cached = quiet_runner(factory=synthetic_factory())
        cached.cache = MeasurementCache(tmp_path / "m.json")
        plain = quiet_runner(factory=synthetic_factory())
        assert self._measure_all(cached) == self._measure_all(plain)
        assert cached.measurement_count == plain.measurement_count
        assert cached.solo_measurement_count == plain.solo_measurement_count

    def test_fingerprint_separates_environments(self, tmp_path):
        a = quiet_runner(base_seed=1)
        b = quiet_runner(base_seed=2)
        assert a._environment_fingerprint() != b._environment_fingerprint()

    def test_different_seed_does_not_replay(self, tmp_path):
        path = tmp_path / "m.json"
        first = quiet_runner(base_seed=1)
        first.cache = MeasurementCache(path)
        first.measure("app", 8.0, 2)
        first.cache.flush()
        other = quiet_runner(base_seed=2)
        other.cache = MeasurementCache(path)
        assert other.cache.hits == 0
        other.measure("app", 8.0, 2)
        # Different fingerprint -> fresh keys, no replay of seed-1 data.
        assert other.cache.hits == 0
