"""Tests for the co-run executor's semantics."""

import pytest

from repro.apps.bubble import BubbleWorkload
from repro.cluster.contention import LinearSensitivity
from repro.errors import ConfigurationError
from repro.sim.execution import CoRunExecutor, DeployedInstance
from repro.sim.trace import ExecutionTrace
from tests._synthetic import QUIET_NOISE, batch_workload, bsp_workload, loose_workload


def deploy(workload, nodes, key=None):
    return DeployedInstance(
        instance_key=key or workload.name,
        workload=workload,
        units_to_nodes={i: n for i, n in enumerate(nodes)},
    )


def run(*instances, seed=0, sustained=False, trace=None, num_nodes=None):
    return CoRunExecutor(
        list(instances),
        seed=seed,
        noise=QUIET_NOISE,
        sustained=sustained,
        trace=trace,
        num_nodes=num_nodes,
    ).run()


class TestSoloExecution:
    def test_bsp_solo_time_exact(self):
        # 4 iterations, base_time 10, no jitter, free network:
        # each iteration takes base/4 on every slot simultaneously.
        workload = bsp_workload(iterations=4, base_time=10.0)
        results = run(deploy(workload, [0, 1]))
        assert results[workload.name].finish_time == pytest.approx(10.0)

    def test_task_accounting(self):
        workload = bsp_workload(iterations=4)
        results = run(deploy(workload, [0, 1]))
        # 2 units x 2 slots_per_unit x 4 iterations.
        assert results[workload.name].tasks_executed == 16
        assert results[workload.name].stages_completed == 4

    def test_deterministic_given_seed(self):
        workload = bsp_workload(noise_cv=0.1)
        a = run(deploy(workload, [0, 1]), seed=5)
        b = run(deploy(workload, [0, 1]), seed=5)
        assert a[workload.name].finish_time == b[workload.name].finish_time

    def test_different_seeds_differ(self):
        from repro.sim.noise import NoiseProfile, StallModel

        jittery = NoiseProfile(jitter_scale=1.0, stall=StallModel(0.0))
        workload = bsp_workload(noise_cv=0.1)
        a = CoRunExecutor([deploy(workload, [0, 1])], seed=5, noise=jittery).run()
        b = CoRunExecutor([deploy(workload, [0, 1])], seed=6, noise=jittery).run()
        assert a[workload.name].finish_time != b[workload.name].finish_time


class TestInterferenceSemantics:
    def test_bsp_slowed_by_max_node(self):
        # BSP couples via barriers: one pressured node slows everything.
        target = bsp_workload("t", base_time=10.0, score=0.0)
        # LinearSensitivity(2.0): slowdown at p=4 is 1.5.
        loud = bsp_workload("l", score=4.0, base_time=1000.0)
        results = run(
            deploy(target, [0, 1]),
            deploy(loud, [1, 2], key="l"),
            sustained=True,
        )
        assert results["t"].finish_time == pytest.approx(15.0)

    def test_independent_batch_max_of_sums(self):
        # A batch gang is slowed only on its pressured slots.
        target = batch_workload("t", base_time=10.0, score=0.0)
        loud = bsp_workload("l", score=4.0, base_time=1000.0)
        results = run(
            deploy(target, [0, 1]),
            deploy(loud, [1, 2], key="l"),
            sustained=True,
        )
        # Slot on node 1 takes 15.0; node 0 takes 10. Completion = max.
        assert results["t"].finish_time == pytest.approx(15.0)

    def test_dynamic_pool_rebalances(self):
        # Loosely-coupled work drains toward the fast node, so the
        # finish time reflects aggregate throughput, not the max.
        target = loose_workload("t", base_time=10.0, chunks_per_slot=64, score=0.0)
        loud = bsp_workload("l", score=4.0, base_time=1000.0)
        results = run(
            deploy(target, [0, 1]),
            deploy(loud, [1, 2], key="l"),
            sustained=True,
        )
        # Throughput model: speeds 1 and 1/1.5 -> time = 2*10/(1+2/3) = 12.
        assert results["t"].finish_time == pytest.approx(12.0, rel=0.05)

    def test_pressure_released_on_finish(self):
        # Without sustained mode, a short co-runner's pressure vanishes
        # when it finishes, so the target ends faster than under
        # sustained interference.
        target = bsp_workload("t", base_time=10.0, score=0.0, iterations=40)
        short = bsp_workload("s", score=4.0, base_time=1.0, iterations=4)
        open_run = run(deploy(target, [0, 1]), deploy(short, [0, 1], key="s"))
        sustained = run(
            deploy(target, [0, 1]), deploy(short, [0, 1], key="s"), sustained=True
        )
        assert open_run["t"].finish_time < sustained["t"].finish_time


class TestBubbles:
    def test_bubble_pressures_target(self):
        target = bsp_workload("t", base_time=10.0, score=0.0)
        bubble = DeployedInstance("b", BubbleWorkload(8.0), {0: 1})
        results = run(deploy(target, [0, 1]), bubble)
        assert results["t"].finish_time == pytest.approx(20.0)  # slowdown 2.0

    def test_bubble_result_marked_passive(self):
        target = bsp_workload("t", base_time=10.0)
        bubble = DeployedInstance("b", BubbleWorkload(4.0), {0: 1})
        results = run(deploy(target, [0, 1]), bubble)
        assert results["b"].passive
        assert results["b"].finish_time == results["t"].finish_time

    def test_bubble_reads_target_pressure(self):
        target = bsp_workload("t", base_time=10.0, score=3.0)
        bubble = DeployedInstance("b", BubbleWorkload(1.0), {0: 1})
        results = run(deploy(target, [0, 1]), bubble)
        assert results["b"].mean_pressure_seen == pytest.approx(3.0)

    def test_all_passive_rejected(self):
        bubble = DeployedInstance("b", BubbleWorkload(4.0), {0: 0})
        with pytest.raises(ConfigurationError, match="active"):
            CoRunExecutor([bubble])


class TestSustainedMode:
    def test_first_pass_times_reported(self):
        # Both instances loop; each result is its first-pass time.
        a = bsp_workload("a", base_time=5.0, score=2.0)
        b = bsp_workload("b", base_time=20.0, score=2.0)
        results = run(
            deploy(a, [0, 1], key="a"), deploy(b, [0, 1], key="b"), sustained=True
        )
        assert results["a"].finish_time < results["b"].finish_time
        # b experiences a's pressure for its WHOLE first pass: with
        # LinearSensitivity(2.0) at p=2, slowdown is 1.25.
        assert results["b"].finish_time == pytest.approx(25.0)

    def test_symmetric_pair(self):
        a = bsp_workload("x", base_time=10.0, score=4.0)
        results = run(
            deploy(a, [0, 1], key="x0"), deploy(a, [0, 1], key="x1"), sustained=True
        )
        assert results["x0"].finish_time == pytest.approx(
            results["x1"].finish_time, rel=0.01
        )


class TestValidation:
    def test_duplicate_keys_rejected(self):
        workload = bsp_workload()
        with pytest.raises(ConfigurationError, match="duplicate"):
            CoRunExecutor([deploy(workload, [0]), deploy(workload, [1])])

    def test_active_instance_needs_units(self):
        with pytest.raises(ConfigurationError, match="no units"):
            DeployedInstance("a", bsp_workload(), {})

    def test_slot_nodes_unit_major(self):
        inst = deploy(bsp_workload(slots_per_unit=2), [3, 5])
        assert inst.slot_nodes() == [3, 3, 5, 5]
        assert inst.spanned_nodes() == [3, 5]
        assert inst.num_slots == 4


class TestTracing:
    def test_stage_records(self):
        trace = ExecutionTrace()
        workload = bsp_workload(iterations=3)
        run(deploy(workload, [0, 1]), trace=trace)
        records = trace.stages_of(workload.name)
        assert len(records) == 3
        times = [r.completed_at for r in records]
        assert times == sorted(times)
