"""Tests for the NETWORK contention domain in the simulator.

Covers the link-pressure bookkeeping in :class:`PressureField`, the
executor's bottleneck-link scaling of collective stages, the passivity
of network-noise bubbles, and the runner's ``network_ambient``
injection — including the flat-network invariant that none of it
exists unless a network source does.
"""

import pytest

from repro.apps import make_bubble
from repro.cluster.cluster import ClusterSpec
from repro.cluster.contention import (
    ContentionDomain,
    LinearSensitivity,
    combine_pressures,
)
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError, SimulationError
from repro.sim.pressure import PressureField
from repro.sim.runner import ClusterRunner
from repro.apps.base import Workload
from repro.apps.mpi import BSPWorkload, CollectiveType
from tests._synthetic import QUIET_NOISE, bsp_workload, synthetic_spec


def net_workload(name: str = "netw", *, score: float = 0.0,
                 net_score: float = 3.0, **spec_kwargs):
    """A BSP workload that pushes traffic through its hosts' uplinks."""
    return bsp_workload(
        name, score=score, net_score=net_score, **spec_kwargs
    )


class TestFieldHasNetwork:
    def test_empty_field_is_flat(self):
        assert not PressureField().has_network

    def test_compute_only_sources_stay_flat(self):
        field = PressureField()
        field.register("a", bsp_workload("a", score=3.0), {0: 0})
        assert not field.has_network

    def test_network_source_flips_it(self):
        field = PressureField()
        field.register("n", net_workload(), {0: 0})
        assert field.has_network

    def test_ambient_link_flips_it(self):
        assert PressureField(ambient_link={0: 2.0}).has_network

    def test_zero_ambient_link_is_filtered(self):
        # --network-noise 0.0 must leave the field indistinguishable
        # from a scalar-era one.
        assert not PressureField(ambient_link={0: 0.0, 1: 0.0}).has_network


class TestLinkPressureSeen:
    def make_field(self):
        field = PressureField()
        field.register("a", net_workload("a", net_score=3.0), {0: 0, 1: 1})
        field.register("b", net_workload("b", net_score=2.0), {0: 1, 1: 2})
        return field

    def test_excludes_own_contribution(self):
        assert self.make_field().link_pressure_seen("a", 0) == 0.0

    def test_sees_co_runner_uplink_traffic(self):
        field = self.make_field()
        assert field.link_pressure_seen("a", 1) == 2.0
        assert field.link_pressure_seen("b", 1) == 3.0

    def test_combines_with_network_surcharge(self):
        field = PressureField()
        field.register("a", net_workload("a", net_score=3.0), {0: 0})
        field.register("b", net_workload("b", net_score=3.0), {0: 0})
        field.register("v", bsp_workload("v", score=0.0), {0: 0})
        expected = combine_pressures(
            [3.0, 3.0], domain=ContentionDomain.NETWORK
        )
        assert field.link_pressure_seen("v", 0) == expected

    def test_ambient_link_included(self):
        field = PressureField(ambient_link={0: 2.5})
        field.register("v", bsp_workload("v"), {0: 0})
        assert field.link_pressure_seen("v", 0) == 2.5

    def test_deactivation_removes_link_pressure(self):
        field = self.make_field()
        field.deactivate("b")
        assert field.link_pressure_seen("a", 1) == 0.0

    def test_flat_field_reports_zero(self):
        field = PressureField()
        field.register("a", bsp_workload("a", score=3.0), {0: 0})
        assert field.link_pressure_seen("a", 0) == 0.0


class TestNetworkBubblePassivity:
    """Traffic generators exert link pressure but zero compute pressure."""

    def test_network_bubble_is_compute_silent(self):
        field = PressureField()
        bubble = make_bubble(5.0, domain=ContentionDomain.NETWORK)
        field.register("bub", bubble, {0: 0})
        field.register("v", bsp_workload("v", score=0.0), {0: 0})
        assert field.pressure_seen("v", 0) == 0.0
        assert field.link_pressure_seen("v", 0) == 5.0

    def test_compute_bubble_is_link_silent(self):
        field = PressureField()
        field.register("bub", make_bubble(5.0), {0: 0})
        field.register("v", bsp_workload("v", score=0.0), {0: 0})
        assert field.pressure_seen("v", 0) == 5.0
        assert field.link_pressure_seen("v", 0) == 0.0
        assert not field.has_network


class _SyncFactory:
    """Factory whose workloads pay a real collective cost per iteration.

    Module-level class (not a closure) so runners built on it can cross
    process boundaries, mirroring ``tests._synthetic.SyntheticFactory``.
    """

    def __init__(self, **overrides) -> None:
        self.overrides = overrides

    def __call__(self, abbrev: str) -> Workload:
        return BSPWorkload(
            synthetic_spec(abbrev, **self.overrides.get(abbrev, {})),
            iterations=4,
            collective=CollectiveType.ALLREDUCE,
            topology=SwitchTopology(base_latency=0.5, per_node_cost=0.05),
        )


def sync_runner(*, network_ambient: float = 0.0, **overrides) -> ClusterRunner:
    return ClusterRunner(
        ClusterSpec(num_nodes=4, cores_per_node=16),
        noise=QUIET_NOISE,
        base_seed=1,
        workload_factory=_SyncFactory(**overrides),
        network_ambient=network_ambient,
    )


VICTIM = {"vic": {"net_sensitivity": LinearSensitivity(max_slowdown=3.0)}}


class TestExecutorLinkScaling:
    def test_link_noise_slows_collectives(self):
        runner = sync_runner(**VICTIM)
        slowed = runner.measure_network("vic", 6.0, 2, span=2)
        assert slowed > 1.0
        assert runner.measure_network("vic", 6.0, 2, span=2) == slowed

    def test_monotone_in_level(self):
        runner = sync_runner(**VICTIM)
        low = runner.measure_network("vic", 2.0, 2, span=2)
        high = runner.measure_network("vic", 7.0, 2, span=2)
        assert 1.0 < low < high

    def test_bottleneck_link_gates_the_exchange(self):
        # The executor reads the *max* link pressure over the spanned
        # nodes: raising an already-dominated link changes nothing.
        runner = sync_runner(**VICTIM)
        mixed = runner.measure_network_heterogeneous_time(
            "vic", {0: 3.0, 1: 5.0}
        )
        flat = runner.measure_network_heterogeneous_time(
            "vic", {0: 5.0, 1: 5.0}
        )
        assert mixed == flat

    def test_insensitive_workload_unaffected(self):
        # No network_sensitivity (the scalar-era default): network
        # bubbles change nothing, and the bubbles themselves exert no
        # compute pressure.
        runner = sync_runner()
        assert runner.measure_network("vic", 8.0, 2, span=2) == 1.0


class TestNetworkAmbient:
    def test_zero_ambient_is_bit_identical(self):
        flat = sync_runner(**VICTIM)
        explicit = sync_runner(network_ambient=0.0, **VICTIM)
        assert (
            explicit.measure_time("vic", 4.0, 2, span=2)
            == flat.measure_time("vic", 4.0, 2, span=2)
        )
        assert explicit.solo_time("vic", num_units=2) == flat.solo_time(
            "vic", num_units=2
        )

    def test_ambient_slows_sensitive_workloads(self):
        flat = sync_runner(**VICTIM)
        noisy = sync_runner(network_ambient=6.0, **VICTIM)
        assert noisy.solo_time("vic", num_units=2) > flat.solo_time(
            "vic", num_units=2
        )

    def test_ambient_spares_insensitive_workloads(self):
        flat = sync_runner()
        noisy = sync_runner(network_ambient=6.0)
        assert noisy.solo_time("vic", num_units=2) == flat.solo_time(
            "vic", num_units=2
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            sync_runner(network_ambient=-1.0)
        with pytest.raises(ConfigurationError):
            sync_runner(network_ambient=9.0)
