"""Tests for batched measurement fan-out (``measure_many``)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cache import MeasurementCache
from repro.sim.runner import MeasurementRequest
from tests._synthetic import quiet_runner, synthetic_factory


def batch():
    """A mixed batch exercising every request kind."""
    return [
        MeasurementRequest.solo("app"),
        MeasurementRequest.measure("app", 8.0, 2),
        MeasurementRequest.measure("app", 4.0, 1, normalized=False),
        MeasurementRequest.heterogeneous("app", {0: 4.0, 3: 8.0}),
        MeasurementRequest.corun("app", "other"),
        MeasurementRequest.deployments(
            [("a", "app", {0: 0, 1: 1}), ("b", "other", {0: 2, 1: 3})]
        ),
        MeasurementRequest.measure("other", 8.0, 2, rep=1),
    ]


class TestMeasurementRequest:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementRequest("erase_disk", ())

    def test_apply_matches_direct_call(self):
        runner = quiet_runner()
        direct = runner.measure("app", 8.0, 2)
        via_request = MeasurementRequest.measure("app", 8.0, 2).apply(
            quiet_runner()
        )
        assert via_request == direct

    def test_requests_are_hashable(self):
        # Frozen plain data: usable as dict keys for dedup.
        assert len({MeasurementRequest.solo("a"), MeasurementRequest.solo("a")}) == 1


class TestSerialBatch:
    def test_matches_individual_calls(self):
        batched = quiet_runner()
        results = batched.measure_many(batch())
        loose = quiet_runner()
        expected = [request.apply(loose) for request in batch()]
        assert results == expected
        assert batched.measurement_count == loose.measurement_count
        assert batched.solo_measurement_count == loose.solo_measurement_count

    def test_empty_batch(self):
        assert quiet_runner().measure_many([]) == []


class TestParallelBatch:
    def test_bit_identical_to_serial(self):
        serial = quiet_runner()
        serial_results = serial.measure_many(batch(), max_workers=1)
        parallel = quiet_runner()
        parallel_results = parallel.measure_many(batch(), max_workers=2)
        assert parallel_results == serial_results

    def test_accounting_identical_to_serial(self):
        serial = quiet_runner()
        serial.measure_many(batch(), max_workers=1)
        parallel = quiet_runner()
        parallel.measure_many(batch(), max_workers=2)
        assert parallel.measurement_count == serial.measurement_count
        assert parallel.solo_measurement_count == serial.solo_measurement_count
        assert parallel._solo_cache == serial._solo_cache

    def test_cache_entries_collected_from_workers(self, tmp_path):
        runner = quiet_runner()
        runner.cache = MeasurementCache(tmp_path / "m.json")
        runner.measure_many(batch(), max_workers=2)
        assert len(runner.cache) > 0
        serial = quiet_runner()
        serial.cache = MeasurementCache(tmp_path / "serial.json")
        serial.measure_many(batch(), max_workers=1)
        assert runner.cache._entries == serial.cache._entries

    def test_unpicklable_runner_falls_back_to_serial(self):
        runner = quiet_runner(factory=lambda abbrev: synthetic_factory()(abbrev))
        reference = quiet_runner()
        assert runner.measure_many(batch(), max_workers=2) == (
            reference.measure_many(batch())
        )


class TestSoloAccounting:
    def test_solo_counts_reps_once_per_key(self):
        runner = quiet_runner()
        runner.solo_time("app")
        runner.solo_time("app")
        assert runner.solo_measurement_count == runner.SOLO_REPS
        runner.solo_time("app", num_units=2)
        assert runner.solo_measurement_count == 2 * runner.SOLO_REPS

    def test_solo_not_counted_as_measurement(self):
        runner = quiet_runner()
        runner.solo_time("app")
        assert runner.measurement_count == 0

    def test_total_combines_both(self):
        runner = quiet_runner()
        runner.measure("app", 8.0, 2)
        assert runner.total_measurement_count == (
            runner.measurement_count + runner.solo_measurement_count
        )
        assert runner.measurement_count == 1
        assert runner.solo_measurement_count == runner.SOLO_REPS
