"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.run()
        assert fired == ["a", "b"]

    def test_fifo_among_ties(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("first"))
        engine.schedule(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_clock_advances(self):
        engine = Engine()
        times = []
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.schedule(3.0, lambda: times.append(engine.now))
        end = engine.run()
        assert times == [1.5, 3.0]
        assert end == 3.0

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            engine.schedule(1.0, lambda: fired.append(engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == [2.0]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_roundoff_negative_delay_clamped(self):
        # Absolute-time scheduling through float arithmetic can produce
        # deltas like -1e-18; those are roundoff, not time travel.
        engine = Engine()
        fired = []
        engine.schedule(-1e-18, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [0.0]

    def test_roundoff_clamp_scales_with_clock(self):
        # At now=1e6, a -1e-5 absolute-time error is still roundoff
        # relative to the clock; it must not raise.
        engine = Engine()
        fired = []

        def at_large_time():
            engine.schedule_at(engine.now - 1e-5, lambda: fired.append(True))

        engine.schedule(1e6, at_large_time)
        engine.run()
        assert fired == [True]

    def test_genuinely_negative_still_rejected(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(True))
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)

    def test_schedule_at(self):
        engine = Engine()
        fired = []
        engine.schedule_at(4.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [4.0]

    def test_zero_delay_runs_now(self):
        engine = Engine()
        fired = []
        engine.schedule(0.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [0.0]


class TestControls:
    def test_max_events_guard(self):
        engine = Engine()

        def forever():
            engine.schedule(1.0, forever)

        engine.schedule(1.0, forever)
        with pytest.raises(SimulationError, match="events"):
            engine.run(max_events=100)

    def test_stop_discards_pending(self):
        engine = Engine()
        fired = []

        def stop_now():
            fired.append(1)
            engine.stop()

        engine.schedule(1.0, stop_now)
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]
        assert engine.pending == 0

    def test_reset(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending == 0
        assert engine.events_processed == 0

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_empty_run_returns_zero(self):
        assert Engine().run() == 0.0
