"""Tests for noise models."""

import numpy as np
import pytest

from repro._util import make_rng
from repro.sim.noise import (
    EC2_NOISE,
    PRIVATE_TESTBED_NOISE,
    AmbientNoise,
    NoiseProfile,
    StallModel,
    TaskJitter,
)


class TestTaskJitter:
    def test_zero_cv_is_deterministic(self):
        jitter = TaskJitter(0.0, make_rng(0))
        assert all(jitter.sample() == 1.0 for _ in range(10))

    def test_unit_mean(self):
        jitter = TaskJitter(0.2, make_rng(0))
        samples = [jitter.sample() for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_cv_matches(self):
        jitter = TaskJitter(0.15, make_rng(1))
        samples = np.array([jitter.sample() for _ in range(20000)])
        assert samples.std() / samples.mean() == pytest.approx(0.15, abs=0.01)

    def test_always_positive(self):
        jitter = TaskJitter(0.5, make_rng(2))
        assert all(jitter.sample() > 0 for _ in range(1000))

    def test_negative_cv_rejected(self):
        with pytest.raises(ValueError):
            TaskJitter(-0.1, make_rng(0))


class TestAmbientNoise:
    def test_draw_covers_all_nodes(self):
        noise = AmbientNoise(max_pressure=2.0, occupancy=0.5)
        draw = noise.draw(8, seed=3)
        assert set(draw) == set(range(8))

    def test_pressures_bounded(self):
        noise = AmbientNoise(max_pressure=2.0, occupancy=1.0)
        draw = noise.draw(100, seed=4)
        assert all(0.0 <= p <= 2.0 for p in draw.values())

    def test_zero_occupancy_silent(self):
        noise = AmbientNoise(max_pressure=2.0, occupancy=0.0)
        assert all(p == 0.0 for p in noise.draw(20, seed=5).values())

    def test_deterministic_per_seed(self):
        noise = AmbientNoise()
        assert noise.draw(8, seed=6) == noise.draw(8, seed=6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AmbientNoise(max_pressure=-1)
        with pytest.raises(ValueError):
            AmbientNoise(occupancy=1.5)


class TestStallModel:
    def test_disabled_never_stalls(self):
        stall = StallModel(prob_at_max=0.0)
        assert stall.factor(make_rng(0), 8.0, reacts=True) == 1.0

    def test_non_reacting_workload_never_stalls(self):
        # A workload whose working set is untouched by the co-runner
        # does not fault on the contention path.
        stall = StallModel(prob_at_max=1.0)
        assert stall.factor(make_rng(0), 8.0, reacts=False) == 1.0

    def test_zero_pressure_never_stalls(self):
        stall = StallModel(prob_at_max=1.0)
        assert stall.factor(make_rng(0), 0.0, reacts=True) == 1.0

    def test_certain_stall_multiplies(self):
        stall = StallModel(prob_at_max=1.0, scale=0.5)
        factor = stall.factor(make_rng(0), 8.0, reacts=True)
        assert factor > 1.0

    def test_frequency_scales_with_pressure(self):
        stall = StallModel(prob_at_max=0.5, scale=0.5)
        rng = make_rng(1)
        high = sum(stall.factor(rng, 8.0, True) > 1.0 for _ in range(4000))
        rng = make_rng(1)
        low = sum(stall.factor(rng, 2.0, True) > 1.0 for _ in range(4000))
        assert high > 2.5 * low

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StallModel(prob_at_max=1.5)
        with pytest.raises(ValueError):
            StallModel(scale=-1.0)


class TestNoiseProfiles:
    def test_private_testbed_has_no_ambient(self):
        assert PRIVATE_TESTBED_NOISE.ambient is None

    def test_ec2_noisier_than_private(self):
        assert EC2_NOISE.jitter_scale > PRIVATE_TESTBED_NOISE.jitter_scale
        assert EC2_NOISE.ambient is not None
        assert EC2_NOISE.stall.prob_at_max > PRIVATE_TESTBED_NOISE.stall.prob_at_max

    def test_invalid_jitter_scale(self):
        with pytest.raises(ValueError):
            NoiseProfile(jitter_scale=-1.0)
