"""Tests for the measurement oracle (ClusterRunner)."""

import pytest

from repro.errors import ConfigurationError
from tests._synthetic import quiet_runner, synthetic_factory


@pytest.fixture
def runner():
    return quiet_runner(num_nodes=4)


class TestSolo:
    def test_solo_cached(self, runner):
        first = runner.solo_time("app")
        second = runner.solo_time("app")
        assert first == second

    def test_solo_positive(self, runner):
        assert runner.solo_time("app") > 0

    def test_solo_varies_by_units(self, runner):
        # Different unit counts are distinct baselines (collective
        # costs differ), cached separately.
        assert (
            runner.solo_time("app", num_units=2) is not None
            and runner.solo_time("app", num_units=4) is not None
        )


class TestMeasure:
    def test_no_interference_is_one(self, runner):
        assert runner.measure("app", 0.0, 4) == 1.0
        assert runner.measure("app", 5.0, 0) == 1.0

    def test_normalized_above_one_under_pressure(self, runner):
        assert runner.measure("app", 8.0, 4) > 1.0

    def test_monotone_in_count(self, runner):
        # Noise-free BSP: more interfering nodes never speeds things up.
        times = [runner.measure("app", 8.0, k) for k in range(0, 5)]
        assert times == sorted(times)

    def test_deterministic(self, runner):
        assert runner.measure("app", 4.0, 2) == runner.measure("app", 4.0, 2)

    def test_rep_changes_nothing_when_quiet(self, runner):
        # The environment is noise-free, so repetitions agree exactly.
        assert runner.measure("app", 4.0, 2, rep=0) == pytest.approx(
            runner.measure("app", 4.0, 2, rep=1)
        )

    def test_measurement_counter(self, runner):
        before = runner.measurement_count
        runner.measure("app", 3.0, 2)
        assert runner.measurement_count == before + 1

    def test_interfering_node_selection(self, runner):
        # Bubbles fill from the highest-numbered node down.
        assert runner.interfering_nodes(2) == [2, 3]
        assert runner.interfering_nodes(0) == []
        assert runner.interfering_nodes(2, span=3) == [1, 2]

    def test_interfering_count_bounds(self, runner):
        with pytest.raises(ConfigurationError):
            runner.interfering_nodes(5)

    def test_span_limits_deployment(self, runner):
        full = runner.full_span_deployment("app")
        half = runner.full_span_deployment("app", span=2)
        assert full.num_units == 4
        assert half.num_units == 2

    def test_invalid_span(self, runner):
        with pytest.raises(ConfigurationError):
            runner.full_span_deployment("app", span=9)


class TestHeterogeneous:
    def test_all_zero_is_one(self, runner):
        assert runner.measure_heterogeneous("app", {0: 0.0, 1: 0.0}) == 1.0

    def test_matches_homogeneous(self, runner):
        hetero = runner.measure_heterogeneous(
            "app", {n: 6.0 for n in runner.interfering_nodes(2)}
        )
        homog = runner.measure("app", 6.0, 2)
        assert hetero == pytest.approx(homog, rel=0.01)

    def test_bad_node_rejected(self, runner):
        with pytest.raises(ConfigurationError):
            runner.measure_heterogeneous("app", {7: 3.0})


class TestCoRuns:
    def test_corun_pair_keys(self, runner):
        times = runner.corun_pair("appA", "appB")
        assert set(times) == {"appA#0", "appB#1"}

    def test_corun_with_self(self, runner):
        times = runner.corun_pair("appA", "appA")
        assert set(times) == {"appA#0", "appA#1"}

    def test_corun_slower_than_solo(self):
        runner = quiet_runner(
            num_nodes=4,
            factory=synthetic_factory(loud={"score": 6.0}, tgt={"score": 6.0}),
        )
        times = runner.corun_pair("tgt", "loud")
        assert times["tgt#0"] > 1.2

    def test_run_deployments(self, runner):
        times = runner.run_deployments(
            [
                ("a", "appA", {0: 0, 1: 1}),
                ("b", "appB", {0: 2, 1: 3}),
            ]
        )
        assert set(times) == {"a", "b"}
        # Disjoint nodes: no interference, normalized ~1.
        assert times["a"] == pytest.approx(1.0, abs=0.02)
