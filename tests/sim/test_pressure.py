"""Tests for the pressure field."""

import pytest

from repro.errors import SimulationError
from repro.sim.pressure import PressureField
from tests._synthetic import bsp_workload


def make_field():
    field = PressureField()
    field.register("a", bsp_workload("a", score=3.0), {0: 0, 1: 1})
    field.register("b", bsp_workload("b", score=2.0), {0: 1, 1: 2})
    return field


class TestPressureSeen:
    def test_excludes_own_contribution(self):
        field = make_field()
        assert field.pressure_seen("a", 0) == 0.0

    def test_sees_co_runner(self):
        field = make_field()
        assert field.pressure_seen("a", 1) == 2.0
        assert field.pressure_seen("b", 1) == 3.0

    def test_node_without_contributions(self):
        field = make_field()
        assert field.pressure_seen("a", 5) == 0.0

    def test_deactivation_removes_pressure(self):
        field = make_field()
        field.deactivate("b")
        assert field.pressure_seen("a", 1) == 0.0

    def test_deactivate_unknown_raises(self):
        with pytest.raises(SimulationError):
            PressureField().deactivate("ghost")

    def test_double_registration_rejected(self):
        field = make_field()
        with pytest.raises(SimulationError):
            field.register("a", bsp_workload("a"), {0: 0})

    def test_is_active(self):
        field = make_field()
        assert field.is_active("a")
        field.deactivate("a")
        assert not field.is_active("a")
        assert not field.is_active("ghost")

    def test_master_unit_discount(self):
        field = PressureField()
        field.register(
            "h", bsp_workload("h", score=1.0, master_factor=0.5), {0: 0, 1: 1}
        )
        field.register("x", bsp_workload("x", score=0.0), {0: 0, 1: 1})
        assert field.pressure_seen("x", 0) == 0.5  # master node
        assert field.pressure_seen("x", 1) == 1.0

    def test_two_units_same_node_combine(self):
        field = PressureField()
        field.register("a", bsp_workload("a", score=3.0), {0: 0, 1: 0})
        field.register("x", bsp_workload("x", score=0.0), {0: 0})
        # Two equal sources combine to S + 1 (+ surcharge).
        assert field.pressure_seen("x", 0) > 4.0


class TestAmbient:
    def test_ambient_contributes(self):
        field = PressureField(ambient={0: 1.5})
        field.register("a", bsp_workload("a", score=0.0), {0: 0})
        assert field.pressure_seen("a", 0) == 1.5

    def test_ambient_combines_with_sources(self):
        field = PressureField(ambient={0: 2.0})
        field.register("a", bsp_workload("a", score=2.0), {0: 0})
        field.register("x", bsp_workload("x", score=0.0), {0: 0})
        assert field.pressure_seen("x", 0) > 2.9


class TestGeneratedOn:
    def test_total_on_node(self):
        field = make_field()
        assert field.generated_on(1) > 3.0  # both a and b contribute

    def test_exclude(self):
        field = make_field()
        assert field.generated_on(1, exclude="a") == 2.0
