"""Tests for execution traces."""

from repro.sim.trace import ExecutionTrace, StageRecord


class TestExecutionTrace:
    def test_record_and_query(self):
        trace = ExecutionTrace()
        trace.record_stage("a", "s0", 1.0)
        trace.record_stage("b", "s0", 1.5)
        trace.record_stage("a", "s1", 2.5)
        assert [r.stage_name for r in trace.stages_of("a")] == ["s0", "s1"]

    def test_stage_durations(self):
        trace = ExecutionTrace()
        trace.record_stage("a", "s0", 1.0)
        trace.record_stage("a", "s1", 2.5)
        assert trace.stage_durations("a") == [("s0", 1.0), ("s1", 1.5)]

    def test_summary(self):
        trace = ExecutionTrace()
        trace.record_stage("a", "s0", 1.0)
        trace.record_stage("a", "s1", 2.0)
        trace.record_stage("b", "s0", 1.0)
        assert trace.summary() == {"a": 2, "b": 1}

    def test_empty(self):
        trace = ExecutionTrace()
        assert trace.stages_of("x") == []
        assert trace.summary() == {}

    def test_record_is_frozen(self):
        record = StageRecord("a", "s", 1.0)
        assert record.completed_at == 1.0
