"""Synthetic workloads and environments for fast, exact unit tests.

The catalog workloads carry jitter and stalls tuned for realism; unit
tests instead want small, deterministic programs whose expected
execution times can be computed by hand.  These helpers build them.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import (
    PropagationClass,
    Workload,
    WorkloadFamily,
    WorkloadSpec,
)
from repro.apps.batch import BatchWorkload
from repro.apps.mpi import BSPWorkload, CollectiveType, LooselyCoupledWorkload
from repro.cluster.cluster import ClusterSpec
from repro.cluster.contention import LinearSensitivity, SensitivityFunction
from repro.cluster.topology import SwitchTopology
from repro.sim.noise import NoiseProfile, StallModel
from repro.sim.runner import ClusterRunner

#: Noise-free environment: no jitter scaling effect, no stalls.
QUIET_NOISE = NoiseProfile(jitter_scale=0.0, ambient=None, stall=StallModel(0.0))

#: Zero-cost interconnect for exact arithmetic on stage times.
FREE_NETWORK = SwitchTopology(base_latency=0.0, per_node_cost=0.0)


def synthetic_spec(
    name: str = "synth",
    *,
    sensitivity: Optional[SensitivityFunction] = None,
    score: float = 2.0,
    base_time: float = 10.0,
    noise_cv: float = 0.0,
    master_factor: float = 1.0,
    slots_per_unit: int = 2,
    net_score: float = 0.0,
    net_sensitivity: Optional[SensitivityFunction] = None,
) -> WorkloadSpec:
    """A minimal workload spec with controllable knobs."""
    return WorkloadSpec(
        name=name,
        abbrev=name,
        family=WorkloadFamily.SYNTHETIC,
        propagation_class=PropagationClass.HIGH,
        sensitivity=sensitivity or LinearSensitivity(max_slowdown=2.0),
        generated_pressure=score,
        base_time=base_time,
        noise_cv=noise_cv,
        master_pressure_factor=master_factor,
        slots_per_unit=slots_per_unit,
        network_sensitivity=net_sensitivity,
        generated_network_pressure=net_score,
    )


def bsp_workload(
    name: str = "synth-bsp", *, iterations: int = 4, **spec_kwargs
) -> BSPWorkload:
    """Deterministic BSP workload with a free network."""
    return BSPWorkload(
        synthetic_spec(name, **spec_kwargs),
        iterations=iterations,
        collective=CollectiveType.BARRIER,
        topology=FREE_NETWORK,
    )


def loose_workload(
    name: str = "synth-loose", *, phases: int = 2, chunks_per_slot: int = 4,
    **spec_kwargs,
) -> LooselyCoupledWorkload:
    """Deterministic loosely-coupled workload with a free network."""
    return LooselyCoupledWorkload(
        synthetic_spec(name, **spec_kwargs),
        phases=phases,
        chunks_per_slot=chunks_per_slot,
        topology=FREE_NETWORK,
    )


def batch_workload(
    name: str = "synth-batch", *, chunks: int = 4, **spec_kwargs
) -> BatchWorkload:
    """Deterministic batch workload."""
    return BatchWorkload(synthetic_spec(name, **spec_kwargs), chunks=chunks)


class SyntheticFactory:
    """Picklable ``workload_factory`` mapping any abbreviation to a BSP synth.

    A class rather than a closure so runners built on it can cross
    process boundaries (``ClusterRunner.measure_many`` fan-out).
    """

    def __init__(self, **overrides) -> None:
        self.overrides = overrides

    def __call__(self, abbrev: str) -> Workload:
        return bsp_workload(abbrev, **self.overrides.get(abbrev, {}))


def synthetic_factory(**overrides) -> SyntheticFactory:
    """A ``workload_factory`` mapping any abbreviation to a BSP synth.

    Per-abbreviation keyword overrides can be supplied as
    ``synthetic_factory(appA={"score": 4.0})``.
    """
    return SyntheticFactory(**overrides)


def quiet_runner(
    num_nodes: int = 4, *, factory=None, base_seed: int = 1
) -> ClusterRunner:
    """A small, noise-free measurement environment."""
    spec = ClusterSpec(num_nodes=num_nodes, cores_per_node=16)
    return ClusterRunner(
        spec,
        noise=QUIET_NOISE,
        base_seed=base_seed,
        workload_factory=factory or synthetic_factory(),
    )
