"""Tests for Algorithms 1 and 2 against analytic oracles."""

import numpy as np
import pytest

from repro.core.curves import PropagationMatrix
from repro.core.profiling.binary import (
    binary_brute,
    binary_optimized,
    interpolate_all,
    interpolate_col,
    interpolate_row,
    profile_binary_row,
)
from repro.core.profiling.plan import ProfilingSession
from repro.errors import ProfilingError

PRESSURES = [float(p) for p in range(1, 9)]
COUNTS = [float(c) for c in range(9)]


class AnalyticOracle:
    """Oracle with a closed-form separable response surface."""

    def __init__(self, fn=None):
        self.abbrev = "analytic"
        self.calls = 0
        self._fn = fn or (lambda p, k: 1.0 + (p / 8.0) * (0.5 + 0.5 * k / 8.0))

    def normalized(self, pressure, count):
        if pressure == 0 or count == 0:
            return 1.0
        self.calls += 1
        return self._fn(pressure, count)

    def truth(self):
        matrix = PropagationMatrix.empty(PRESSURES, COUNTS)
        for i, p in enumerate(PRESSURES):
            for j, c in enumerate(COUNTS[1:], start=1):
                matrix.set(i, j, self._fn(p, c))
        return matrix


class TestBinaryBrute:
    def test_complete_and_accurate(self):
        oracle = AnalyticOracle()
        outcome = binary_brute(oracle, PRESSURES, COUNTS, threshold=0.02)
        assert outcome.matrix.is_complete()
        assert outcome.error_against(oracle.truth()) < 1.0

    def test_cheaper_than_exhaustive(self):
        oracle = AnalyticOracle()
        outcome = binary_brute(oracle, PRESSURES, COUNTS, threshold=0.05)
        assert outcome.settings_measured < 64

    def test_flat_curve_costs_one_point_per_row(self):
        # A workload that never slows down: every row needs only the
        # all-hosts endpoint.
        oracle = AnalyticOracle(fn=lambda p, k: 1.0)
        outcome = binary_brute(oracle, PRESSURES, COUNTS, threshold=0.05)
        assert outcome.settings_measured == len(PRESSURES)
        assert outcome.matrix.is_complete()

    def test_steep_curve_measures_more(self):
        flat = AnalyticOracle(fn=lambda p, k: 1.0 + 0.01 * k)
        steep = AnalyticOracle(fn=lambda p, k: 1.0 + 0.2 * k * p / 8.0)
        flat_cost = binary_brute(flat, PRESSURES, COUNTS).settings_measured
        steep_cost = binary_brute(steep, PRESSURES, COUNTS).settings_measured
        assert steep_cost > flat_cost


class TestBinaryOptimized:
    def test_complete_and_accurate_on_separable_surface(self):
        # The algorithm assumes curves share their shape across
        # pressures; a separable surface satisfies that exactly.
        oracle = AnalyticOracle(
            fn=lambda p, k: 1.0 + (p / 8.0) * (k / 8.0)
        )
        outcome = binary_optimized(oracle, PRESSURES, COUNTS, threshold=0.02)
        assert outcome.matrix.is_complete()
        assert outcome.error_against(oracle.truth()) < 1.5

    def test_cheaper_than_brute(self):
        brute_oracle = AnalyticOracle()
        optimized_oracle = AnalyticOracle()
        brute = binary_brute(brute_oracle, PRESSURES, COUNTS)
        optimized = binary_optimized(optimized_oracle, PRESSURES, COUNTS)
        assert optimized.settings_measured < brute.settings_measured

    def test_reconstruction_formula(self):
        # T[i][j] = 1 + (T[i][m]-1)(T[n-1][j]-1)/(T[n-1][m]-1).
        matrix = PropagationMatrix.empty([1.0, 2.0], [0.0, 1.0, 2.0])
        matrix.set(0, 2, 1.3)
        matrix.set(1, 1, 1.4)
        matrix.set(1, 2, 1.6)
        interpolate_all(matrix)
        assert matrix.get(0, 1) == pytest.approx(1.0 + 0.3 * 0.4 / 0.6)

    def test_reconstruction_flat_top_fallback(self):
        matrix = PropagationMatrix.empty([1.0, 2.0], [0.0, 1.0, 2.0])
        matrix.set(0, 2, 1.4)
        matrix.set(1, 1, 1.0)
        matrix.set(1, 2, 1.0)  # flat top curve -> degenerate ratio
        interpolate_all(matrix)
        assert matrix.get(0, 1) == pytest.approx(1.2)  # count-ratio fallback


class TestHelpers:
    def test_profile_binary_row_requires_endpoints(self):
        matrix = PropagationMatrix.empty(PRESSURES, COUNTS)
        session = ProfilingSession(AnalyticOracle())
        with pytest.raises(ProfilingError, match="endpoints"):
            profile_binary_row(matrix, session, 0, 0, 8, 0.05)

    def test_interpolate_row_needs_two_points(self):
        matrix = PropagationMatrix.empty(PRESSURES, COUNTS)
        with pytest.raises(ProfilingError):
            interpolate_row(matrix, 0)

    def test_interpolate_row_linear(self):
        matrix = PropagationMatrix.empty([1.0], [0.0, 1.0, 2.0, 3.0, 4.0])
        matrix.set(0, 4, 2.0)
        interpolate_row(matrix, 0)
        assert matrix.get(0, 2) == pytest.approx(1.5)

    def test_interpolate_col_linear(self):
        matrix = PropagationMatrix.empty([1.0, 2.0, 3.0], [0.0, 1.0])
        matrix.set(0, 1, 1.2)
        matrix.set(2, 1, 1.6)
        interpolate_col(matrix, 1)
        assert matrix.get(1, 1) == pytest.approx(1.4)
