"""Tests for profiling bookkeeping."""

import numpy as np
import pytest

from repro.core.curves import PropagationMatrix
from repro.core.profiling.plan import (
    MeasurementOracle,
    ProfilingOutcome,
    ProfilingSession,
    total_settings_of,
)
from repro.errors import ProfilingError
from tests._synthetic import quiet_runner


@pytest.fixture
def oracle():
    return MeasurementOracle(quiet_runner(num_nodes=4), "app")


class TestMeasurementOracle:
    def test_trivial_settings_free(self, oracle):
        assert oracle.normalized(0.0, 3) == 1.0
        assert oracle.normalized(5.0, 0) == 1.0
        assert oracle.distinct_settings_measured == 0

    def test_caching(self, oracle):
        first = oracle.normalized(4.0, 2)
        runs_after_first = oracle.runner.measurement_count
        second = oracle.normalized(4.0, 2)
        assert first == second
        assert oracle.runner.measurement_count == runs_after_first
        assert oracle.distinct_settings_measured == 1


class TestProfilingSession:
    def test_tracks_distinct_cells(self, oracle):
        session = ProfilingSession(oracle)
        session.measure(4.0, 2)
        session.measure(4.0, 2)
        session.measure(8.0, 1)
        assert session.settings_measured == 2

    def test_trivial_cells_not_counted(self, oracle):
        session = ProfilingSession(oracle)
        session.measure(0.0, 2)
        session.measure(4.0, 0)
        assert session.settings_measured == 0

    def test_sessions_share_oracle_cache(self, oracle):
        first = ProfilingSession(oracle)
        value = first.measure(4.0, 2)
        second = ProfilingSession(oracle)
        assert second.measure(4.0, 2) == value
        assert second.settings_measured == 1


class TestProfilingOutcome:
    def _complete_matrix(self):
        return PropagationMatrix(
            [4.0, 8.0], [0.0, 1.0], np.array([[1.0, 1.2], [1.0, 1.5]])
        )

    def test_cost_percent(self):
        outcome = ProfilingOutcome(
            algorithm="x", workload="app",
            matrix=self._complete_matrix(),
            settings_measured=1, total_settings=2,
        )
        assert outcome.cost_percent == 50.0

    def test_incomplete_matrix_rejected(self):
        matrix = PropagationMatrix.empty([4.0], [0.0, 1.0])
        with pytest.raises(ProfilingError, match="unfilled"):
            ProfilingOutcome(
                algorithm="x", workload="app", matrix=matrix,
                settings_measured=0, total_settings=1,
            )

    def test_bad_counts_rejected(self):
        with pytest.raises(ProfilingError):
            ProfilingOutcome(
                algorithm="x", workload="app",
                matrix=self._complete_matrix(),
                settings_measured=5, total_settings=2,
            )

    def test_error_against_truth(self):
        truth = self._complete_matrix()
        estimate = truth.copy()
        estimate.set(0, 1, 1.32)  # 10% off the true 1.2
        outcome = ProfilingOutcome(
            algorithm="x", workload="app", matrix=estimate,
            settings_measured=2, total_settings=2,
        )
        assert outcome.error_against(truth) == pytest.approx(5.0)  # mean of 10%, 0%

    def test_error_shape_mismatch(self):
        other = PropagationMatrix(
            [4.0], [0.0, 1.0], np.array([[1.0, 1.2]])
        )
        outcome = ProfilingOutcome(
            algorithm="x", workload="app", matrix=self._complete_matrix(),
            settings_measured=2, total_settings=2,
        )
        with pytest.raises(ProfilingError):
            outcome.error_against(other)


def test_total_settings():
    matrix = PropagationMatrix.empty([1.0, 2.0, 3.0], [0.0, 1.0, 2.0])
    assert total_settings_of(matrix) == 6
