"""Tests for heterogeneity-policy selection."""

import numpy as np
import pytest

from repro._util import make_rng
from repro.core.profiling.evaluation import exhaustive_truth
from repro.core.profiling.plan import MeasurementOracle
from repro.core.profiling.policy_selection import (
    PolicyEvaluation,
    heterogeneous_space_size,
    sample_heterogeneous_config,
    select_policy,
)
from repro.errors import ProfilingError
from tests._synthetic import quiet_runner, synthetic_factory


class TestSpaceSize:
    def test_paper_number(self):
        # Section 3.3: 8 hosts, levels 0..8 -> 12,870 settings.
        assert heterogeneous_space_size(8, 8) == 12870

    def test_small_case(self):
        # Multisets of size 2 over {0, 1, 2}: C(4, 2) = 6.
        assert heterogeneous_space_size(2, 2) == 6

    def test_invalid(self):
        with pytest.raises(ProfilingError):
            heterogeneous_space_size(0, 8)


class TestSampling:
    def test_valid_configs(self):
        rng = make_rng(0)
        for _ in range(200):
            config = sample_heterogeneous_config(rng, 8, 8)
            assert len(config) == 8
            assert all(0 <= level <= 8 for level in config)
            assert list(config) == sorted(config, reverse=True)

    def test_covers_space(self):
        rng = make_rng(1)
        seen = {sample_heterogeneous_config(rng, 2, 2) for _ in range(500)}
        # All 6 multisets of size 2 over {0,1,2} should appear.
        assert len(seen) == 6

    def test_roughly_uniform(self):
        rng = make_rng(2)
        counts = {}
        n = 6000
        for _ in range(n):
            config = sample_heterogeneous_config(rng, 2, 2)
            counts[config] = counts.get(config, 0) + 1
        for config, count in counts.items():
            assert count / n == pytest.approx(1 / 6, abs=0.03), config


class TestSelectPolicy:
    def test_bsp_app_prefers_max_family(self):
        # A noise-free BSP app is exactly max-dominated, so the
        # max-family policies beat INTERPOLATE decisively.
        runner = quiet_runner(num_nodes=4, factory=synthetic_factory())
        oracle = MeasurementOracle(runner, "app")
        truth = exhaustive_truth(
            oracle, [float(p) for p in range(1, 9)], [float(c) for c in range(5)]
        )
        result = select_policy(runner, "app", truth, samples=25, seed=3)
        best = result.best
        interp = result.evaluation("INTERPOLATE")
        assert best.policy_name in {"N MAX", "N+1 MAX", "ALL MAX"}
        assert best.average_error < interp.average_error

    def test_sample_count_respected(self):
        runner = quiet_runner(num_nodes=4)
        oracle = MeasurementOracle(runner, "app")
        truth = exhaustive_truth(
            oracle, [float(p) for p in range(1, 9)], [float(c) for c in range(5)]
        )
        result = select_policy(runner, "app", truth, samples=10, seed=4)
        assert result.samples == 10
        for evaluation in result.evaluations:
            assert len(evaluation.errors_percent) == 10

    def test_invalid_samples(self):
        runner = quiet_runner(num_nodes=4)
        oracle = MeasurementOracle(runner, "app")
        truth = exhaustive_truth(oracle, [1.0], [0.0, 1.0])
        with pytest.raises(ProfilingError):
            select_policy(runner, "app", truth, samples=0)

    def test_unknown_policy_lookup(self):
        result_eval = PolicyEvaluation("N MAX", (1.0, 2.0))
        assert result_eval.average_error == 1.5
        assert result_eval.min_error == 1.0
        assert result_eval.max_error == 2.0
        assert result_eval.std_dev == pytest.approx(np.std([1, 2], ddof=1))


class TestPolicyEvaluationStats:
    def test_single_sample_std(self):
        assert PolicyEvaluation("N MAX", (3.0,)).std_dev == 0.0
