"""Tests for the profiler cost/accuracy comparison."""

import pytest

from repro.core.profiling.evaluation import (
    ALGORITHM_ORDER,
    ProfilerComparison,
    ProfilerScore,
    exhaustive_truth,
    run_profilers,
)
from tests.profiling.test_binary import AnalyticOracle, COUNTS, PRESSURES


class TestExhaustiveTruth:
    def test_measures_full_grid(self):
        oracle = AnalyticOracle()
        truth = exhaustive_truth(oracle, PRESSURES, COUNTS)
        assert truth.is_complete()
        assert oracle.calls == 64


class TestRunProfilers:
    def test_all_four_algorithms(self):
        outcomes = run_profilers(AnalyticOracle(), PRESSURES, COUNTS)
        assert set(outcomes) == set(ALGORITHM_ORDER)

    def test_every_outcome_complete(self):
        for outcome in run_profilers(AnalyticOracle(), PRESSURES, COUNTS).values():
            assert outcome.matrix.is_complete()

    def test_cost_ordering(self):
        # binary-optimized must be the cheapest; binary-brute is the
        # most expensive of the non-exhaustive algorithms (Table 3).
        outcomes = run_profilers(AnalyticOracle(), PRESSURES, COUNTS)
        assert (
            outcomes["binary-optimized"].settings_measured
            < outcomes["random-30%"].settings_measured
            < outcomes["random-50%"].settings_measured
        )


class TestProfilerComparison:
    def _comparison(self):
        scores = [
            ProfilerScore("binary-brute", "a", 60.0, 0.5),
            ProfilerScore("binary-brute", "b", 58.0, 0.7),
            ProfilerScore("binary-optimized", "a", 18.0, 3.0),
            ProfilerScore("binary-optimized", "b", 20.0, 3.4),
            ProfilerScore("random-50%", "a", 50.0, 5.0),
            ProfilerScore("random-50%", "b", 48.0, 5.6),
            ProfilerScore("random-30%", "a", 30.0, 13.0),
            ProfilerScore("random-30%", "b", 28.0, 14.0),
        ]
        return ProfilerComparison(tuple(scores))

    def test_averages(self):
        comparison = self._comparison()
        assert comparison.average_cost("binary-brute") == pytest.approx(59.0)
        assert comparison.average_error("binary-optimized") == pytest.approx(3.2)

    def test_table3_rows_in_paper_order(self):
        rows = self._comparison().table3_rows()
        assert [r[0] for r in rows] == list(ALGORITHM_ORDER)

    def test_by_algorithm(self):
        comparison = self._comparison()
        assert len(comparison.by_algorithm("random-30%")) == 2
