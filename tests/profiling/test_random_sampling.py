"""Tests for the random-sampling profiling baselines."""

import pytest

from repro.core.profiling.random_sampling import random_sampling
from repro.errors import ProfilingError
from tests.profiling.test_binary import AnalyticOracle, COUNTS, PRESSURES


class TestRandomSampling:
    def test_budget_respected(self):
        oracle = AnalyticOracle()
        outcome = random_sampling(oracle, PRESSURES, COUNTS, fraction=0.3, seed=1)
        assert outcome.settings_measured == pytest.approx(0.3 * 64, abs=1)
        assert outcome.matrix.is_complete()

    def test_mandatory_all_hosts_cells_always_measured(self):
        oracle = AnalyticOracle()
        random_sampling(oracle, PRESSURES, COUNTS, fraction=0.2, seed=2)
        # The all-hosts column was actually measured, not interpolated:
        # each of the 8 rows required one oracle call at count 8.
        assert oracle.calls >= len(PRESSURES)

    def test_full_fraction_measures_everything_interior(self):
        oracle = AnalyticOracle()
        outcome = random_sampling(oracle, PRESSURES, COUNTS, fraction=1.0, seed=3)
        # Column m is mandatory; interior cells fill the budget.
        assert outcome.cost_percent == pytest.approx(100.0, abs=2.0)

    def test_deterministic_per_seed(self):
        a = random_sampling(AnalyticOracle(), PRESSURES, COUNTS, fraction=0.3, seed=4)
        b = random_sampling(AnalyticOracle(), PRESSURES, COUNTS, fraction=0.3, seed=4)
        assert (a.matrix.values == b.matrix.values).all()

    def test_higher_fraction_lower_error(self):
        oracle = AnalyticOracle(fn=lambda p, k: 1.0 + (p / 8.0) * (k / 8.0) ** 0.3)
        truth = oracle.truth()
        low = random_sampling(oracle, PRESSURES, COUNTS, fraction=0.2, seed=5)
        high = random_sampling(oracle, PRESSURES, COUNTS, fraction=0.8, seed=5)
        assert high.error_against(truth) <= low.error_against(truth)

    def test_invalid_fraction(self):
        with pytest.raises(ProfilingError):
            random_sampling(AnalyticOracle(), PRESSURES, COUNTS, fraction=0.0)
        with pytest.raises(ProfilingError):
            random_sampling(AnalyticOracle(), PRESSURES, COUNTS, fraction=1.5)
