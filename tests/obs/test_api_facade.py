"""Tests for the `repro.api` facade and the legacy import shims."""

import warnings

import pytest

import repro
import repro.api as api


class TestFacade:
    def test_init_reexports_api_one_to_one(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name), name

    def test_all_matches_api_plus_version(self):
        assert set(repro.__all__) == set(api.__all__) | {"__version__"}

    def test_facade_covers_every_concern(self):
        # One spot check per concern the facade documents.
        assert api.ClusterRunner is not None  # measurement
        assert api.build_model is not None  # model building
        assert api.InterferenceModel.predict is not None  # prediction
        assert api.SimulatedAnnealingPlacer is not None  # placement
        assert api.ConsolidationService is not None  # service
        assert api.recording is not None  # observability
        assert issubclass(api.ModelError, api.ReproError)  # errors

    def test_version_lives_in_init_not_api(self):
        assert isinstance(repro.__version__, str)
        assert "__version__" not in api.__all__


class TestLegacyShims:
    @pytest.fixture(autouse=True)
    def _reset_shim_state(self):
        # Each test sees the warn-once machinery fresh.
        saved = set(repro._LEGACY_WARNED)
        for name in repro._LEGACY_ALIASES:
            repro._LEGACY_WARNED.discard(name)
            repro.__dict__.pop(name, None)
        yield
        repro._LEGACY_WARNED |= saved

    def test_legacy_names_resolve_to_their_new_homes(self):
        from repro.apps import make_bubble
        from repro.cluster import Cluster
        from repro.units import MAX_PRESSURE, NUM_PRESSURE_LEVELS

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.Cluster is Cluster
            assert repro.make_bubble is make_bubble
            assert repro.MAX_PRESSURE == MAX_PRESSURE
            assert repro.NUM_PRESSURE_LEVELS == NUM_PRESSURE_LEVELS

    def test_each_symbol_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = repro.__getattr__("Cluster")
            second = repro.__getattr__("Cluster")
            repro.__getattr__("make_bubble")
        assert first is second
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
        assert "Cluster" in str(deprecations[0].message)
        assert "make_bubble" in str(deprecations[1].message)

    def test_repeat_access_skips_getattr_via_globals_cache(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            value = repro.Cluster
        # After first resolution the object is cached in the module
        # namespace, so attribute access no longer goes through
        # __getattr__ (and thus can never warn again).
        assert repro.__dict__["Cluster"] is value

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'Nonsense'"):
            repro.Nonsense
