"""Tests for the recorder core: no-op path, nesting, installation."""

import pytest

from repro.obs import recorder as _obs
from repro.obs.recorder import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    TraceRecorder,
    current,
    install,
    recording,
)


class TestNullRecorder:
    """The disabled path: shared singletons, zero state, no-ops."""

    def test_default_recorder_is_the_null_singleton(self):
        assert current() is NULL_RECORDER
        assert _obs.RECORDER is NULL_RECORDER
        assert not NULL_RECORDER.enabled

    def test_span_returns_the_shared_null_span(self):
        # No allocation on the disabled path: every call hands back the
        # same reusable context manager.
        assert NULL_RECORDER.span("a") is NULL_SPAN
        assert NULL_RECORDER.span("b", workload="M.lmps") is NULL_SPAN

    def test_null_span_supports_the_full_span_protocol(self):
        with NULL_RECORDER.span("outer", x=1) as span:
            assert span.set(y=2) is span
            assert span.set_sim(3.5) is span

    def test_all_metric_calls_are_noops(self):
        NULL_RECORDER.count("c")
        NULL_RECORDER.count("c", 5)
        NULL_RECORDER.gauge("g", 1.0)
        NULL_RECORDER.observe("h", 2.0)
        NULL_RECORDER.log("hello")
        NULL_RECORDER.log("world", stream="err")

    def test_null_recorder_is_stateless(self):
        # __slots__ = () — nothing can accumulate per call.
        assert NullRecorder.__slots__ == ()
        with pytest.raises(AttributeError):
            NULL_RECORDER.spans = []  # type: ignore[attr-defined]


class TestTraceRecorder:
    def test_span_nesting_links_parents(self):
        rec = TraceRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                pass
            with rec.span("inner") as inner2:
                pass
        outer_rec, inner_rec, inner2_rec = rec.spans
        assert outer_rec.name == "outer" and outer_rec.parent_id is None
        assert inner_rec.parent_id == outer_rec.span_id
        assert inner2_rec.parent_id == outer_rec.span_id
        assert outer_rec.seq_start < inner_rec.seq_start
        assert inner_rec.seq_end < inner2_rec.seq_start
        assert outer_rec.seq_end > inner2_rec.seq_end

    def test_span_attrs_and_sim_time(self):
        rec = TraceRecorder()
        with rec.span("s", workload="M.lmps") as span:
            span.set(probes=3)
            span.set_sim(41.25)
        (record,) = rec.spans
        assert record.attrs == {"workload": "M.lmps", "probes": 3}
        assert record.sim_elapsed == 41.25
        assert record.wall_ns is not None and record.wall_ns >= 0

    def test_counters_gauges_histograms(self):
        rec = TraceRecorder()
        rec.count("hits")
        rec.count("hits", 4)
        rec.gauge("depth", 2.0)
        rec.gauge("depth", 7.0)
        rec.observe("lat", 1.0)
        rec.observe("lat", 3.0)
        assert rec.counter("hits") == 5
        assert rec.counter("never") == 0
        assert rec.gauges["depth"] == 7.0
        assert rec.histograms["lat"] == [1.0, 3.0]

    def test_spans_named(self):
        rec = TraceRecorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        with rec.span("a"):
            pass
        assert [s.name for s in rec.spans_named("a")] == ["a", "a"]


class TestInstallation:
    def test_install_returns_previous_and_takes_effect_via_module(self):
        rec = TraceRecorder()
        previous = install(rec)
        try:
            assert previous is NULL_RECORDER
            assert _obs.RECORDER is rec
            _obs.RECORDER.count("seen")
            assert rec.counter("seen") == 1
        finally:
            install(previous)
        assert _obs.RECORDER is NULL_RECORDER

    def test_recording_context_restores_on_exit(self):
        with recording() as rec:
            assert _obs.RECORDER is rec
            assert rec.enabled
            with _obs.RECORDER.span("x"):
                pass
        assert _obs.RECORDER is NULL_RECORDER
        assert len(rec.spans) == 1

    def test_recording_accepts_an_existing_recorder(self):
        mine = TraceRecorder()
        with recording(mine) as rec:
            assert rec is mine

    def test_recording_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert _obs.RECORDER is NULL_RECORDER


class TestDisabledOverheadPath:
    def test_instrumented_code_records_nothing_when_disabled(self):
        # The exact pattern used at hot call sites: module attribute
        # lookup plus a no-op call.  Nothing observable happens.
        from repro.sim.runner import ClusterRunner

        runner = ClusterRunner(base_seed=3)
        assert _obs.RECORDER is NULL_RECORDER
        runner.solo_time("M.lmps")
        # Installing a recorder *afterwards* shows a clean slate: the
        # disabled run left no residue anywhere.
        with recording() as rec:
            pass
        assert rec.spans == [] and rec.counters == {}
