"""Golden tests for `--trace` on the CLI and `repro trace summarize`."""

import json

import pytest

from repro.cli import main
from repro.experiments.registry import REGISTRY, ExperimentEntry
from repro.obs import recorder as _obs
from repro.obs.recorder import NULL_RECORDER
from repro.obs.summary import (
    daemon_accounting,
    load_trace,
    probe_accounting,
    summarize_text,
)

SERVE_FAST = [
    "serve",
    "--epochs", "2",
    "--seed", "9",
    "--workloads", "M.lmps", "H.KM",
    "--policy-samples", "5",
]


@pytest.fixture
def tiny_experiment(monkeypatch):
    """A fast experiment so `repro run` tests stay quick."""

    def _run():
        with _obs.RECORDER.span("tiny.work") as span:
            span.set_sim(1.0)
        _obs.RECORDER.count("tiny.calls")
        return "ok"

    entry = ExperimentEntry(
        experiment_id="tinytest",
        paper_artifact="Test artifact",
        description="fast experiment for trace tests",
        run=_run,
        render=lambda result: f"result: {result}",
    )
    monkeypatch.setitem(REGISTRY, "tinytest", entry)
    return entry


class TestTraceFlag:
    def test_run_with_trace_produces_a_loadable_trace(
        self, tmp_path, capsys, tiny_experiment
    ):
        path = str(tmp_path / "run.json")
        assert main(["run", "tinytest", "--trace", path]) == 0
        captured = capsys.readouterr()
        assert "result: ok" in captured.out
        assert f"trace written to {path}" in captured.err
        payload = load_trace(path)
        names = [span["name"] for span in payload["spans"]]
        assert "tiny.work" in names
        assert payload["counters"]["tiny.calls"] == 1

    def test_trace_flag_works_at_top_level_too(
        self, tmp_path, capsys, tiny_experiment
    ):
        path = str(tmp_path / "run.json")
        assert main(["--trace", path, "run", "tinytest"]) == 0
        assert load_trace(path)["counters"]["tiny.calls"] == 1

    def test_recorder_uninstalled_after_main(self, tmp_path, tiny_experiment):
        path = str(tmp_path / "run.json")
        main(["run", "tinytest", "--trace", path])
        assert _obs.RECORDER is NULL_RECORDER

    def test_recorder_uninstalled_even_on_error(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        code = main(
            ["predict", "--model", str(tmp_path / "missing.json"),
             "--workload", "M.lmps", "--trace", path]
        )
        assert code == 1
        assert _obs.RECORDER is NULL_RECORDER

    def test_without_trace_nothing_is_written(self, tmp_path, capsys, tiny_experiment):
        assert main(["run", "tinytest"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestServeTraceGolden:
    def test_serve_trace_is_byte_identical_across_runs(self, tmp_path, capsys):
        first = str(tmp_path / "a.json")
        second = str(tmp_path / "b.json")
        assert main(SERVE_FAST + ["--trace", first]) == 0
        assert main(SERVE_FAST + ["--trace", second]) == 0
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()

    def test_serve_trace_carries_all_four_layers(self, tmp_path, capsys):
        path = str(tmp_path / "day.json")
        assert main(SERVE_FAST + ["--trace", path]) == 0
        payload = load_trace(path)
        names = {span["name"] for span in payload["spans"]}
        # One representative span per instrumented layer.
        assert "measure.setting" in names  # sim runner
        assert "profile.probe" in names  # profilers
        assert "anneal.restart" in names  # placement search
        assert "service.epoch" in names  # service loop
        assert payload["counters"]["engine.runs"] > 0  # engine
        assert payload["counters"]["service.epochs"] == 2


class TestTraceSummarize:
    def test_summarize_renders_rollups_and_table3(self, tmp_path, capsys):
        path = str(tmp_path / "day.json")
        main(SERVE_FAST + ["--trace", path])
        capsys.readouterr()
        assert main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "Spans:" in out
        assert "service.epoch" in out
        assert "Profiling cost (Table 3" in out
        assert "M.lmps" in out and "H.KM" in out

    def test_summarize_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("not a trace")
        assert main(["trace", "summarize", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_daemon_accounting_lists_counters_and_gauges(self):
        payload = {
            "spans": [],
            "counters": {
                "daemon.commits": 6,
                "daemon.claims": 8,
                "engine.runs": 3,
            },
            "gauges": {"daemon.queue_depth": 2, "other.gauge": 1},
        }
        rows = daemon_accounting(payload)
        assert rows == [
            ("daemon.claims", 8),
            ("daemon.commits", 6),
            ("daemon.queue_depth (gauge)", 2),
        ]
        text = summarize_text(payload)
        assert "Daemon (daemon.* counters and gauges):" in text
        assert "daemon.queue_depth (gauge)" in text

    def test_flat_traces_have_no_daemon_section(self):
        payload = {"spans": [], "counters": {"engine.runs": 3}}
        assert daemon_accounting(payload) == []
        assert "Daemon" not in summarize_text(payload)

    def test_probe_accounting_matches_builder_report(self, tmp_path, capsys):
        from repro.core.builder import build_model
        from repro.sim.runner import ClusterRunner

        path = str(tmp_path / "profile.jsonl")
        assert main(
            ["profile", "M.lmps", "--policy-samples", "3", "--seed", "4",
             "--trace", path]
        ) == 0
        report = build_model(
            ClusterRunner(base_seed=4), ["M.lmps"], policy_samples=3, seed=4
        )
        outcome = report.profiling_outcomes["M.lmps"]
        rows = probe_accounting(load_trace(path))
        assert ("M.lmps", "binary-optimized", outcome.settings_measured,
                outcome.total_settings) == rows[0][:4]


class TestOutputAlias:
    def test_output_and_out_both_accepted(self, tmp_path, capsys):
        for flag in ("--output", "--out"):
            model_path = str(tmp_path / f"model{flag.strip('-')}.json")
            assert main(
                ["profile", "M.lmps", flag, model_path,
                 "--policy-samples", "3", "--seed", "4"]
            ) == 0
            with open(model_path, "r", encoding="utf-8") as handle:
                assert "M.lmps" in json.load(handle)["profiles"]
