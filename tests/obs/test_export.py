"""Tests for trace export: byte stability, both formats, round-trips."""

import json

from repro.core.builder import build_model
from repro.obs.recorder import TraceRecorder, recording
from repro.obs.sinks import render_trace, to_chrome_trace, to_jsonl, write_trace
from repro.obs.summary import load_trace, probe_accounting, span_rollup
from repro.sim.runner import ClusterRunner


def _sample_recorder() -> TraceRecorder:
    rec = TraceRecorder()
    with rec.span("outer", workload="M.lmps"):
        with rec.span("inner", rep=0) as inner:
            inner.set_sim(12.5)
        rec.count("hits", 3)
        rec.observe("lat", 1.0)
        rec.observe("lat", 2.0)
        rec.gauge("depth", 4.0)
        rec.log("hello")
    return rec


def _profiled_recorder(seed: int) -> TraceRecorder:
    with recording() as rec:
        runner = ClusterRunner(base_seed=seed)
        build_model(runner, ["M.lmps"], policy_samples=3, seed=seed)
    return rec


class TestDeterministicExports:
    def test_jsonl_is_byte_stable_across_runs(self):
        first = to_jsonl(_profiled_recorder(4))
        second = to_jsonl(_profiled_recorder(4))
        assert first == second

    def test_chrome_trace_is_byte_stable_across_runs(self):
        first = json.dumps(to_chrome_trace(_profiled_recorder(4)), sort_keys=True)
        second = json.dumps(to_chrome_trace(_profiled_recorder(4)), sort_keys=True)
        assert first == second

    def test_deterministic_jsonl_excludes_wall_time(self):
        text = to_jsonl(_sample_recorder())
        assert "wall" not in text
        assert '"type": "trace"' in text.splitlines()[0]

    def test_wall_mode_includes_wall_time(self):
        text = to_jsonl(_sample_recorder(), deterministic=False)
        assert "wall_us" in text


class TestChromeTraceShape:
    def test_trace_events_are_complete_events(self):
        document = to_chrome_trace(_sample_recorder())
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 1
        names = {event["name"] for event in events}
        assert names == {"outer", "inner"}

    def test_metrics_land_in_other_data(self):
        other = to_chrome_trace(_sample_recorder())["otherData"]
        assert other["counters"] == {"hits": 3}
        assert other["gauges"] == {"depth": 4.0}
        assert other["histograms"]["lat"]["count"] == 2
        assert other["logs"][0]["message"] == "hello"


class TestRenderAndLoad:
    def test_suffix_selects_format(self, tmp_path):
        rec = _sample_recorder()
        jsonl = render_trace(rec, "x.jsonl")
        chrome = render_trace(rec, "x.json")
        assert jsonl.splitlines()[0] == '{"type": "trace", "version": 1}'
        assert json.loads(chrome)["traceEvents"]

    def test_roundtrip_both_formats(self, tmp_path):
        rec = _sample_recorder()
        for name in ("t.jsonl", "t.json"):
            path = str(tmp_path / name)
            write_trace(rec, path)
            payload = load_trace(path)
            rollup = {row[0]: row for row in span_rollup(payload)}
            assert set(rollup) == {"outer", "inner"}
            assert rollup["inner"][1] == 1  # count
            assert rollup["inner"][3] == 12.5  # sim time
            assert payload["counters"]["hits"] == 3


class TestProbeAccounting:
    def test_table3_costs_derive_from_probe_spans_alone(self, tmp_path):
        runner = ClusterRunner(base_seed=4)
        with recording() as rec:
            report = build_model(runner, ["M.lmps"], policy_samples=3, seed=4)
        path = str(tmp_path / "trace.json")
        write_trace(rec, path)
        rows = probe_accounting(load_trace(path))
        assert len(rows) == 1
        workload, algorithm, probes, grid, cost = rows[0]
        outcome = report.profiling_outcomes["M.lmps"]
        assert workload == "M.lmps"
        assert algorithm == "binary-optimized"
        assert probes == outcome.settings_measured
        assert grid == outcome.total_settings
        assert cost == round(outcome.cost_percent, 6)
