#!/usr/bin/env python3
"""Quickstart: profile two applications and predict their interference.

Builds an interference model for lammps and GemsFDTD on the simulated
8-node testbed, then answers the questions the paper's model exists
for: how slow does each application get when a given number of nodes
are under a given interference pressure — and what happens when the two
applications are co-located with each other?

Run:
    python examples/quickstart.py
"""

from repro import ClusterRunner, build_model, save_model

WORKLOADS = ["M.lmps", "M.Gems"]


def main() -> None:
    runner = ClusterRunner()
    print("Profiling", ", ".join(WORKLOADS), "on the 8-node testbed...")
    report = build_model(runner, WORKLOADS, policy_samples=20, seed=1)
    model = report.model

    print("\nPer-application profiles:")
    for abbrev in WORKLOADS:
        profile = model.profile(abbrev)
        outcome = report.profiling_outcomes[abbrev]
        print(
            f"  {abbrev}: bubble score {profile.bubble_score:.1f}, "
            f"heterogeneity policy {profile.policy_name}, "
            f"profiled at {outcome.cost_percent:.0f}% of exhaustive cost"
        )

    print("\nPredicted slowdown of M.lmps under homogeneous interference:")
    for count in (1, 4, 8):
        predicted = model.predict_homogeneous("M.lmps", pressure=6.0, count=count)
        print(f"  {count} node(s) at bubble pressure 6: {predicted:.2f}x")

    print("\nPredicted slowdown under a heterogeneous pressure vector:")
    vector = [6.0, 3.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]
    predicted = model.predict_heterogeneous("M.lmps", vector)
    print(f"  pressures {vector} -> {predicted:.2f}x")

    print("\nCo-locating the two applications on every node:")
    for target, co_runner in (("M.lmps", "M.Gems"), ("M.Gems", "M.lmps")):
        score = model.profile(co_runner).bubble_score
        predicted = model.predict_heterogeneous(target, [score] * runner.num_nodes)
        actual = runner.corun_pair(target, co_runner)[f"{target}#0"]
        print(
            f"  {target} next to {co_runner}: predicted {predicted:.2f}x, "
            f"measured {actual:.2f}x"
        )

    save_model(model, "quickstart_model.json")
    print("\nModel saved to quickstart_model.json")


if __name__ == "__main__":
    main()
