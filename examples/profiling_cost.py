#!/usr/bin/env python3
"""Profiling-cost study: what does each profiling algorithm cost?

Reproduces Section 4's trade-off interactively for one workload:
exhaustive profiling as ground truth, then binary-brute,
binary-optimized, and the random baselines, reporting measured settings
and matrix error — plus the binary threshold knob's effect.

Run:
    python examples/profiling_cost.py [workload]
"""

import sys

from repro import ClusterRunner
from repro.analysis.reporting import format_table
from repro.core.builder import default_counts, default_pressures
from repro.core.profiling import (
    MeasurementOracle,
    binary_optimized,
    exhaustive_truth,
    run_profilers,
)

DEFAULT_WORKLOAD = "M.milc"


def main() -> None:
    abbrev = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_WORKLOAD
    runner = ClusterRunner()
    pressures, counts = default_pressures(), default_counts(runner.num_nodes)

    oracle = MeasurementOracle(runner, abbrev)
    print(f"Measuring the exhaustive {len(pressures)}x{len(counts) - 1} "
          f"grid for {abbrev} (the baseline the paper wants to avoid)...")
    truth = exhaustive_truth(oracle, pressures, counts)

    outcomes = run_profilers(oracle, pressures, counts)
    rows = [
        (name, outcome.settings_measured, outcome.cost_percent,
         outcome.error_against(truth))
        for name, outcome in sorted(outcomes.items())
    ]
    print("\n" + format_table(
        ["Algorithm", "Settings measured", "Cost (%)", "Error (%)"],
        rows,
    ))

    print("\nBinary-optimized threshold sweep:")
    sweep_rows = []
    for threshold in (0.02, 0.10, 0.30, 0.60):
        sweep_oracle = MeasurementOracle(runner, abbrev)
        outcome = binary_optimized(
            sweep_oracle, pressures, counts, threshold=threshold
        )
        sweep_rows.append(
            (threshold, outcome.cost_percent, outcome.error_against(truth))
        )
    print(format_table(["Threshold", "Cost (%)", "Error (%)"], sweep_rows))

    print("\nThe paper's conclusion reproduces: binary-optimized buys "
          "near-brute accuracy for a fraction of the measurements.")


if __name__ == "__main__":
    main()
