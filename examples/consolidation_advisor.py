#!/usr/bin/env python3
"""Consolidation advisor: who can safely share nodes with my job?

A downstream use of the interference model the paper motivates: given a
distributed application and a slowdown budget, rank candidate
co-runners by their predicted impact and report which consolidations
stay within budget.  The ranking uses only profiled artifacts (bubble
scores + sensitivity curves) — no co-run of the actual pair is needed,
which is the whole point of the bubble normalization.

Run:
    python examples/consolidation_advisor.py [target] [budget%]
e.g.
    python examples/consolidation_advisor.py M.lu 15
"""

import sys

from repro import BATCH_WORKLOADS, ClusterRunner, build_batch_profiles, build_model
from repro.analysis.reporting import format_table

DEFAULT_TARGET = "M.lu"
DEFAULT_BUDGET_PERCENT = 15.0


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_TARGET
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_BUDGET_PERCENT

    runner = ClusterRunner()
    print(f"Profiling {target} and the candidate co-runners...")
    report = build_model(runner, [target], policy_samples=20, seed=3)
    model = report.model
    build_batch_profiles(runner, model, BATCH_WORKLOADS)

    limit = 1.0 + budget / 100.0
    rows = []
    for candidate in BATCH_WORKLOADS:
        score = model.profile(candidate).bubble_score
        # Full co-location: the candidate shares every node.
        predicted = model.predict_heterogeneous(
            target, [score] * runner.num_nodes
        )
        verdict = "OK" if predicted <= limit else "over budget"
        rows.append((candidate, score, predicted, verdict))
    rows.sort(key=lambda row: row[2])

    print(f"\nPredicted slowdown of {target} per co-runner "
          f"(budget: {budget:.0f}% -> limit {limit:.2f}x):\n")
    print(
        format_table(
            ["Co-runner", "Bubble score", "Predicted slowdown", "Verdict"],
            rows,
            float_format="{:.2f}",
        )
    )

    safe = [row[0] for row in rows if row[2] <= limit]
    print(
        f"\n{len(safe)} of {len(rows)} candidates fit the budget: "
        + (", ".join(safe) if safe else "none")
    )
    # Spot-check the best candidate against a real co-run.
    best = rows[0][0]
    actual = runner.corun_pair(target, best)[f"{target}#0"]
    print(f"Spot check — measured {target} next to {best}: {actual:.2f}x "
          f"(predicted {rows[0][2]:.2f}x)")


if __name__ == "__main__":
    main()
