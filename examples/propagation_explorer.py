#!/usr/bin/env python3
"""Draw Figure 3-style propagation panels in the terminal.

Measures a workload's full propagation grid and renders the sensitivity
curves as an ASCII chart, making the three propagation classes of
Section 3.2 visible side by side.

Run:
    python examples/propagation_explorer.py [workload ...]
e.g.
    python examples/propagation_explorer.py M.milc M.Gems H.KM
"""

import sys

from repro import ClusterRunner
from repro.analysis.charts import propagation_chart
from repro.apps.catalog import catalog_entry
from repro.core.builder import default_counts, default_pressures
from repro.core.profiling import MeasurementOracle, exhaustive_truth

DEFAULT_PANELS = ("M.milc", "M.Gems", "H.KM")


def main() -> None:
    workloads = sys.argv[1:] or list(DEFAULT_PANELS)
    runner = ClusterRunner()
    pressures = default_pressures()
    counts = default_counts(runner.num_nodes)

    for abbrev in workloads:
        entry = catalog_entry(abbrev)
        print(f"\n=== {abbrev} ({entry.name}, "
              f"{entry.factory().spec.propagation_class.value} propagation) ===\n")
        oracle = MeasurementOracle(runner, abbrev)
        matrix = exhaustive_truth(oracle, pressures, counts)
        print(propagation_chart(matrix))


if __name__ == "__main__":
    main()
