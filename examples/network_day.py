#!/usr/bin/env python3
"""Placing a network-heavy tenant with the per-resource model.

Scenario: a BFS graph job (``D.BFS``) runs under a QoS bound.  Its
candidate co-runners are two loud compute tenants (``M.milc``,
``C.libq``) and a parameter-server trainer (``D.PS``) that looks
*quiet* to the compute-only interference model — it barely touches the
shared cache or memory bandwidth, so its bubble score is low.  The
compute-only placer therefore shields the QoS tenant with ``D.PS``.

But every iteration ``D.PS`` pushes gradient traffic through its
hosts' uplinks, and ``D.BFS``'s frontier synchronization rides the
same links.  The per-resource model carries that second contention
domain — a per-link propagation matrix and a network bubble score —
so it predicts the co-location as a QoS violation and maps the
network-heavy tenant away, accepting a mildly loud *compute*
neighbour instead.  The simulated ground truth (where link contention
is real regardless of the predicting model) settles who was right.

Run:
    python examples/network_day.py
"""

from repro import (
    AnnealingSchedule,
    ClusterRunner,
    InstanceSpec,
    InterferenceModel,
    QoSAwarePlacer,
    QoSConstraint,
    build_batch_profiles,
    build_model,
    build_network_profiles,
)

#: The QoS tenant: link-sensitive frontier synchronization.
QOS_TENANT = "D.BFS"
#: The network-heavy tenant: low compute bubble score, high link score.
NETWORK_TENANT = "D.PS"
#: Loud compute tenants the placer must also seat.
LOUD_COMPUTE = ["M.milc"]
LOUD_BATCH = ["C.libq"]

QOS_BOUND = 1.15


def neighbours(placement, key: str) -> str:
    partners = sorted(
        {
            workload
            for workloads in placement.co_runner_workloads(key).values()
            for workload in workloads
        }
    )
    return ", ".join(partners) if partners else "(none)"


def main() -> None:
    runner = ClusterRunner()
    distributed = [QOS_TENANT, NETWORK_TENANT] + LOUD_COMPUTE
    print("Profiling the compute domain (one-time cost)...")
    report = build_model(runner, distributed, policy_samples=20, seed=2, span=4)
    model = report.model
    build_batch_profiles(runner, model, LOUD_BATCH, span=4)

    # Snapshot the scalar-era model before the network campaign: this
    # is exactly what every pre-network consumer sees.
    compute_only = InterferenceModel.from_dict(model.to_dict())

    print("Profiling the network domain for the datacenter tenants...")
    build_network_profiles(
        runner, model, [QOS_TENANT, NETWORK_TENANT], span=4
    )

    print("\nPer-resource view of the tenants:")
    print(f"  {'workload':10s} {'compute score':>14s} {'network score':>14s}")
    for abbrev in distributed + LOUD_BATCH:
        profile = model.profile(abbrev)
        print(
            f"  {abbrev:10s} {profile.bubble_score:14.2f} "
            f"{profile.network_score:14.2f}"
        )
    print(
        f"\n{NETWORK_TENANT}'s compute score is low — the compute-only "
        "model sees the ideal quiet neighbour for a QoS tenant."
    )

    instances = [
        InstanceSpec(f"{QOS_TENANT}#0", QOS_TENANT, num_units=4),
        InstanceSpec(f"{NETWORK_TENANT}#1", NETWORK_TENANT, num_units=4),
        InstanceSpec("M.milc#2", "M.milc", num_units=4),
        InstanceSpec("C.libq#3", "C.libq", num_units=4),
    ]
    constraint = QoSConstraint(
        f"{QOS_TENANT}#0", max_normalized_time=QOS_BOUND
    )
    schedule = AnnealingSchedule(iterations=1500, restarts=2)

    for label, prediction_model in (
        ("compute-only model", compute_only),
        ("per-resource model", model),
    ):
        placer = QoSAwarePlacer(
            prediction_model, runner.spec, [constraint],
            schedule=schedule, seed=11,
        )
        result = placer.place(instances)
        measured = runner.run_deployments(result.placement.deployments())
        status = (
            "SATISFIED" if constraint.satisfied_by(measured) else "VIOLATED"
        )
        print(f"\nPlacement chosen by the {label}:")
        print(
            f"  {QOS_TENANT} neighbours: "
            f"{neighbours(result.placement, constraint.instance_key)}"
        )
        print(
            f"  predicted {QOS_TENANT} time: "
            f"{result.predictions[constraint.instance_key]:.3f} "
            f"(bound {QOS_BOUND})"
        )
        print(
            f"  measured  {QOS_TENANT} time: "
            f"{measured[constraint.instance_key]:.3f}  -> QoS {status}"
        )


if __name__ == "__main__":
    main()
