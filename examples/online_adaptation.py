#!/usr/bin/env python3
"""Online model refinement in a production loop.

Implements the paper's future-work direction (Section 8): a scheduler
keeps the static interference model as its prior and folds each
production measurement back into per-workload corrections, so
systematic bias decays away without a new profiling campaign.

The script streams pairwise co-runs of M.milc against an assortment of
co-runners, reporting the static and online models' running errors.

Run:
    python examples/online_adaptation.py
"""

from repro import ClusterRunner, build_model
from repro.analysis.errors import absolute_percent_error
from repro.core.online import OnlineModel

TARGET = "M.milc"
STREAM = ["C.libq", "C.mcf", "M.Gems", "C.sopl", "C.xbmk", "C.gcc"] * 3


def main() -> None:
    runner = ClusterRunner()
    print(f"Profiling {TARGET} and its co-runners (one-time cost)...")
    workloads = [TARGET] + sorted(set(STREAM))
    model = build_model(runner, workloads, policy_samples=15, seed=6).model
    online = OnlineModel(model, learning_rate=0.3, max_correction=0.3)

    print(f"\nStreaming {len(STREAM)} co-run observations of {TARGET}:\n")
    print(f"{'#':>3} {'co-runner':10} {'measured':>9} "
          f"{'static err%':>12} {'online err%':>12}")
    static_total = online_total = 0.0
    for index, co_runner in enumerate(STREAM, start=1):
        score = model.profile(co_runner).bubble_score
        vector = [score] * runner.num_nodes
        static_prediction = model.predict_heterogeneous(TARGET, vector)
        online_prediction = online.predict_heterogeneous(TARGET, vector)
        measured = runner.corun_pair(TARGET, co_runner, rep=index)[f"{TARGET}#0"]
        static_error = absolute_percent_error(static_prediction, measured)
        online_error = absolute_percent_error(online_prediction, measured)
        static_total += static_error
        online_total += online_error
        online.observe(TARGET, online_prediction, measured)
        print(f"{index:>3} {co_runner:10} {measured:9.3f} "
              f"{static_error:12.1f} {online_error:12.1f}")

    n = len(STREAM)
    state = online.correction(TARGET)
    print(f"\nMean error: static {static_total / n:.1f}%  "
          f"online {online_total / n:.1f}%")
    print(f"Learned correction for {TARGET}: x{state.factor:.3f} "
          f"after {state.observations} observations")


if __name__ == "__main__":
    main()
