#!/usr/bin/env python3
"""The sharded 1000-node traffic day, end to end.

Walks through the scale layer's reference scenario: 1000 nodes sharded
into 20 cells, a Poisson stream averaging 400 jobs per epoch, the
headroom router spreading each epoch's wave across cells, and the
global QoS coordinator migrating tenants out of collapsing cells.  The
model is profiled once on the paper's 8-node testbed — profiling cost
does not scale with the serving cluster — and every cell shares it.

The full 25-epoch day takes a few minutes (it really places ~10,000
jobs); pass a smaller epoch count for a quick look.

Run:
    python examples/scale_day.py [epochs] [cell_workers]
e.g.
    python examples/scale_day.py 8 4
"""

import sys
import time

from repro.analysis.reporting import format_table
from repro.scale import SCALE_DAY_EPOCHS, scale_day_service


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else SCALE_DAY_EPOCHS
    cell_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    print("Profiling the model on the 8-node testbed and sharding "
          "1000 nodes into 20 cells...")
    service = scale_day_service(cell_workers=cell_workers)

    print(f"Running {epochs} epochs of the seeded day "
          f"({'serial cells' if not cell_workers else f'{cell_workers} cell workers'}):\n")
    for epoch in range(epochs):
        start = time.perf_counter()
        service.run_epoch(epoch)
        elapsed = time.perf_counter() - start
        snap = service.snapshots[-1]
        counts = service.log.counts()
        print(f"  epoch {epoch:2d}: {snap.running_jobs:4d} running, "
              f"util {snap.utilization:.2f}, "
              f"{counts.get('cell_migrate', 0):3d} cross-cell moves so far "
              f"({elapsed:.1f}s)")

    snap = service.snapshots[-1]
    counts = service.log.counts()
    print(f"\nDay totals after {epochs} epochs:")
    print(f"  arrivals {counts.get('arrival', 0)}, "
          f"admitted {counts.get('admit', 0)}, "
          f"rejected {counts.get('reject', 0)}, "
          f"QoS violations {counts.get('qos_violation', 0)}")

    print("\nPer-cell state at the end of the day:\n")
    rows = [
        (
            cell["cell"],
            cell["running_jobs"],
            cell["queued_jobs"],
            cell["utilization"],
            cell["worst_qos_margin"]
            if cell["worst_qos_margin"] is not None
            else float("nan"),
            cell["migrations_in_total"],
            cell["migrations_out_total"],
        )
        for cell in (snap.cells or ())
    ]
    print(
        format_table(
            ["Cell", "Running", "Queued", "Util", "Worst margin", "In", "Out"],
            rows,
            float_format="{:.2f}",
        )
    )


if __name__ == "__main__":
    main()
