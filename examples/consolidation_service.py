#!/usr/bin/env python3
"""A day in the life of the online consolidation service.

Drives `ConsolidationService` through a seeded traffic day: jobs arrive
with Poisson timing and per-job QoS targets, the admission controller
places each one only where every mission-critical tenant's predicted
bound still holds, epochs fold measured times back into the online
model, and the rescheduler migrates tenants when the predicted gain
pays for the moved units.

The same day is available from the command line:

    python -m repro serve --seed 2016 --epochs 12

Run:
    python examples/consolidation_service.py
"""

from repro import ClusterRunner, build_model
from repro.analysis.reporting import render_service_snapshot
from repro.service import (
    ConsolidationService,
    ServiceConfig,
    StreamConfig,
    WorkloadStream,
)

MIX = ("M.lmps", "M.milc", "H.KM", "S.WC")
SEED = 2016
EPOCHS = 12


def main() -> None:
    runner = ClusterRunner(base_seed=SEED)
    print(f"Profiling {len(MIX)} workloads for the serving model...")
    report = build_model(runner, list(MIX), policy_samples=10, seed=SEED, span=4)

    stream = WorkloadStream(
        StreamConfig(workloads=MIX, arrival_rate=1.2, qos_fraction=0.5),
        seed=SEED,
    )
    service = ConsolidationService(
        runner, report.model, stream,
        config=ServiceConfig(migration_cost=0.02),
        seed=SEED,
    )

    print(f"\nServing {EPOCHS} epochs of seeded traffic:\n")
    print(f"{'epoch':>5} {'running':>8} {'queued':>7} {'util':>6} "
          f"{'admits':>7} {'rejects':>8} {'violations':>11}")
    for _ in range(EPOCHS):
        service.run(1)
        snap = service.snapshots[-1]
        print(f"{snap.epoch:>5} {snap.running_jobs:>8} {snap.queued_jobs:>7} "
              f"{snap.utilization:>6.2f} {snap.admitted_total:>7} "
              f"{snap.rejected_total:>8} {snap.qos_violations_total:>11}")

    print("\nFinal metrics snapshot:")
    print(render_service_snapshot(service.snapshots[-1]))

    print("\nNotable events:")
    for kind in ("migrate", "qos_violation", "reject"):
        for event in service.log.of_kind(kind):
            payload = dict(event.payload)
            if kind == "migrate":
                detail = (f"moved {payload['moved_units']} unit(s), "
                          f"predicted gain {payload['predicted_gain']:.3f}")
            elif kind == "qos_violation":
                detail = (f"{payload['job']} measured "
                          f"{payload['measured']:.3f}x vs bound "
                          f"{payload['bound']:.2f}x")
            else:
                detail = f"{payload['job']} ({payload['reason']})"
            print(f"  epoch {event.epoch:>2} {kind:14} {detail}")

    replay = ConsolidationService(
        runner, report.model, stream,
        config=ServiceConfig(migration_cost=0.02),
        seed=SEED,
    )
    replay.run(EPOCHS)
    identical = replay.log.to_jsonl() == service.log.to_jsonl()
    print(f"\nReplay with the same seed byte-identical: {identical}")


if __name__ == "__main__":
    main()
