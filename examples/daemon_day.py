#!/usr/bin/env python3
"""The daemon's queue → lease → executor → commit protocol, end to end.

Runs the same seeded traffic day twice: once inline through the flat
`ConsolidationService`, once through `ConsolidationDaemon` — a durable
job spool, a pool of executor workers claiming epoch executions under
renewable leases, a reaper requeueing orphaned work, and a
status-updater committing results to the durable event log and
checkpoint.  A fault plan crashes some execution attempts and wedges
others mid-day.

Because epoch execution is a pure function of (checkpoint, arrivals),
the crashes, retries and fenced stale commits change *nothing*: the
daemon's event log is byte-identical to the flat day's.  A second
spool then demonstrates the operator API — submit a job into a
running day, watch it arrive, cancel it.

The same day is available from the command line:

    python -m repro daemon --spool /tmp/spool --seed 2016 --epochs 12 \
        --workers 4 --faults benchmarks/baselines/daemon_chaos_plan.json

Run:
    python examples/daemon_day.py
"""

import tempfile
from pathlib import Path

from repro import ClusterRunner, build_model
from repro.daemon import ConsolidationDaemon, JobSpool, ServiceBlueprint
from repro.faults import FaultConfig, FaultPlan
from repro.service import (
    ConsolidationService,
    ServiceConfig,
    StreamConfig,
    WorkloadStream,
)

MIX = ("M.lmps", "H.KM")
SEED = 2016
EPOCHS = 8


def make_stream():
    return WorkloadStream(
        StreamConfig(workloads=MIX, arrival_rate=1.0, qos_fraction=0.5),
        seed=SEED,
    )


def main() -> None:
    runner = ClusterRunner(base_seed=SEED)
    print(f"Profiling {len(MIX)} workloads for the serving model...")
    report = build_model(runner, list(MIX), policy_samples=8, seed=SEED, span=4)

    print(f"\nFlat reference day ({EPOCHS} epochs, inline)...")
    flat = ConsolidationService(
        ClusterRunner(base_seed=SEED), report.model, make_stream(),
        config=ServiceConfig(), seed=SEED,
    )
    flat.run(EPOCHS)

    # The blueprint is the daemon's recipe for a *fresh* service per
    # execution attempt: fresh runner, fresh online wrapper over the
    # shared profiled model.  Nothing leaks between attempts.
    blueprint = ServiceBlueprint(
        lambda: ClusterRunner(base_seed=SEED), report.model,
        config=ServiceConfig(), seed=SEED,
    )
    # Crash ~1 in 4 execution attempts outright; wedge another ~1 in 5
    # (the worker stops renewing its lease but finishes late and tries
    # a stale commit, which fencing discards).
    chaos = FaultPlan(FaultConfig(
        seed=SEED, worker_crash_rate=0.25, lease_expiry_rate=0.2,
    ))

    with tempfile.TemporaryDirectory() as tmp:
        spool = JobSpool(Path(tmp) / "spool")
        daemon = ConsolidationDaemon(
            spool, blueprint, make_stream(), workers=4, faults=chaos,
        )
        print("Daemon day, 4 workers, crashes and wedges injected:")
        daemon.run(EPOCHS)

        stats = daemon.stats
        print(f"  {stats['claims']} claims for {EPOCHS} epochs: "
              f"{stats['worker_crashes']} attempt(s) crashed, "
              f"{stats['wedges']} wedged, {stats['requeues']} requeued, "
              f"{stats['stale_commits']} stale commit(s) fenced, "
              f"{stats['commits']} committed")

        identical = daemon.log.to_jsonl() == flat.log.to_jsonl()
        print(f"  event log byte-identical to the flat day: {identical}")
        print(f"  durable log: {spool.events_path}")
        if not identical:
            raise SystemExit("daemon day diverged from the flat day!")

    print("\nOperator API on a fresh spool:")
    with tempfile.TemporaryDirectory() as tmp:
        spool = JobSpool(Path(tmp) / "spool")
        daemon = ConsolidationDaemon(
            spool, blueprint, make_stream(), workers=2,
        )
        daemon.run(2)
        record = daemon.submit("M.lmps", num_units=2, duration_epochs=10,
                               job_id="operator-job")
        print(f"  submitted {record.job_id!r} at the epoch-2 boundary "
              f"(status: {record.status})")
        daemon.run(4)
        print(f"  after 2 more epochs: {daemon.status('operator-job').status}")
        daemon.cancel("operator-job")
        print("  cancel requested; takes effect at the next boundary")
        daemon.run(6)
        print(f"  final status: {daemon.status('operator-job').status}")
        cancels = daemon.log.of_kind("job_cancel")
        print(f"  job_cancel events in the durable log: "
              f"{[dict(e.payload)['job'] for e in cancels]}")


if __name__ == "__main__":
    main()
