#!/usr/bin/env python3
"""Scale-out validation on the simulated EC2 environment (Section 6).

Profiles M.zeus on the 32-VM EC2 environment — complete with
unmeasured tenant noise — and compares its propagation curve and
prediction quality against the controlled private testbed, reproducing
the paper's observation that the method still works at scale but with
visibly higher errors.

Run:
    python examples/ec2_scaleout.py
"""

from repro import ClusterRunner
from repro.analysis.reporting import format_series
from repro.core.profiling import MeasurementOracle, exhaustive_truth, select_policy
from repro.core.builder import default_pressures
from repro.providers.ec2 import ec2_counts, make_ec2_runner

WORKLOAD = "M.zeus"


def curve_for(runner, counts, label):
    oracle = MeasurementOracle(runner, WORKLOAD)
    matrix = exhaustive_truth(oracle, [4.0, 8.0], counts)
    print(f"\n{label}: normalized execution times of {WORKLOAD}")
    print(
        format_series(
            "interfering",
            [int(c) for c in matrix.counts],
            {
                "pressure 4": [float(v) for v in matrix.row(0)],
                "pressure 8": [float(v) for v in matrix.row(1)],
            },
        )
    )
    return matrix


def main() -> None:
    private = ClusterRunner()
    ec2 = make_ec2_runner()

    curve_for(private, [float(c) for c in range(9)], "Private 8-node testbed")
    ec2_matrix = curve_for(ec2, ec2_counts(), "EC2, 32 VMs with tenant noise")

    print("\nSelecting the heterogeneity policy on EC2 (100 samples)...")
    full = exhaustive_truth(
        MeasurementOracle(ec2, WORKLOAD), default_pressures(), ec2_counts()
    )
    selection = select_policy(ec2, WORKLOAD, full, samples=40, seed=9)
    best = selection.best
    print(f"  best policy on EC2: {best.policy_name} "
          f"(avg error {best.average_error:.1f}%, std {best.std_dev:.1f})")
    print("  -> noticeably higher error than on the private cluster, as "
          "Section 6 reports: other tenants' interference is unmeasured.")


if __name__ == "__main__":
    main()
