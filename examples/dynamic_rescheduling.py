#!/usr/bin/env python3
"""Dynamic rescheduling: measure, learn, migrate.

Closes the loop the paper's related work points at: start from a random
placement, measure each epoch, refine the model online, and migrate VM
units only when the predicted gain beats the migration cost.

Run:
    python examples/dynamic_rescheduling.py
"""

from repro import ClusterRunner, InstanceSpec, build_batch_profiles, build_model
from repro.placement.annealing import AnnealingSchedule
from repro.placement.dynamic import DynamicRescheduler
from repro.placement.throughput import ThroughputPlacer

MIX = ["M.lmps", "M.milc", "H.KM"]
BATCH = ["C.libq"]


def main() -> None:
    runner = ClusterRunner()
    print("Profiling the mix (one-time cost)...")
    report = build_model(runner, MIX, policy_samples=15, seed=8, span=4)
    build_batch_profiles(runner, report.model, BATCH, span=4)

    instances = [
        InstanceSpec(f"{abbrev}#{idx}", abbrev)
        for idx, abbrev in enumerate(MIX + BATCH)
    ]
    rescheduler = DynamicRescheduler(
        runner,
        report.model,
        instances,
        migration_cost=0.02,
        schedule=AnnealingSchedule(iterations=800, restarts=2),
        seed=8,
    )

    # Start from the worst placement the model can construct — the
    # situation a rescheduler exists to fix.
    worst = ThroughputPlacer(
        report.model, runner.spec,
        schedule=AnnealingSchedule(iterations=800, restarts=2), seed=8,
    ).worst(instances).placement

    print("\nRunning 5 epochs from an adversarially bad placement:\n")
    print(f"{'epoch':>5} {'migrated units':>15} {'predicted total':>16} "
          f"{'measured total':>15}")
    records = rescheduler.run(epochs=5, initial=worst)
    for record in records:
        print(f"{record.epoch:>5} {record.migrated_units:>15} "
              f"{record.predicted_total:>16.3f} {record.measured_total:>15.3f}")

    improvement = (
        (records[0].measured_total - records[-1].measured_total)
        / records[0].measured_total * 100.0
    )
    print(f"\nMeasured total improved {improvement:.1f}% over the bad start; "
          f"later epochs settle once migrations stop paying for themselves.")
    print("\nOnline corrections learned along the way:")
    for workload, observations, factor, last_error in (
        rescheduler.model.staleness_report()
    ):
        print(f"  {workload:8s} x{factor:.3f} after {observations} observations "
              f"(last error {last_error:.1f}%)")


if __name__ == "__main__":
    main()
