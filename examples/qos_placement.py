#!/usr/bin/env python3
"""QoS-aware consolidation of a mission-critical application.

Scenario: a cluster operator must consolidate a latency-sensitive
lammps job with three batch tenants — a loud SPEC CPU co-runner, a
cache-hungry MPI code, and a quiet Hadoop job — while guaranteeing
lammps at least 80% of its solo performance.

The script profiles the applications, runs the QoS-aware placer from
Section 5.2, verifies the chosen placement against the simulated ground
truth, and contrasts it with what the naive proportional model would
have chosen.

Run:
    python examples/qos_placement.py
"""

from repro import (
    ClusterRunner,
    InstanceSpec,
    NaiveProportionalModel,
    QoSAwarePlacer,
    QoSConstraint,
    build_batch_profiles,
    build_model,
)
from repro.placement.annealing import AnnealingSchedule

MISSION_CRITICAL = "M.lmps"
TENANTS = ["M.milc", "H.KM"]
BATCH = ["C.xbmk"]


def describe(placement, target_key: str) -> str:
    partners = sorted(
        workload
        for workloads in placement.co_runner_workloads(target_key).values()
        for workload in workloads
    )
    return ", ".join(partners)


def main() -> None:
    runner = ClusterRunner()
    print("Profiling applications (one-time cost)...")
    report = build_model(
        runner, [MISSION_CRITICAL] + TENANTS, policy_samples=20, seed=2, span=4
    )
    model = report.model
    build_batch_profiles(runner, model, BATCH, span=4)

    instances = [
        InstanceSpec(f"{MISSION_CRITICAL}#0", MISSION_CRITICAL, num_units=4),
        InstanceSpec("M.milc#1", "M.milc", num_units=4),
        InstanceSpec("H.KM#2", "H.KM", num_units=4),
        InstanceSpec("C.xbmk#3", "C.xbmk", num_units=4),
    ]
    constraint = QoSConstraint(f"{MISSION_CRITICAL}#0", max_normalized_time=1.25)
    schedule = AnnealingSchedule(iterations=1500, restarts=2)

    for label, prediction_model in (
        ("interference-aware model", model),
        ("naive proportional model", NaiveProportionalModel(model)),
    ):
        placer = QoSAwarePlacer(
            prediction_model, runner.spec, [constraint],
            schedule=schedule, seed=11,
        )
        result = placer.place(instances)
        measured = runner.run_deployments(result.placement.deployments())
        target_time = measured[constraint.instance_key]
        status = "SATISFIED" if constraint.satisfied_by(measured) else "VIOLATED"
        print(f"\nPlacement chosen by the {label}:")
        print(f"  {MISSION_CRITICAL} neighbours: "
              f"{describe(result.placement, constraint.instance_key)}")
        print(f"  predicted target time: {result.predictions[constraint.instance_key]:.3f}")
        print(f"  measured target time:  {target_time:.3f}  -> QoS {status}")
        print(f"  total weighted runtime: {sum(measured.values()):.2f}")


if __name__ == "__main__":
    main()
