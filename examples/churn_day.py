#!/usr/bin/env python3
"""An elastic day: autoscaling plus two-phase spot preemption.

Runs the seeded traffic day on a pool leased from an
`ElasticProvider` instead of a fixed cluster.  Durable nodes (the low
ids) are the only home mission-critical tenants are ever admitted to;
the spot remainder is cheap but preemptible.  Mid-day the pool
resizes — the pure autoscaler grows it on queue backlog or thin
predicted QoS margin and shrinks idle spot capacity — while a seeded
fault-plan family preempts spot instances in two phases: a warning
marks the node draining (admission stops targeting it), then after
the warning window the reclaim evicts anything still resident.
Evicted batch tenants are requeued at the front of the admission
queue, never dropped.

The same day is available from the command line:

    python -m repro serve --seed 2016 --epochs 12 \
        --provider elastic --churn benchmarks/baselines/churn_plan.json

and `--provider static` replays the fixed-pool day byte for byte.

Run:
    python examples/churn_day.py
"""

from repro import (
    AutoscalerConfig,
    ClusterRunner,
    ClusterSpec,
    ConsolidationService,
    ElasticProvider,
    FaultConfig,
    FaultPlan,
    ServiceConfig,
    StreamConfig,
    WorkloadStream,
    build_model,
)

MIX = ("M.lmps", "H.KM")
SEED = 2016
EPOCHS = 12
CEILING = 10   # the provider may grow the pool this far
INITIAL = 8    # nodes leased at epoch 0


def main() -> None:
    # The runner is built at the *ceiling*: the provider decides which
    # of its nodes are currently leased, and the service schedules only
    # on those.
    runner = ClusterRunner(ClusterSpec(num_nodes=CEILING), base_seed=SEED)
    print(f"Profiling {len(MIX)} workloads for the serving model...")
    report = build_model(runner, list(MIX), policy_samples=8, seed=SEED,
                         span=4)

    # Preempt each spot instance with 20% probability per epoch, with a
    # one-epoch warning between the reclaim notice and the reclaim
    # itself — the same two-phase protocol real spot markets use.
    churn = FaultPlan(FaultConfig(
        seed=SEED, preemption_rate=0.2, preemption_warning_epochs=1,
    ))
    provider = ElasticProvider(
        CEILING,
        initial_nodes=INITIAL,
        spot_fraction=0.5,           # half the initial lease is spot
        churn=churn,
        autoscaler=AutoscalerConfig(),
    )
    durable = set(provider.durable_nodes())
    print(f"\nInitial lease: {INITIAL} nodes, durable {sorted(durable)}, "
          f"spot {sorted(set(provider.live_nodes()) - durable)}, "
          f"ceiling {CEILING}")

    stream = WorkloadStream(
        StreamConfig(workloads=MIX, arrival_rate=1.5, qos_fraction=0.5),
        seed=SEED,
    )
    service = ConsolidationService(
        runner, report.model, stream,
        config=ServiceConfig(), seed=SEED, provider=provider,
    )
    print(f"Elastic day ({EPOCHS} epochs, churn + autoscaling on):")
    service.run(EPOCHS)

    counts = service.log.counts()
    print(f"  {counts.get('autoscale', 0)} autoscale decision(s), "
          f"{counts.get('node_join', 0)} join(s), "
          f"{counts.get('node_leave', 0)} leave(s)")
    print(f"  {counts.get('preempt_warning', 0)} preemption warning(s), "
          f"{counts.get('preempt_reclaim', 0)} reclaim(s)")
    print(f"  {service.preempted_total} resident(s) evicted by reclaims, "
          f"{service.requeued_total} requeued — zero dropped")
    print(f"  final pool: {len(provider.live_nodes())} nodes "
          f"({counts.get('admit', 0)} admissions over the day)")

    # The invariant the churn-smoke CI job pins: a mission-critical
    # tenant is never placed on a node the provider could reclaim.
    mc_jobs = set()
    for event in service.log.of_kind("arrival"):
        payload = dict(event.payload)
        if payload["qos_target"] is not None:
            mc_jobs.add(payload["job"])
    clean = all(
        set(dict(e.payload)["nodes"]) <= durable
        for e in service.log.of_kind("admit")
        if dict(e.payload)["job"] in mc_jobs
    )
    print(f"  every mission-critical admission on durable nodes: {clean}")
    violations = service.snapshots[-1].qos_violations_total
    print(f"  measured QoS violations across the churned day: {violations}")
    if not clean:
        raise SystemExit("a mission-critical tenant landed on spot!")


if __name__ == "__main__":
    main()
