"""Before/after microbenchmarks for the three hot-path optimizations.

Covers the PR's fast paths, each against the slow path it replaces:

* **Incremental annealing energy** — delta evaluation re-predicts only
  the instances on the two swapped nodes, versus re-predicting the
  whole mix every proposal.  Same seeds, bit-identical results.
* **Parallel measurement fan-out** — a pairwise co-run sweep shipped
  through ``measure_many`` with worker processes, versus the serial
  loop.  (The speedup floor is only asserted on machines with >= 4
  cores; bit-identity is asserted everywhere.)
* **Persistent measurement cache** — a cold sweep that simulates and
  records, versus a warm sweep that replays the recorded times.

Numbers land in ``benchmarks/results/perf_hotpaths.txt`` (plus a JSON
twin for tooling).  The tier-1 ``perf_smoke`` regression guard
(``tests/perf/``) checks a scaled-down version of the same paths
against the checked-in baseline.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.placement.annealing import AnnealingSchedule, SimulatedAnnealingPlacer
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    WeightedTimeEnergy,
    predict_placement,
    weighted_total_time,
)
from repro.sim.cache import MeasurementCache
from repro.sim.runner import ClusterRunner, MeasurementRequest

#: Section 5-like shape, scaled up so the per-proposal win is visible:
#: 16 applications x 4 units on 32 two-slot nodes.  A full evaluation
#: re-predicts 16 instances; a swap touches 2 nodes, so delta
#: evaluation re-predicts at most 4.
NUM_NODES = 32
NUM_INSTANCES = 16
UNITS_PER_INSTANCE = 4
SEARCH_SCHEDULE = AnnealingSchedule(iterations=2000, restarts=1)

SWEEP_TARGETS = ("M.lmps", "M.Gems", "N.cg", "S.PR")
SWEEP_CO_RUNNERS = ("C.gcc", "C.mcf", "C.libq", "S.WC", "H.KM")


def _make_matrix(max_slowdown: float) -> PropagationMatrix:
    amplitude = max_slowdown - 1.0
    counts = list(range(UNITS_PER_INSTANCE + 1))
    pressures = [2.0, 4.0, 6.0, 8.0]
    values = np.array(
        [
            [
                1.0 + amplitude * (p / 8.0) * (c / UNITS_PER_INSTANCE) ** 0.5
                for c in counts
            ]
            for p in pressures
        ]
    )
    return PropagationMatrix(pressures, counts, values)


def make_search_model() -> InterferenceModel:
    kinds = [
        ("loud", 1.3, 8.0, "N+1 MAX"),
        ("quiet", 1.05, 0.5, "INTERPOLATE"),
        ("sensitive", 2.0, 2.0, "N+1 MAX"),
    ]
    profiles = {
        name: InterferenceProfile(
            workload=name,
            matrix=_make_matrix(slowdown),
            policy_name=policy,
            bubble_score=score,
        )
        for name, slowdown, score, policy in kinds
    }
    return InterferenceModel(profiles)


def search_instances():
    kinds = ("loud", "quiet", "sensitive")
    return [
        InstanceSpec(f"{kinds[i % 3]}#{i}", kinds[i % 3], UNITS_PER_INSTANCE)
        for i in range(NUM_INSTANCES)
    ]


def full_energy(model):
    def energy(placement: Placement) -> float:
        return weighted_total_time(predict_placement(model, placement), placement)

    return energy


def assignment_of(placement: Placement):
    return {
        spec.instance_key: tuple(placement.nodes_of(spec.instance_key))
        for spec in placement.instances
    }


def sweep_requests():
    return [
        MeasurementRequest.corun(target, co)
        for target in SWEEP_TARGETS
        for co in SWEEP_CO_RUNNERS
    ] + [
        MeasurementRequest.measure(target, pressure, 4)
        for target in SWEEP_TARGETS
        for pressure in (2.0, 4.0, 6.0, 8.0)
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


RESULTS: dict = {}


def _record_json(artifact_dir):
    (artifact_dir / "perf_hotpaths.json").write_text(
        json.dumps(RESULTS, indent=2) + "\n"
    )


def test_incremental_vs_full_search(record_artifact, artifact_dir):
    model = make_search_model()
    spec = ClusterSpec(num_nodes=NUM_NODES)
    initial = Placement.random(spec, search_instances(), seed=11)

    slow_placer = SimulatedAnnealingPlacer(
        full_energy(model), schedule=SEARCH_SCHEDULE, seed=3
    )
    slow, slow_s = _timed(lambda: slow_placer.search_from(initial))
    fast_placer = SimulatedAnnealingPlacer(
        WeightedTimeEnergy(model), schedule=SEARCH_SCHEDULE, seed=3
    )
    fast, fast_s = _timed(lambda: fast_placer.search_from(initial))

    assert fast.energy == slow.energy
    assert assignment_of(fast.placement) == assignment_of(slow.placement)
    assert fast.energy_trajectory == slow.energy_trajectory

    speedup = slow_s / fast_s
    RESULTS["search"] = {
        "full_s": slow_s, "incremental_s": fast_s, "speedup": speedup,
    }
    record_artifact(
        "perf_hotpaths_search",
        f"Annealing search ({SEARCH_SCHEDULE.iterations} proposals, "
        f"{NUM_INSTANCES}x{UNITS_PER_INSTANCE} units on {NUM_NODES} nodes)\n"
        f"  full evaluation:        {slow_s:8.3f} s\n"
        f"  incremental evaluation: {fast_s:8.3f} s\n"
        f"  speedup:                {speedup:8.2f}x (bit-identical result)",
    )
    _record_json(artifact_dir)
    assert speedup >= 3.0


def test_parallel_vs_serial_sweep(record_artifact, artifact_dir):
    serial_runner = ClusterRunner(base_seed=7)
    serial_results, serial_s = _timed(
        lambda: serial_runner.measure_many(sweep_requests(), max_workers=1)
    )
    parallel_runner = ClusterRunner(base_seed=7)
    parallel_results, parallel_s = _timed(
        lambda: parallel_runner.measure_many(sweep_requests(), max_workers=-1)
    )

    assert parallel_results == serial_results
    assert parallel_runner.measurement_count == serial_runner.measurement_count
    assert (
        parallel_runner.solo_measurement_count
        == serial_runner.solo_measurement_count
    )

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    RESULTS["sweep"] = {
        "serial_s": serial_s, "parallel_s": parallel_s,
        "speedup": speedup, "cores": cores,
    }
    record_artifact(
        "perf_hotpaths_sweep",
        f"Measurement sweep ({len(sweep_requests())} settings, {cores} cores)\n"
        f"  serial:   {serial_s:8.3f} s\n"
        f"  parallel: {parallel_s:8.3f} s\n"
        f"  speedup:  {speedup:8.2f}x (bit-identical results and accounting)",
    )
    _record_json(artifact_dir)
    if cores >= 4:
        assert speedup >= 3.0


def test_cache_cold_vs_warm(record_artifact, artifact_dir, tmp_path):
    path = tmp_path / "measurements.json"
    cold_runner = ClusterRunner(base_seed=7, cache=MeasurementCache(path))
    cold_results, cold_s = _timed(
        lambda: cold_runner.measure_many(sweep_requests())
    )
    cold_runner.cache.flush()

    warm_runner = ClusterRunner(base_seed=7, cache=MeasurementCache(path))
    warm_results, warm_s = _timed(
        lambda: warm_runner.measure_many(sweep_requests())
    )

    assert warm_results == cold_results
    assert warm_runner.measurement_count == cold_runner.measurement_count
    assert (
        warm_runner.solo_measurement_count == cold_runner.solo_measurement_count
    )

    speedup = cold_s / warm_s
    RESULTS["cache"] = {
        "cold_s": cold_s, "warm_s": warm_s, "speedup": speedup,
    }
    record_artifact(
        "perf_hotpaths_cache",
        f"Persistent cache ({len(sweep_requests())} settings)\n"
        f"  cold (simulate + record): {cold_s:8.3f} s\n"
        f"  warm (replay):            {warm_s:8.3f} s\n"
        f"  speedup:                  {speedup:8.2f}x (identical results)",
    )
    _record_json(artifact_dir)
    assert speedup >= 3.0
