"""Before/after microbenchmarks for the three hot-path optimizations.

Covers the PR's fast paths, each against the slow path it replaces:

* **Incremental annealing energy** — delta evaluation re-predicts only
  the instances on the two swapped nodes, versus re-predicting the
  whole mix every proposal.  Same seeds, bit-identical results.
* **Parallel measurement fan-out** — a pairwise co-run sweep shipped
  through ``measure_many`` with worker processes, versus the serial
  loop.  (The speedup floor is only asserted on machines with >= 4
  cores; bit-identity is asserted everywhere.)
* **Persistent measurement cache** — a cold sweep that simulates and
  records, versus a warm sweep that replays the recorded times.
* **Batch prediction** — a full-placement evaluation and an admission
  candidate wave scored through the vectorized
  :class:`~repro.core.kernel.PredictionKernel` path, versus the scalar
  per-instance reference.  Bit-identical by construction (see the
  "Batch prediction" section of ``docs/performance.md``).
* **Flat-network gate** — the per-resource prediction API's only cost
  on models without network profiles: one ``has_network`` consultation
  per batch call.  The guard bounds the gate at 5% of an end-to-end
  placement prediction, so flat models stay within 1.05x of the
  scalar-era path they still execute.

Numbers land in ``benchmarks/results/perf_hotpaths.txt`` (plus a JSON
twin for tooling).  The tier-1 ``perf_smoke`` regression guard
(``tests/perf/``) checks a scaled-down version of the same paths
against the checked-in baseline.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.curves import PropagationMatrix
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.placement.annealing import AnnealingSchedule, SimulatedAnnealingPlacer
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    WeightedTimeEnergy,
    predict_placement,
    predict_placement_scalar,
    weighted_total_time,
)
from repro.service.admission import AdmissionController
from repro.service.jobs import Job
from repro.sim.cache import MeasurementCache
from repro.sim.runner import ClusterRunner, MeasurementRequest

#: Section 5-like shape, scaled up so the per-proposal win is visible:
#: 16 applications x 4 units on 32 two-slot nodes.  A full evaluation
#: re-predicts 16 instances; a swap touches 2 nodes, so delta
#: evaluation re-predicts at most 4.
NUM_NODES = 32
NUM_INSTANCES = 16
UNITS_PER_INSTANCE = 4
SEARCH_SCHEDULE = AnnealingSchedule(iterations=2000, restarts=1)

SWEEP_TARGETS = ("M.lmps", "M.Gems", "N.cg", "S.PR")
SWEEP_CO_RUNNERS = ("C.gcc", "C.mcf", "C.libq", "S.WC", "H.KM")


def _make_matrix(max_slowdown: float) -> PropagationMatrix:
    amplitude = max_slowdown - 1.0
    counts = list(range(UNITS_PER_INSTANCE + 1))
    pressures = [2.0, 4.0, 6.0, 8.0]
    values = np.array(
        [
            [
                1.0 + amplitude * (p / 8.0) * (c / UNITS_PER_INSTANCE) ** 0.5
                for c in counts
            ]
            for p in pressures
        ]
    )
    return PropagationMatrix(pressures, counts, values)


def make_search_model() -> InterferenceModel:
    kinds = [
        ("loud", 1.3, 8.0, "N+1 MAX"),
        ("quiet", 1.05, 0.5, "INTERPOLATE"),
        ("sensitive", 2.0, 2.0, "N+1 MAX"),
    ]
    profiles = {
        name: InterferenceProfile(
            workload=name,
            matrix=_make_matrix(slowdown),
            policy_name=policy,
            bubble_score=score,
        )
        for name, slowdown, score, policy in kinds
    }
    return InterferenceModel(profiles)


def search_instances():
    kinds = ("loud", "quiet", "sensitive")
    return [
        InstanceSpec(f"{kinds[i % 3]}#{i}", kinds[i % 3], UNITS_PER_INSTANCE)
        for i in range(NUM_INSTANCES)
    ]


def full_energy(model):
    def energy(placement: Placement) -> float:
        return weighted_total_time(predict_placement(model, placement), placement)

    return energy


def assignment_of(placement: Placement):
    return {
        spec.instance_key: tuple(placement.nodes_of(spec.instance_key))
        for spec in placement.instances
    }


def sweep_requests():
    return [
        MeasurementRequest.corun(target, co)
        for target in SWEEP_TARGETS
        for co in SWEEP_CO_RUNNERS
    ] + [
        MeasurementRequest.measure(target, pressure, 4)
        for target in SWEEP_TARGETS
        for pressure in (2.0, 4.0, 6.0, 8.0)
    ]


#: Consolidated-cluster shape for the batch-prediction benchmarks:
#: the vectorized path's advantage grows with the instance count (the
#: scalar route is quadratic in it), so these use a cluster an order
#: of magnitude beyond the annealing shape above.
BATCH_NUM_INSTANCES = 192
BATCH_NUM_NODES = 432

#: Admission-wave shape: 16 resident tenants leaving ten half-free
#: nodes, so one four-unit job enumerates C(10, 4) = 210 candidate
#: placements of 17 instances each.
WAVE_NUM_NODES = 37
WAVE_NUM_TENANTS = 16


def consolidated_placement(num_instances, num_nodes, seed=7):
    """A dense random spread of 4-unit instances over 2-slot nodes."""
    import random

    rng = random.Random(seed)
    kinds = ("loud", "quiet", "sensitive")
    spec = ClusterSpec(num_nodes=num_nodes)
    instances, assignment = [], {}
    free = {node: 2 for node in range(num_nodes)}
    for i in range(num_instances):
        key = f"{kinds[i % 3]}#{i}"
        instances.append(InstanceSpec(key, kinds[i % 3], UNITS_PER_INSTANCE))
        open_nodes = [node for node, slots in free.items() if slots > 0]
        nodes = rng.sample(open_nodes, UNITS_PER_INSTANCE)
        for node in nodes:
            free[node] -= 1
        assignment[key] = tuple(nodes)
    return Placement(spec, instances, assignment, unit_slots_per_node=2)


class _ScalarOnly:
    """Model proxy hiding the batch interface (scalar-reference timing)."""

    _HIDDEN = frozenset(
        {
            "predict_batch",
            "predict_corunners_batch",
            "predict_placement_batch",
            "predict_placements_batch",
            "prediction_kernel",
        }
    )

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        if name in _ScalarOnly._HIDDEN:
            raise AttributeError(name)
        return getattr(self._model, name)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _best_pair(slow_fn, fast_fn, reps: int, rounds: int = 7):
    """Best-of-``rounds`` seconds per call for two competing paths.

    The rounds interleave the two measurements so a transient load
    spike cannot land on only one side and skew the ratio; each side
    keeps its own minimum across rounds.
    """
    slow_best = fast_best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            slow_fn()
        slow_best = min(slow_best, (time.perf_counter() - start) / reps)
        start = time.perf_counter()
        for _ in range(reps):
            fast_fn()
        fast_best = min(fast_best, (time.perf_counter() - start) / reps)
    return slow_best, fast_best


RESULTS: dict = {}


def _record_json(artifact_dir):
    (artifact_dir / "perf_hotpaths.json").write_text(
        json.dumps(RESULTS, indent=2) + "\n"
    )


def test_incremental_vs_full_search(record_artifact, artifact_dir):
    model = make_search_model()
    spec = ClusterSpec(num_nodes=NUM_NODES)
    initial = Placement.random(spec, search_instances(), seed=11)

    slow_placer = SimulatedAnnealingPlacer(
        full_energy(model), schedule=SEARCH_SCHEDULE, seed=3
    )
    slow, slow_s = _timed(lambda: slow_placer.search_from(initial))
    fast_placer = SimulatedAnnealingPlacer(
        WeightedTimeEnergy(model), schedule=SEARCH_SCHEDULE, seed=3
    )
    fast, fast_s = _timed(lambda: fast_placer.search_from(initial))

    assert fast.energy == slow.energy
    assert assignment_of(fast.placement) == assignment_of(slow.placement)
    assert fast.energy_trajectory == slow.energy_trajectory

    speedup = slow_s / fast_s
    RESULTS["search"] = {
        "full_s": slow_s, "incremental_s": fast_s, "speedup": speedup,
    }
    record_artifact(
        "perf_hotpaths_search",
        f"Annealing search ({SEARCH_SCHEDULE.iterations} proposals, "
        f"{NUM_INSTANCES}x{UNITS_PER_INSTANCE} units on {NUM_NODES} nodes)\n"
        f"  full evaluation:        {slow_s:8.3f} s\n"
        f"  incremental evaluation: {fast_s:8.3f} s\n"
        f"  speedup:                {speedup:8.2f}x (bit-identical result)",
    )
    _record_json(artifact_dir)
    # The full-evaluation denominator rides the batch kernel too
    # (predict_placement dispatches to predict_placement_batch), so the
    # incremental win over it is narrower than against the historical
    # scalar full path (~2.1-2.9x measured); the incremental path's
    # absolute time is separately guarded by the perf_smoke baseline.
    assert speedup >= 1.8


def test_parallel_vs_serial_sweep(record_artifact, artifact_dir):
    serial_runner = ClusterRunner(base_seed=7)
    serial_results, serial_s = _timed(
        lambda: serial_runner.measure_many(sweep_requests(), max_workers=1)
    )
    parallel_runner = ClusterRunner(base_seed=7)
    parallel_results, parallel_s = _timed(
        lambda: parallel_runner.measure_many(sweep_requests(), max_workers=-1)
    )

    assert parallel_results == serial_results
    assert parallel_runner.measurement_count == serial_runner.measurement_count
    assert (
        parallel_runner.solo_measurement_count
        == serial_runner.solo_measurement_count
    )

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    RESULTS["sweep"] = {
        "serial_s": serial_s, "parallel_s": parallel_s,
        "speedup": speedup, "cores": cores,
    }
    record_artifact(
        "perf_hotpaths_sweep",
        f"Measurement sweep ({len(sweep_requests())} settings, {cores} cores)\n"
        f"  serial:   {serial_s:8.3f} s\n"
        f"  parallel: {parallel_s:8.3f} s\n"
        f"  speedup:  {speedup:8.2f}x (bit-identical results and accounting)",
    )
    _record_json(artifact_dir)
    if cores >= 4:
        assert speedup >= 3.0


def test_cache_cold_vs_warm(record_artifact, artifact_dir, tmp_path):
    path = tmp_path / "measurements.json"
    cold_runner = ClusterRunner(base_seed=7, cache=MeasurementCache(path))
    cold_results, cold_s = _timed(
        lambda: cold_runner.measure_many(sweep_requests())
    )
    cold_runner.cache.flush()

    warm_runner = ClusterRunner(base_seed=7, cache=MeasurementCache(path))
    warm_results, warm_s = _timed(
        lambda: warm_runner.measure_many(sweep_requests())
    )

    assert warm_results == cold_results
    assert warm_runner.measurement_count == cold_runner.measurement_count
    assert (
        warm_runner.solo_measurement_count == cold_runner.solo_measurement_count
    )

    speedup = cold_s / warm_s
    RESULTS["cache"] = {
        "cold_s": cold_s, "warm_s": warm_s, "speedup": speedup,
    }
    record_artifact(
        "perf_hotpaths_cache",
        f"Persistent cache ({len(sweep_requests())} settings)\n"
        f"  cold (simulate + record): {cold_s:8.3f} s\n"
        f"  warm (replay):            {warm_s:8.3f} s\n"
        f"  speedup:                  {speedup:8.2f}x (identical results)",
    )
    _record_json(artifact_dir)
    assert speedup >= 3.0


def test_full_placement_batch(record_artifact, artifact_dir):
    model = make_search_model()
    placement = consolidated_placement(BATCH_NUM_INSTANCES, BATCH_NUM_NODES)

    scalar = predict_placement_scalar(model, placement)
    batch = predict_placement(model, placement)
    assert batch == scalar  # bit-identical, not approximately equal

    scalar_s, batch_s = _best_pair(
        lambda: predict_placement_scalar(model, placement),
        lambda: predict_placement(model, placement),
        reps=20,
    )

    speedup = scalar_s / batch_s
    RESULTS["full_placement_batch"] = {
        "scalar_s": scalar_s, "batch_s": batch_s, "speedup": speedup,
        "instances": BATCH_NUM_INSTANCES, "nodes": BATCH_NUM_NODES,
    }
    record_artifact(
        "perf_hotpaths_full_placement_batch",
        f"Full-placement prediction ({BATCH_NUM_INSTANCES}x"
        f"{UNITS_PER_INSTANCE} units on {BATCH_NUM_NODES} nodes)\n"
        f"  scalar per-instance: {scalar_s * 1e3:8.3f} ms\n"
        f"  vectorized batch:    {batch_s * 1e3:8.3f} ms\n"
        f"  speedup:             {speedup:8.2f}x (bit-identical table)",
    )
    _record_json(artifact_dir)
    assert speedup >= 10.0


def test_flat_network_gate_overhead(record_artifact, artifact_dir):
    """Flat models must stay within 1.05x of the scalar-era path.

    A model built without network profiles executes exactly the
    scalar-era prediction code plus the NETWORK-domain gate: one
    ``has_network`` consultation (and a dead branch) per batch call.
    Rather than race wall clocks across machines, the guard measures
    the gate and the full prediction in the same process and bounds
    the former at 5% of the latter — the overhead factor over the
    scalar baseline is ``1 + gate/predict`` by construction.
    """
    model = make_search_model()
    placement = consolidated_placement(BATCH_NUM_INSTANCES, BATCH_NUM_NODES)
    assert not model.has_network

    def gate():
        # The flat path's entire addition: consult the gate, skip the
        # network branch.
        if model.has_network:  # pragma: no cover - flat by construction
            raise AssertionError("flat model grew a network domain")

    predict_s, gate_s = _best_pair(
        lambda: predict_placement(model, placement),
        gate,
        reps=20,
    )

    overhead = 1.0 + gate_s / predict_s
    RESULTS["flat_network_gate"] = {
        "predict_s": predict_s, "gate_s": gate_s,
        "overhead_factor": overhead,
    }
    record_artifact(
        "perf_hotpaths_flat_network_gate",
        f"Flat-network gate ({BATCH_NUM_INSTANCES}x{UNITS_PER_INSTANCE} "
        f"units on {BATCH_NUM_NODES} nodes)\n"
        f"  full flat prediction: {predict_s * 1e6:8.3f} us\n"
        f"  network-domain gate:  {gate_s * 1e6:8.3f} us\n"
        f"  overhead factor:      {overhead:8.4f}x (bound 1.05x)",
    )
    _record_json(artifact_dir)
    assert overhead <= 1.05


def wave_placement_and_tenants():
    """Sixteen 4-unit tenants leaving ten nodes with one free slot."""
    kinds = ("loud", "quiet", "sensitive")
    spec = ClusterSpec(num_nodes=WAVE_NUM_NODES)
    # Slot list: nodes 0-9 offer one unit, the rest two; tenant i takes
    # every 16th slot, which keeps its units on distinct nodes.
    slots = list(range(10)) + [
        node for node in range(10, WAVE_NUM_NODES) for _ in range(2)
    ]
    tenants, instances, assignment = [], [], {}
    for i in range(WAVE_NUM_TENANTS):
        job = Job(
            job_id=f"tenant-{i}",
            workload=kinds[i % 3],
            num_units=UNITS_PER_INSTANCE,
            qos_target=2.5 if i % 3 == 0 else None,
        )
        tenants.append(job)
        instances.append(job.instance_spec())
        assignment[job.job_id] = tuple(slots[i::WAVE_NUM_TENANTS])
    placement = Placement(spec, instances, assignment, unit_slots_per_node=2)
    return spec, placement, tenants


def test_admission_wave_batch(record_artifact, artifact_dir):
    model = make_search_model()
    spec, placement, tenants = wave_placement_and_tenants()
    job = Job(
        job_id="arriving", workload="sensitive",
        num_units=UNITS_PER_INSTANCE, qos_target=2.5,
    )

    batch_controller = AdmissionController(model, spec)
    scalar_controller = AdmissionController(_ScalarOnly(model), spec)
    batch_decision = batch_controller.try_admit(placement, tenants, job)
    scalar_decision = scalar_controller.try_admit(placement, tenants, job)

    assert batch_decision.admitted == scalar_decision.admitted
    assert batch_decision.reason == scalar_decision.reason
    assert (
        batch_decision.candidates_evaluated
        == scalar_decision.candidates_evaluated
    )
    assert batch_decision.predictions == scalar_decision.predictions
    if batch_decision.placement is not None:
        assert assignment_of(batch_decision.placement) == assignment_of(
            scalar_decision.placement
        )

    scalar_s, batch_s = _best_pair(
        lambda: scalar_controller.try_admit(placement, tenants, job),
        lambda: batch_controller.try_admit(placement, tenants, job),
        reps=2, rounds=3,
    )

    speedup = scalar_s / batch_s
    RESULTS["admission_wave_batch"] = {
        "scalar_s": scalar_s, "batch_s": batch_s, "speedup": speedup,
        "candidates": batch_decision.candidates_evaluated,
    }
    record_artifact(
        "perf_hotpaths_admission_wave_batch",
        f"Admission wave ({batch_decision.candidates_evaluated} candidate "
        f"placements of {WAVE_NUM_TENANTS + 1} instances)\n"
        f"  scalar per-candidate: {scalar_s * 1e3:8.3f} ms\n"
        f"  vectorized wave:      {batch_s * 1e3:8.3f} ms\n"
        f"  speedup:              {speedup:8.2f}x (identical decision)",
    )
    _record_json(artifact_dir)
    # Candidate Placement construction is shared overhead on both
    # sides, so the wave's end-to-end win is bounded well below the
    # prediction-only ratio.
    assert speedup >= 2.0
