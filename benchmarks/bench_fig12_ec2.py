"""Bench: regenerate Figure 12 (EC2 propagation curves)."""

from conftest import run_once

from repro.experiments.fig12_ec2_propagation import ec2_context, run_fig12


def test_fig12_ec2_propagation(benchmark, record_artifact):
    context = ec2_context()
    result = run_once(benchmark, lambda: run_fig12(context))
    record_artifact("fig12_ec2_propagation", result.render_all())

    assert set(result.matrices) == {"M.milc", "M.Gems", "M.zeus", "M.lu"}
    for workload, matrix in result.matrices.items():
        # The sparse Figure 12 count axis.
        assert list(matrix.counts) == [0, 1, 2, 4, 8, 16, 24, 32]
        # Interference at full pressure and scale is clearly visible
        # above the tenant noise floor.
        assert matrix.get(7, len(matrix.counts) - 1) > 1.3, workload
