"""Bench: regenerate Table 6 (EC2 policy selection)."""

from conftest import run_once

from repro.experiments.fig12_ec2_propagation import ec2_context
from repro.experiments.table6_ec2_policy import run_table6


def test_table6_ec2_policy(benchmark, record_artifact):
    context = ec2_context()
    result = run_once(benchmark, lambda: run_table6(context))
    record_artifact("table6_ec2_policy", result.render())

    rows = result.rows()
    assert len(rows) == 4
    # Section 6's observation: the EC2 errors exceed the private
    # cluster's (Table 2 tops out near 9%) because tenant interference
    # is unmeasured.
    errors = [error for _w, _p, error, _s in rows]
    assert max(errors) > 5.0
    for _workload, policy, error, _std in rows:
        assert policy in {"N MAX", "N+1 MAX", "ALL MAX", "INTERPOLATE"}
        assert error < 30.0
