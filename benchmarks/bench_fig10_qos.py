"""Bench: regenerate Figure 10 (QoS-aware placement, model vs naive)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig10_qos import QOS_LIMIT, run_fig10


def test_fig10_qos_placement(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig10(context))
    record_artifact("fig10_qos", result.render())

    assert result.qos_limit == QOS_LIMIT
    model_ok = sum(
        1 for by in result.outcomes.values() if by["model"].qos_satisfied
    )
    naive_ok = sum(
        1 for by in result.outcomes.values() if by["naive"].qos_satisfied
    )
    # The interference-aware model protects the mission-critical app in
    # every mix; the naive proportional model does not.
    assert model_ok == len(result.outcomes)
    assert naive_ok < len(result.outcomes)
    # Totals remain comparable: QoS support costs little throughput.
    for by in result.outcomes.values():
        ratio = by["model"].total_weighted_time / by["naive"].total_weighted_time
        assert 0.8 < ratio < 1.25
