"""Bench: regenerate Figure 4 and Table 2 (policy selection)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig4_heterogeneity import run_fig4


def test_fig4_table2_policy_selection(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig4(context))
    record_artifact(
        "fig4_table2_heterogeneity",
        result.render_figure4() + "\n\n" + result.render_table2(),
    )

    rows = {w: policy for w, policy, _e, _s in result.table2_rows()}
    # The headline selections of Table 2: GemsFDTD and K-means map best
    # through averaging; the allreduce-coupled codes through the max
    # family, with N+1 max winning for most (the N MAX / N+1 MAX gap is
    # within one standard deviation for some workloads — the paper's
    # own Table 2 error bars overlap there too).
    assert rows["M.Gems"] == "INTERPOLATE"
    assert rows["H.KM"] == "INTERPOLATE"
    bsp = ("M.milc", "M.lesl", "M.lmps", "M.zeus", "M.lu", "N.cg", "N.mg")
    for workload in bsp:
        assert rows[workload] in ("N+1 MAX", "N MAX"), workload
    n_plus_one = sum(1 for w in bsp if rows[w] == "N+1 MAX")
    assert n_plus_one >= 5
    # One of the four policies fits every workload acceptably.
    for workload, _policy, error, _std in result.table2_rows():
        assert error < 15.0, workload
    # Section 3.3's population: C(16, 8) = 12,870 configurations.
    assert result.population_size == 12870
    assert result.best_policy_margin("M.milc") < 3.5
