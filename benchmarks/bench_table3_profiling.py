"""Bench: regenerate Table 3 and Figures 6-7 (profiling cost/accuracy)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.table3_profiling import run_table3


def test_table3_fig6_fig7_profiling(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_table3(context))
    record_artifact(
        "table3_fig6_fig7_profiling",
        "\n\n".join(
            (result.render_table3(), result.render_figure6(), result.render_figure7())
        ),
    )

    rows = {name: (cost, err) for name, cost, err in result.table3_rows()}
    # Table 3's ordering: binary-optimized is by far the cheapest;
    # binary-brute is the most accurate; random-30% is the least
    # accurate.
    assert rows["binary-optimized"][0] < 30.0
    assert rows["binary-brute"][0] > rows["random-50%"][0] > rows["random-30%"][0]
    assert rows["binary-brute"][1] == min(err for _c, err in rows.values())
    assert rows["binary-brute"][1] < rows["random-30%"][1]
    # Accuracy stays practical for the recommended algorithm.
    assert rows["binary-optimized"][1] < 8.0
