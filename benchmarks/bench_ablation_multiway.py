"""Ablation: beyond-pairwise co-location (Section 4.4's extension).

The published model handles two applications per node; Section 4.4
sketches combining bubble scores for more.  This bench measures the
sketch: three applications share nodes (the pairwise limit relaxed to
3), and the multiway predictor's error is compared against a
lower-bound baseline that simply ignores every co-runner beyond the
loudest.
"""

from conftest import run_once

from repro._util import stable_seed
from repro.analysis.errors import absolute_percent_error
from repro.analysis.reporting import format_table
from repro.core.multiway import MultiwayPredictor
from repro.experiments.context import default_context

#: Three-way co-location scenarios: target + two co-runners on all of
#: the target's nodes.
SCENARIOS = (
    ("M.lmps", "H.KM", "S.WC"),
    ("M.zeus", "H.KM", "S.PR"),
    ("M.lmps", "S.WC", "S.PR"),
    ("M.Gems", "H.KM", "S.WC"),
)


def measure_three_way(context, target, co_a, co_b, rep):
    """Ground truth: target + two co-runners on the same 4 nodes."""
    runner = context.runner
    deployments = [
        (f"{target}#0", target, {i: i for i in range(4)}),
        (f"{co_a}#1", co_a, {i: i for i in range(4)}),
        (f"{co_b}#2", co_b, {i: i for i in range(4)}),
    ]
    times = runner.run_deployments(deployments, rep=rep)
    return times[f"{target}#0"]


def run_ablation(context):
    model = context.placement_model
    multiway = MultiwayPredictor(model, collision_surcharge=0.15)
    rows = []
    for target, co_a, co_b in SCENARIOS:
        co_map = {i: [co_a, co_b] for i in range(4)}
        predicted = multiway.predict_under_corunners(
            target, list(range(4)), co_map
        )
        loudest = max(
            (co_a, co_b), key=lambda w: model.profile(w).bubble_score
        )
        ignore_extra = model.predict_under_corunners(
            target, list(range(4)), {i: [loudest] for i in range(4)}
        )
        samples = [
            measure_three_way(
                context, target, co_a, co_b,
                rep=stable_seed("multiway", target, co_a, co_b, r),
            )
            for r in range(3)
        ]
        actual = sum(samples) / len(samples)
        rows.append(
            (
                f"{target} + {co_a} + {co_b}",
                predicted,
                ignore_extra,
                actual,
                absolute_percent_error(predicted, actual),
                absolute_percent_error(ignore_extra, actual),
            )
        )
    return rows


def test_ablation_multiway_colocation(benchmark, record_artifact):
    context = default_context()
    rows = run_once(benchmark, lambda: run_ablation(context))
    record_artifact(
        "ablation_multiway",
        format_table(
            [
                "Scenario", "Multiway pred", "Loudest-only pred",
                "Measured", "Multiway err (%)", "Loudest-only err (%)",
            ],
            rows,
            float_format="{:.3f}",
        ),
    )

    multiway_mean = sum(r[4] for r in rows) / len(rows)
    loudest_mean = sum(r[5] for r in rows) / len(rows)
    # The combined-score extension predicts three-way sharing at least
    # as well as pretending the quieter co-runner does not exist.
    assert multiway_mean <= loudest_mean + 2.0
    assert multiway_mean < 20.0
