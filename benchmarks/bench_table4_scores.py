"""Bench: regenerate Table 4 (bubble scores of all applications)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.table4_bubble_scores import PAPER_SCORES, run_table4


def test_table4_bubble_scores(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_table4(context))
    record_artifact("table4_bubble_scores", result.render())

    assert len(result.scores) == 18
    # Measured scores track Table 4 within the probe's resolution (the
    # framework masters pull Hadoop/Spark averages slightly down).
    for workload, measured in result.scores.items():
        assert abs(measured - PAPER_SCORES[workload]) < 0.75, workload
    # The extremes of the paper's range.
    assert max(result.scores, key=result.scores.get) == "C.libq"
    assert result.scores["H.KM"] < 0.5
