"""Ablation: online refinement vs the static model.

The paper's future work points at online model maintenance
(Bubble-Flux).  This bench simulates a production loop: pairwise
co-runs arrive one by one, the online wrapper folds each measurement
into its per-workload corrections, and the running prediction error is
compared against the frozen static model over the same sequence.
"""

from conftest import run_once

from repro.analysis.errors import absolute_percent_error
from repro.analysis.reporting import format_table
from repro.core.online import OnlineModel
from repro.experiments.context import default_context

TARGETS = ("M.milc", "M.lmps", "N.mg")
CO_RUNNERS = ("C.libq", "C.mcf", "M.Gems", "C.sopl", "C.xbmk", "C.gcc")
ROUNDS = 3


def run_stream(context):
    model = context.model
    online = OnlineModel(model, learning_rate=0.3, max_correction=0.3)
    static_errors, online_errors = [], []
    span = context.runner.num_nodes
    for round_index in range(ROUNDS):
        for target in TARGETS:
            for co_runner in CO_RUNNERS:
                score = model.profile(co_runner).bubble_score
                vector = [score] * span
                static_prediction = model.predict_heterogeneous(target, vector)
                online_prediction = online.predict_heterogeneous(target, vector)
                measured = context.runner.corun_pair(
                    target, co_runner, rep=round_index
                )[f"{target}#0"]
                static_errors.append(
                    absolute_percent_error(static_prediction, measured)
                )
                online_errors.append(
                    absolute_percent_error(online_prediction, measured)
                )
                online.observe(target, online_prediction, measured)
    return static_errors, online_errors


def test_ablation_online_refinement(benchmark, record_artifact):
    context = default_context()
    static_errors, online_errors = run_once(benchmark, lambda: run_stream(context))

    half = len(static_errors) // 2
    rows = [
        ("static model (whole stream)",
         sum(static_errors) / len(static_errors)),
        ("online model (whole stream)",
         sum(online_errors) / len(online_errors)),
        ("static model (second half)",
         sum(static_errors[half:]) / (len(static_errors) - half)),
        ("online model (second half)",
         sum(online_errors[half:]) / (len(online_errors) - half)),
    ]
    record_artifact(
        "ablation_online",
        format_table(["Predictor", "Mean abs error (%)"], rows),
    )

    # Once warmed up, the corrections must not hurt — and typically
    # help — relative to the frozen static model.
    static_late = rows[2][1]
    online_late = rows[3][1]
    assert online_late <= static_late + 1.0
