"""Ablation: annealing vs greedy vs random placement search.

Section 5.1 uses simulated annealing but notes "other techniques ...
can also benefit from the interference model".  This ablation measures
what the annealing search buys over a greedy packer and over random
placement, using model-predicted total weighted runtime on the Table 5
mixes.
"""

from conftest import run_once

from repro._util import stable_seed
from repro.analysis.reporting import format_table
from repro.experiments.context import default_context
from repro.experiments.table5_mixes import TABLE5_MIXES
from repro.placement.annealing import AnnealingSchedule
from repro.placement.objectives import predict_placement, weighted_total_time
from repro.placement.search import GreedyPlacer, average_random_total_time
from repro.placement.throughput import ThroughputPlacer


def run_ablation(context):
    model = context.placement_model
    spec = context.runner.spec
    schedule = AnnealingSchedule(iterations=1200, restarts=2)
    rows = []
    for mix in TABLE5_MIXES:
        instances = mix.instances()
        annealed = ThroughputPlacer(
            model, spec, schedule=schedule, seed=stable_seed("ablation", mix.name)
        ).best(instances)
        annealed_total = weighted_total_time(annealed.predictions, annealed.placement)
        greedy_placement = GreedyPlacer(model, spec).place(instances)
        greedy_total = weighted_total_time(
            predict_placement(model, greedy_placement), greedy_placement
        )
        random_total = average_random_total_time(
            model, spec, instances, count=5, seed=stable_seed("ablation-r", mix.name)
        )
        rows.append((mix.name, annealed_total, greedy_total, random_total))
    return rows


def test_ablation_search_strategies(benchmark, record_artifact):
    context = default_context()
    rows = run_once(benchmark, lambda: run_ablation(context))
    record_artifact(
        "ablation_search",
        format_table(
            ["Mix", "Annealing", "Greedy", "Random (avg 5)"], rows,
            float_format="{:.3f}",
        ),
    )

    annealing_wins = sum(1 for _m, sa, greedy, _r in rows if sa <= greedy + 1e-9)
    beats_random = sum(1 for _m, sa, _g, random in rows if sa <= random + 1e-9)
    # Annealing never loses to random and beats greedy on most mixes.
    assert beats_random == len(rows)
    assert annealing_wins >= 7
