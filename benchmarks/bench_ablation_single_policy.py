"""Ablation: per-application policies vs one global policy.

The paper selects a heterogeneity mapping policy *per application*
(Table 2).  This ablation asks what a single cluster-wide policy would
cost: for each candidate global policy, the average conversion error
across all distributed workloads, compared against the per-application
selection.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.core.policies import POLICY_CLASSES
from repro.experiments.context import default_context
from repro.experiments.fig4_heterogeneity import run_fig4


def test_ablation_single_global_policy(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig4(context))

    per_app_errors = []
    global_errors = {name: [] for name in POLICY_CLASSES}
    for workload, selection in result.selections.items():
        per_app_errors.append(selection.best.average_error)
        for name in POLICY_CLASSES:
            global_errors[name].append(selection.evaluation(name).average_error)

    per_app = sum(per_app_errors) / len(per_app_errors)
    global_avg = {
        name: sum(errors) / len(errors) for name, errors in global_errors.items()
    }
    best_global_name = min(global_avg, key=global_avg.get)

    rows = [("per-application (paper)", per_app)]
    rows += [(f"global {name}", avg) for name, avg in sorted(global_avg.items())]
    record_artifact(
        "ablation_single_policy",
        format_table(["Policy scheme", "Avg conversion error (%)"], rows),
    )

    # Per-application selection dominates any single global policy —
    # the reason Table 2 exists.
    assert per_app <= global_avg[best_global_name]
    # And the naive section's choice of N+1 MAX as "the static best
    # one" is reproduced: it is the best single policy.
    assert best_global_name == "N+1 MAX"
