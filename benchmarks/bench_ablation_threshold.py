"""Ablation: binary-search subdivision threshold sensitivity.

The binary profilers stop subdividing an interval when its endpoint
values differ by less than a threshold.  This ablation sweeps the
threshold and reports the cost/accuracy trade-off for the recommended
binary-optimized algorithm, demonstrating the knob DESIGN.md calls out.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.core.profiling.binary import binary_optimized
from repro.core.profiling.plan import MeasurementOracle
from repro.experiments.context import default_context

THRESHOLDS = (0.02, 0.10, 0.30, 0.60)
WORKLOADS = ("M.milc", "M.Gems", "H.KM")


def run_sweep(context):
    rows = []
    for threshold in THRESHOLDS:
        costs, errors = [], []
        for abbrev in WORKLOADS:
            truth = context.truth_matrix(abbrev)
            oracle = MeasurementOracle(context.runner, abbrev)
            outcome = binary_optimized(
                oracle, context.pressures, context.counts, threshold=threshold
            )
            costs.append(outcome.cost_percent)
            errors.append(outcome.error_against(truth))
        rows.append(
            (threshold, sum(costs) / len(costs), sum(errors) / len(errors))
        )
    return rows


def test_ablation_binary_threshold(benchmark, record_artifact):
    context = default_context()
    rows = run_once(benchmark, lambda: run_sweep(context))
    record_artifact(
        "ablation_threshold",
        format_table(
            ["Threshold", "Avg cost (%)", "Avg error (%)"], rows,
            float_format="{:.2f}",
        ),
    )

    costs = [cost for _t, cost, _e in rows]
    # Looser thresholds never measure more settings.
    assert all(a >= b for a, b in zip(costs, costs[1:]))
    assert costs[0] > costs[-1]
    # Even the loosest setting stays usable.
    assert rows[-1][2] < 12.0
