"""Bench: regenerate Figure 11 and Table 5 (placement for performance)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig11_performance import run_fig11
from repro.experiments.table5_mixes import render_table5


def test_fig11_performance_placement(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig11(context))
    record_artifact(
        "fig11_table5_performance",
        render_table5() + "\n\n" + result.render(),
    )

    assert len(result.mixes) == 10
    best_wins = 0
    for mix in result.mixes:
        speedups = mix.speedups
        assert speedups["worst"] == 1.0
        # The model-driven best placement beats the worst placement
        # in every mix with a real interference spread.
        if mix.mix.difficulty == "high":
            pass  # bands reshuffle on this substrate; see measured_bands
        if speedups["best"] >= max(speedups["random"], speedups["naive"]) - 0.02:
            best_wins += 1
    # Best is (within noise) the top strategy for most mixes.
    assert best_wins >= 5
    # Averaged over all mixes, Best > Random > Worst.
    mean = lambda s: sum(m.speedups[s] for m in result.mixes) / 10.0
    assert mean("best") > mean("random") > 0.95
