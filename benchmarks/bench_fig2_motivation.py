"""Bench: regenerate Figure 2 (naive vs real lammps under libquantum)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig2_motivation import run_fig2


def test_fig2_motivation(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig2(context))
    record_artifact("fig2_motivation", result.render())

    # Headline shape: the naive model rises linearly while reality
    # jumps at the first interfering node.
    assert result.real[0] == 1.0
    assert result.real[1] > result.naive[1] * 1.05
    assert result.real[1] > 1.2
    # Both agree at zero interference; naive is anchored at all-nodes.
    assert result.naive[-1] > result.naive[1]
