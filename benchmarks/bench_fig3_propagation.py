"""Bench: regenerate Figure 3 (propagation curves, all 12 workloads)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig3_propagation import run_fig3


def test_fig3_propagation(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig3(context))
    record_artifact("fig3_propagation", result.render_all())

    assert len(result.matrices) == 12
    # High propagation: one interfering node captures most of the
    # all-nodes damage for M.milc.
    milc = result.curve("M.milc", 8.0)
    assert (milc[1] - 1.0) / (milc[-1] - 1.0) > 0.35
    assert milc[1] > 1.5
    # Proportional: M.Gems's first node causes a small share.
    gems = result.curve("M.Gems", 8.0)
    assert (gems[1] - 1.0) / (gems[-1] - 1.0) < 0.3
    # Low propagation: H.KM stays mild even at max pressure, far
    # below the high-propagation curves.
    kmeans = result.curve("H.KM", 8.0)
    assert kmeans[-1] < 1.65
    assert kmeans[-1] < milc[-1] - 0.5
