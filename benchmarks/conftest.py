"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table or figure), records
its plain-text rendering under ``benchmarks/results/``, and reports its
wall-clock cost through pytest-benchmark.  The profiled model and
measurement caches are shared process-wide (the paper profiles once,
too), so the first bench to need them pays the construction cost.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Directory artifacts are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(artifact_dir):
    """Write a rendered artifact to ``benchmarks/results/<name>.txt``."""

    def _record(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are deterministic and expensive; statistical repetition
    belongs to the simulator's ``rep`` machinery, not the bench loop.
    """
    return benchmark.pedantic(fn, iterations=1, rounds=1)
