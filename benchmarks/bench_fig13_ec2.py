"""Bench: regenerate Figure 13 (EC2 model validation)."""

from conftest import run_once

from repro.experiments.fig12_ec2_propagation import ec2_context
from repro.experiments.fig13_ec2_validation import run_fig13


def test_fig13_ec2_validation(benchmark, record_artifact):
    context = ec2_context()
    result = run_once(benchmark, lambda: run_fig13(context))
    record_artifact("fig13_ec2_validation", result.render())

    averages = result.average_errors()
    assert set(averages) == {"M.milc", "M.Gems", "M.zeus", "M.lu"}
    # The paper reports 3-10% average errors on EC2.
    for workload, error in averages.items():
        assert error < 15.0, workload
