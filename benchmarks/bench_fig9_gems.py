"""Bench: regenerate Figure 9 (predicted vs actual with M.Gems)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig9_gems import run_fig9


def test_fig9_gems_corunner(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig9(context))
    record_artifact("fig9_gems", result.render())

    assert len(result.workloads) == 12
    # Predictions and measurements stay in a sane normalized range.
    assert all(p >= 0.95 for p in result.predicted)
    assert all(a >= 0.9 for a in result.actual)
    # Errors exist (Gems is the least predictable co-runner) but stay
    # bounded.
    errors = result.errors()
    assert max(errors) < 35.0
