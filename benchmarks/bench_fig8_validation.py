"""Bench: regenerate Figure 8 (pairwise model validation)."""

from conftest import run_once

from repro.experiments.context import default_context
from repro.experiments.fig8_validation import run_fig8


def test_fig8_validation(benchmark, record_artifact):
    context = default_context()
    result = run_once(benchmark, lambda: run_fig8(context))
    record_artifact("fig8_validation", result.render())

    averages = result.average_errors()
    assert len(averages) == 12
    # The paper: most workloads under 10% average error.
    under_ten = sum(1 for error in averages.values() if error < 10.0)
    assert under_ten >= 9
    # And the overall average stays in the single digits.
    assert sum(averages.values()) / len(averages) < 10.0
