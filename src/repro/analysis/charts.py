"""ASCII line charts for sensitivity curves.

The repository deliberately has no plotting dependency; these renderers
draw Figure 3-style curves in a terminal, which the examples and CLI
use to make the propagation classes visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.errors import ConfigurationError

#: Glyphs assigned to series, in declaration order.
SERIES_GLYPHS = "ox*+#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render one or more curves as an ASCII scatter chart.

    Parameters
    ----------
    x_values:
        Shared x coordinates (e.g. interfering node counts).
    series:
        Name -> y values, each aligned with ``x_values``.
    width, height:
        Plot area size in characters.
    y_label:
        Optional label printed above the axis.

    Returns
    -------
    str
        The rendered chart, including a legend.
    """
    if not series:
        raise ConfigurationError("no series to chart")
    if len(series) > len(SERIES_GLYPHS):
        raise ConfigurationError(
            f"at most {len(SERIES_GLYPHS)} series supported"
        )
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
    if len(x_values) < 2:
        raise ConfigurationError("need at least two x values")
    if width < 8 or height < 4:
        raise ConfigurationError("chart too small")

    all_y: List[float] = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    for glyph, (name, ys) in zip(SERIES_GLYPHS, series.items()):
        for x, y in zip(x_values, ys):
            grid[row(y)][col(x)] = glyph

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for index, cells in enumerate(grid):
        if index == 0:
            prefix = f"{y_max:7.2f} |"
        elif index == height - 1:
            prefix = f"{y_min:7.2f} |"
        else:
            prefix = " " * 7 + " |"
        lines.append(prefix + "".join(cells))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 8 + f"{x_min:g}" + " " * (width - len(f"{x_min:g}") - len(f"{x_max:g}"))
        + f"{x_max:g}"
    )
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(SERIES_GLYPHS, series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def propagation_chart(matrix, pressures: Sequence[float] | None = None) -> str:
    """Draw a Figure 3 panel from a propagation matrix.

    Parameters
    ----------
    matrix:
        A complete :class:`~repro.core.curves.PropagationMatrix`.
    pressures:
        Pressure rows to draw (default: 2, 5, 8 where available).
    """
    available = list(matrix.pressures)
    if pressures is None:
        pressures = [p for p in (2.0, 5.0, 8.0) if p in available]
        if not pressures:
            pressures = available[:3]
    series: Dict[str, List[float]] = {}
    for pressure in pressures:
        if pressure not in available:
            raise ConfigurationError(f"pressure {pressure} not in the matrix")
        row = available.index(pressure)
        series[f"p{pressure:g}"] = [float(v) for v in matrix.row(row)]
    return ascii_chart(
        [float(c) for c in matrix.counts],
        series,
        y_label="normalized execution time vs interfering nodes",
    )
