"""Error metrics, sampling statistics, and plain-text reporting."""

from repro.analysis.charts import ascii_chart, propagation_chart
from repro.analysis.errors import (
    ErrorSummary,
    absolute_percent_error,
    percent_errors,
)
from repro.analysis.reporting import (
    format_bar_chart,
    format_series,
    format_table,
    normalized_times_table,
)
from repro.analysis.stats import (
    Z_SCORES,
    finite_population_correction,
    margin_of_error,
    required_sample_size,
)

__all__ = [
    "ErrorSummary",
    "ascii_chart",
    "propagation_chart",
    "Z_SCORES",
    "absolute_percent_error",
    "finite_population_correction",
    "format_bar_chart",
    "format_series",
    "format_table",
    "margin_of_error",
    "normalized_times_table",
    "percent_errors",
    "required_sample_size",
]
