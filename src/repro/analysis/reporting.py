"""Plain-text rendering of tables and figure series.

Every experiment module returns structured data; these helpers render
them the way the paper's tables and figures read, so benchmark runs and
examples print directly comparable artifacts without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.
    """
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        if len(cells) != len(headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render figure series as a table: one x column, one per series."""
    headers = [x_label] + list(series)
    rows = []
    for idx, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            if len(values) != len(x_values):
                raise ConfigurationError(
                    f"series {name!r} has {len(values)} points for "
                    f"{len(x_values)} x values"
                )
            row.append(values[idx])
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def format_bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (for examples' output)."""
    if not values:
        raise ConfigurationError("no values to chart")
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{key.ljust(label_width)}  {value:8.3f}{unit} {bar}")
    return "\n".join(lines)


def normalized_times_table(times: Dict[str, float]) -> str:
    """Small helper: instance -> normalized time, sorted by key."""
    return format_table(
        ["instance", "normalized time"],
        [(key, times[key]) for key in sorted(times)],
        float_format="{:.3f}",
    )


def render_service_snapshot(snapshot) -> str:
    """Render a service :class:`~repro.service.telemetry.MetricsSnapshot`.

    Accepts anything exposing ``rows() -> [(metric, value), ...]`` so
    the reporting layer stays import-free of the service package.
    """
    return format_table(["metric", "value"], snapshot.rows(),
                        float_format="{:.3f}")


def render_event_counts(counts: Mapping[str, int]) -> str:
    """Render an event-kind histogram (``EventLog.counts()``)."""
    return format_table(
        ["event", "count"], [(kind, counts[kind]) for kind in sorted(counts)]
    )
