"""Sampling statistics for the policy-selection procedure.

Section 3.3 justifies selecting the heterogeneity policy from 60
samples out of 12,870 configurations: with the observed standard
deviations the sample mean carries a margin of error of about ±1.7
(percentage points of error) at 99% confidence, using the normal
approximation with a finite-population correction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: z quantiles for the confidence levels the paper discusses.
Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def finite_population_correction(sample_size: int, population_size: int) -> float:
    """``sqrt((N - n) / (N - 1))`` — shrinks the error for large samples.

    Raises
    ------
    ConfigurationError
        If sizes are non-positive or the sample exceeds the population.
    """
    if population_size <= 1:
        raise ConfigurationError("population must have at least 2 members")
    if not 0 < sample_size <= population_size:
        raise ConfigurationError("sample size must be in (0, population]")
    return math.sqrt((population_size - sample_size) / (population_size - 1))


def margin_of_error(
    sample: Sequence[float],
    *,
    population_size: int,
    confidence: float = 0.99,
) -> float:
    """Margin of error of the sample mean at ``confidence``.

    The paper's calculation: ``z * s / sqrt(n)`` with the finite
    population correction, assuming a normal population whose standard
    deviation follows the sample's.
    """
    if confidence not in Z_SCORES:
        raise ConfigurationError(
            f"confidence must be one of {sorted(Z_SCORES)}, got {confidence}"
        )
    arr = np.asarray(list(sample), dtype=float)
    if arr.size < 2:
        raise ConfigurationError("margin of error needs at least 2 samples")
    z = Z_SCORES[confidence]
    correction = finite_population_correction(int(arr.size), population_size)
    return float(z * arr.std(ddof=1) / math.sqrt(arr.size) * correction)


def required_sample_size(
    std_dev: float,
    *,
    target_margin: float,
    population_size: int,
    confidence: float = 0.99,
) -> int:
    """Smallest sample size achieving ``target_margin``.

    Inverts :func:`margin_of_error` (with the finite-population
    correction folded in iteratively).
    """
    if std_dev < 0 or target_margin <= 0:
        raise ConfigurationError("std_dev must be >= 0 and target_margin > 0")
    if std_dev == 0:
        return 2
    z = Z_SCORES[confidence]
    n0 = (z * std_dev / target_margin) ** 2
    # Finite-population adjustment: n = n0 / (1 + (n0 - 1) / N).
    n = n0 / (1.0 + (n0 - 1.0) / population_size)
    return max(2, math.ceil(n))
