"""Error metrics used throughout the evaluation.

The paper reports prediction quality as absolute percentage error of
normalized execution times, summarized per workload with means and
percentile bars (Figure 8 shows 25%-75% bars; Figure 4 shows min/max
bars).  This module centralizes those computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def absolute_percent_error(predicted: float, actual: float) -> float:
    """``|predicted - actual| / actual * 100``.

    Raises
    ------
    ConfigurationError
        If ``actual`` is non-positive (normalized times are >= 1).
    """
    if actual <= 0:
        raise ConfigurationError("actual value must be positive")
    return abs(predicted - actual) / actual * 100.0


def percent_errors(
    predicted: Sequence[float], actual: Sequence[float]
) -> np.ndarray:
    """Element-wise absolute percentage errors."""
    predicted_arr = np.asarray(predicted, dtype=float)
    actual_arr = np.asarray(actual, dtype=float)
    if predicted_arr.shape != actual_arr.shape:
        raise ConfigurationError("predicted and actual must align")
    if np.any(actual_arr <= 0):
        raise ConfigurationError("actual values must be positive")
    return np.abs(predicted_arr - actual_arr) / actual_arr * 100.0


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of a set of percentage errors."""

    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    count: int

    @classmethod
    def of(cls, errors: Sequence[float]) -> "ErrorSummary":
        """Summarize a non-empty error sample."""
        arr = np.asarray(list(errors), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("cannot summarize an empty error sample")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            p25=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            p75=float(np.percentile(arr, 75)),
            maximum=float(arr.max()),
            count=int(arr.size),
        )

    def iqr_bar(self) -> Tuple[float, float]:
        """(25th, 75th) percentile pair — Figure 8's error bars."""
        return (self.p25, self.p75)

    def range_bar(self) -> Tuple[float, float]:
        """(min, max) pair — Figure 4's error bars."""
        return (self.minimum, self.maximum)
