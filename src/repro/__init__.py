"""Interference management for distributed parallel applications.

A faithful reproduction of Han, Jeon, Choi, and Huh, *Interference
Management for Distributed Parallel Applications in Consolidated
Clusters* (ASPLOS 2016), built on a simulated consolidated cluster.

The package layers:

* :mod:`repro.cluster` — hosts, VMs, and the shared-resource
  contention abstraction (bubble pressure).
* :mod:`repro.apps` — behavioural models of the Table 1 workloads,
  whose synchronization structure yields the paper's propagation
  classes.
* :mod:`repro.sim` — the discrete-event executor and the measurement
  oracle (the "testbed" the model is profiled against).
* :mod:`repro.core` — the contribution: propagation matrices,
  heterogeneity policies, bubble scoring, profiling algorithms, and
  the interference-aware model (plus the naive baseline).
* :mod:`repro.placement` — simulated-annealing QoS and throughput
  placement case studies.
* :mod:`repro.ec2` — the 32-VM scale-out validation environment.
* :mod:`repro.experiments` — one module per paper table/figure.

Quick start::

    from repro import ClusterRunner, build_model

    runner = ClusterRunner()
    report = build_model(runner, ["M.lmps", "M.Gems"], policy_samples=20)
    model = report.model
    # predicted slowdown of lammps with 3 nodes at bubble pressure 5:
    model.predict_homogeneous("M.lmps", pressure=5.0, count=3)
"""

from repro.apps import (
    ALL_WORKLOADS,
    BATCH_WORKLOADS,
    DISTRIBUTED_WORKLOADS,
    get_workload,
    make_bubble,
)
from repro.cluster import Cluster, ClusterSpec
from repro.core import (
    InterferenceModel,
    InterferenceProfile,
    NaiveProportionalModel,
    PropagationMatrix,
    build_batch_profiles,
    build_model,
    load_model,
    save_model,
)
from repro.errors import (
    CatalogError,
    ConfigurationError,
    ModelError,
    PlacementError,
    ProfilingError,
    ReproError,
    ServiceError,
    SimulationError,
)
from repro.placement import (
    InstanceSpec,
    Placement,
    QoSAwarePlacer,
    QoSConstraint,
    ThroughputPlacer,
)
from repro.service import (
    ConsolidationService,
    Job,
    ServiceConfig,
    StreamConfig,
    WorkloadStream,
)
from repro.sim import ClusterRunner
from repro.units import MAX_PRESSURE, NUM_PRESSURE_LEVELS

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "BATCH_WORKLOADS",
    "CatalogError",
    "Cluster",
    "ClusterRunner",
    "ClusterSpec",
    "ConfigurationError",
    "ConsolidationService",
    "DISTRIBUTED_WORKLOADS",
    "InstanceSpec",
    "Job",
    "InterferenceModel",
    "InterferenceProfile",
    "MAX_PRESSURE",
    "ModelError",
    "NUM_PRESSURE_LEVELS",
    "NaiveProportionalModel",
    "Placement",
    "PlacementError",
    "ProfilingError",
    "PropagationMatrix",
    "QoSAwarePlacer",
    "QoSConstraint",
    "ReproError",
    "ServiceConfig",
    "ServiceError",
    "SimulationError",
    "StreamConfig",
    "ThroughputPlacer",
    "WorkloadStream",
    "build_batch_profiles",
    "build_model",
    "get_workload",
    "load_model",
    "make_bubble",
    "save_model",
    "__version__",
]
