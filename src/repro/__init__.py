"""Interference management for distributed parallel applications.

A faithful reproduction of Han, Jeon, Choi, and Huh, *Interference
Management for Distributed Parallel Applications in Consolidated
Clusters* (ASPLOS 2016), built on a simulated consolidated cluster.

The package layers:

* :mod:`repro.cluster` — hosts, VMs, and the shared-resource
  contention abstraction (bubble pressure).
* :mod:`repro.apps` — behavioural models of the Table 1 workloads,
  whose synchronization structure yields the paper's propagation
  classes.
* :mod:`repro.sim` — the discrete-event executor and the measurement
  oracle (the "testbed" the model is profiled against).
* :mod:`repro.core` — the contribution: propagation matrices,
  heterogeneity policies, bubble scoring, profiling algorithms, and
  the interference-aware model (plus the naive baseline).
* :mod:`repro.placement` — simulated-annealing QoS and throughput
  placement case studies.
* :mod:`repro.service` — the online consolidation service.
* :mod:`repro.obs` — structured tracing and metrics.
* :mod:`repro.ec2` — the 32-VM scale-out validation environment.
* :mod:`repro.experiments` — one module per paper table/figure.

The supported import surface is :mod:`repro.api`, re-exported here
one-to-one.  Quick start::

    from repro.api import ClusterRunner, build_model

    runner = ClusterRunner()
    report = build_model(runner, ["M.lmps", "M.Gems"], policy_samples=20)
    model = report.model
    # predicted slowdown of lammps with 3 nodes at bubble pressure 5:
    model.predict("M.lmps", (5.0, 3))

A handful of symbols that used to live at the top level but are not
part of the curated surface (``Cluster``, ``make_bubble``,
``MAX_PRESSURE``, ``NUM_PRESSURE_LEVELS``) remain importable through
deprecation shims that warn once per symbol; import them from their
defining module instead.
"""

from __future__ import annotations

import warnings

from repro.api import *  # noqa: F401,F403 — the curated surface, one-to-one
from repro.api import __all__ as _API_ALL

__version__ = "1.1.0"

__all__ = list(_API_ALL) + ["__version__"]

#: Legacy top-level names -> (module, attribute) they now live at.
_LEGACY_ALIASES = {
    "Cluster": ("repro.cluster", "Cluster"),
    "make_bubble": ("repro.apps", "make_bubble"),
    "MAX_PRESSURE": ("repro.units", "MAX_PRESSURE"),
    "NUM_PRESSURE_LEVELS": ("repro.units", "NUM_PRESSURE_LEVELS"),
}

#: Symbols whose deprecation warning has already fired (one per symbol).
_LEGACY_WARNED: set = set()


def __getattr__(name: str):
    """Deprecation shims for pre-1.1 top-level symbols.

    Each legacy name resolves to the same object as its new home
    (identity-preserving: the resolved object is cached in module
    globals, so repeated imports return the same thing without
    re-warning).
    """
    try:
        module_name, attr = _LEGACY_ALIASES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if name not in _LEGACY_WARNED:
        _LEGACY_WARNED.add(name)
        warnings.warn(
            f"importing {name!r} from 'repro' is deprecated; "
            f"use 'from {module_name} import {attr}' instead",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: later lookups skip __getattr__
    return value
