"""The retrying measurement path: faults in, one reading out.

:func:`attempt_reading` runs a single measurement closure under a
:class:`~repro.faults.plan.FaultPlan` and a
:class:`~repro.faults.retry.RetryPolicy`:

* a crashed attempt is retried after a deterministic simulated-time
  backoff (``retry.attempt`` spans, ``fault.crash`` / ``retry.attempts``
  counters),
* a reading slower than the policy's timeout is discarded and retried
  (``fault.timeout``),
* a surviving reading may still come back straggler-inflated or as an
  outlier (``fault.straggler`` / ``fault.outlier``) — detecting and
  re-probing those is the *caller's* job (robust profiling), because
  the measurement path cannot tell a slow run from a slowed-down one,
* an exhausted retry budget raises
  :class:`~repro.errors.MeasurementFault` (``fault.exhausted``) so the
  caller can degrade instead of trusting a reading it never got.

All activity is counted through :mod:`repro.obs`, so a traced faulty
run reports its ``fault.*`` / ``retry.*`` totals — and those totals are
byte-stable across repeated runs of the same plan.
"""

from __future__ import annotations

from typing import Callable, Tuple, TypeVar

from repro.errors import MeasurementFault
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs import recorder as _obs

R = TypeVar("R")


def attempt_reading(
    plan: FaultPlan,
    policy: RetryPolicy,
    label: Tuple,
    simulate: Callable[[], R],
    *,
    workload: str = "",
    perturb: bool = True,
) -> R:
    """One fault-injected, retried reading.

    Parameters
    ----------
    plan / policy:
        The fault source and the retry budget.
    label:
        Stable identity of the reading; every fault decision is a pure
        function of it (plus the attempt index).
    simulate:
        Zero-argument closure producing the clean reading.  Called at
        most once per attempt; a crashed attempt never calls it.
    workload:
        Attached to spans and to the exhaustion error.
    perturb:
        Whether straggler/outlier value corruption applies.  Ground
        truth co-runs keep it off: their runs can crash and be retried,
        but a completed run's value is what the cluster reported.

    Returns
    -------
    float
        The (possibly perturbed) reading.

    Raises
    ------
    MeasurementFault
        After ``policy.max_attempts`` failed attempts.
    """
    for attempt in range(policy.max_attempts):
        if plan.crashes(label, attempt):
            _failed_attempt(policy, "crash", workload, attempt)
            continue
        reading = simulate()
        # Multi-value readings (co-run dicts) cannot time out as a
        # unit; only scalar readings are bounded.
        if isinstance(reading, (int, float)) and policy.times_out(reading):
            _failed_attempt(policy, "timeout", workload, attempt)
            continue
        if perturb:
            straggler = plan.straggler(label, attempt)
            if straggler != 1.0:
                reading *= straggler
                _obs.RECORDER.count("fault.straggler")
            outlier = plan.outlier(label, attempt)
            if outlier != 1.0:
                reading *= outlier
                _obs.RECORDER.count("fault.outlier")
        if attempt > 0:
            _obs.RECORDER.count("retry.recovered")
        return reading
    _obs.RECORDER.count("fault.exhausted")
    raise MeasurementFault(
        f"reading {label!r} still faulting after "
        f"{policy.max_attempts} attempt(s)",
        workload=workload,
    )


def _failed_attempt(
    policy: RetryPolicy, reason: str, workload: str, attempt: int
) -> None:
    """Account one failed attempt: counters plus a backoff-charged span."""
    backoff = policy.backoff(attempt + 1)
    _obs.RECORDER.count(f"fault.{reason}")
    _obs.RECORDER.count("retry.attempts")
    _obs.RECORDER.count("retry.backoff_sim", backoff)
    with _obs.RECORDER.span(
        "retry.attempt", reason=reason, attempt=attempt, workload=workload
    ) as span:
        span.set_sim(backoff)
