"""Graceful degradation: conservative predictions for faulted workloads.

When profiling a workload kept faulting (a probe exhausted its retry
budget, so part of its propagation matrix rests on a fallback rather
than a measurement), the admission controller must not admit on the
strength of that profile alone.  The fallback here is the paper's most
pessimistic heterogeneity mapping: **ALL max** — the worst pressure
anywhere is assumed to reach every node — applied to the workload's own
propagation matrix.  Over-predicting slowdown can only make admission
*more* conservative, never admit a tenant into a violated bound.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def conservative_prediction(
    model,
    workload: str,
    workload_nodes: Sequence[int],
    co_runners_by_node: Mapping[int, Sequence[str]],
) -> float:
    """ALL-max normalized-time prediction for a degraded workload.

    Mirrors :meth:`repro.core.model.InterferenceModel.predict_under_corunners`
    but forces the ALL-max mapping policy instead of the profile's
    selected one (including the profiled-span rescaling of the
    converted node count).
    """
    # Imported lazily: repro.core pulls in the profiling stack, which
    # imports the runner, which imports this package — a module-level
    # import here would close that cycle.
    from repro.core.curves import HomogeneousSetting
    from repro.core.policies import AllMaxPolicy

    vector = model.pressure_vector(workload_nodes, co_runners_by_node)
    profile = model.profile(workload)
    setting = AllMaxPolicy().convert(vector)
    scale = profile.matrix.max_count / len(vector)
    return profile.matrix.lookup(
        HomogeneousSetting(setting.pressure, setting.count * scale)
    )


def conservative_placements_batch(
    model,
    placements: Sequence,
    workload: str,
    instance_key: str,
):
    """:func:`conservative_prediction` for one instance across a wave.

    Returns a float array with one ALL-max prediction per candidate
    placement, bit-identical to calling :func:`conservative_prediction`
    per candidate.  Models exposing a ``prediction_kernel`` (the
    interference-aware family) are evaluated in one vectorized batch;
    anything else falls back to the scalar loop.
    """
    import numpy as np

    from repro.core.policies import AllMaxPolicy

    kernel_of = getattr(model, "prediction_kernel", None)
    if kernel_of is not None:
        kernel = kernel_of()
        if kernel.knows(workload):
            vectors = [
                kernel.pressure_vector(
                    placement.spanned_nodes(instance_key),
                    placement.co_runner_workloads(instance_key),
                )
                for placement in placements
            ]
            values = kernel.predict_vectors(
                [workload] * len(placements),
                vectors,
                policy_override=AllMaxPolicy(),
            )
            if values is not None:
                return values
    return np.array(
        [
            conservative_prediction(
                model,
                workload,
                placement.spanned_nodes(instance_key),
                placement.co_runner_workloads(instance_key),
            )
            for placement in placements
        ],
        dtype=float,
    )


def supports_degradation(model) -> bool:
    """Whether ``model`` exposes what :func:`conservative_prediction` needs."""
    return hasattr(model, "profile") and hasattr(model, "pressure_vector")
