"""Bounded, deterministic retry of faulting measurements.

The tolerance half of the fault subsystem: a :class:`RetryPolicy` caps
how many attempts a reading gets, charges a *simulated-time* backoff
between attempts (wall-clock plays no role, so retries are as
deterministic as the faults themselves), and optionally bounds how long
a single reading may take before it is treated as hung and retried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a reading up.

    Parameters
    ----------
    max_attempts:
        Total attempts a reading gets (first try included).
    backoff_base / backoff_factor:
        Simulated-time delay charged before retry ``k`` (1-based) is
        ``backoff_base * backoff_factor ** (k - 1)`` — exponential,
        and a pure function of the attempt index.
    reading_timeout:
        Optional simulated-time bound on one reading; a reading slower
        than this (e.g. a straggler-inflated run) counts as a failed
        attempt instead of being believed.  ``None`` disables it.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    reading_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("max_attempts must be at least 1")
        if self.backoff_base < 0.0:
            raise FaultError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise FaultError("backoff_factor must be >= 1.0")
        if self.reading_timeout is not None and self.reading_timeout <= 0.0:
            raise FaultError("reading_timeout must be positive")

    def backoff(self, retry_index: int) -> float:
        """Simulated-time delay before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise FaultError("retry_index is 1-based")
        return self.backoff_base * self.backoff_factor ** (retry_index - 1)

    def total_backoff(self, retries: int) -> float:
        """Simulated time spent backing off across ``retries`` retries."""
        return sum(self.backoff(i) for i in range(1, retries + 1))

    def times_out(self, reading: float) -> bool:
        """Whether a reading exceeds the per-reading timeout."""
        return self.reading_timeout is not None and reading > self.reading_timeout


#: Policy used when a runner has faults but no explicit policy.
DEFAULT_RETRY_POLICY = RetryPolicy()
