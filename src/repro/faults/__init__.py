"""Deterministic fault injection and the tolerance machinery around it.

The fault model (what can break) lives in :mod:`repro.faults.plan`; the
retry semantics (how readings survive it) in :mod:`repro.faults.retry`
and :mod:`repro.faults.injection`; the admission fallback for workloads
whose profiles could not be measured reliably in
:mod:`repro.faults.degradation`.  See ``docs/robustness.md`` for the
full failure story.
"""

from repro.faults.degradation import conservative_prediction, supports_degradation
from repro.faults.injection import attempt_reading
from repro.faults.plan import FAULT_FAMILIES, FaultConfig, FaultPlan
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAULT_FAMILIES",
    "FaultConfig",
    "FaultPlan",
    "RetryPolicy",
    "attempt_reading",
    "conservative_prediction",
    "supports_degradation",
]
