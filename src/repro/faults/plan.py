"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` decides — ahead of time, as a pure function of its
seed and the label of the thing being faulted — which measurement
attempts crash, which readings come back straggler-inflated or as
outright garbage, and which fan-out worker pools die mid-batch.  Each
fault family draws from its **own** stable-seeded stream
(``stable_seed(seed, "fault", family, *labels)``), so

* enabling one family never perturbs another family's draws,
* a decision depends only on the label, never on how many (or in what
  order) other decisions were queried, and
* the same plan replayed over the same run produces byte-identical
  fault activity — which is what the determinism tests and the
  ``chaos-smoke`` CI job compare.

Plans serialize to plain JSON so every CLI verb can take
``--faults plan.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Tuple, Union

from repro._util import make_rng, stable_seed
from repro.errors import FaultError

#: Fault families, each with its own independent RNG stream.  The
#: ``worker`` and ``lease`` families target the daemon's executor pool
#: (a claimed epoch execution dying, a lease lapsing un-renewed); they
#: never touch measurement draws, so enabling them leaves event-log
#: bytes identical to an uninjected day.  The ``preempt`` family
#: targets the capacity provider's spot instances (a two-phase
#: warning-then-reclaim, see :mod:`repro.providers`); like the daemon
#: families it draws from its own stream, so a plan that only preempts
#: perturbs no measurement.
FAULT_FAMILIES = (
    "crash", "straggler", "outlier", "pool", "worker", "lease", "preempt",
)


@dataclass(frozen=True)
class FaultConfig:
    """Rates and magnitudes of every injectable fault family.

    Parameters
    ----------
    seed:
        Root seed of all fault streams.
    crash_rate:
        Probability one measurement *attempt* dies before producing a
        reading (a node crash mid-run).  Independent per attempt, so a
        retry of the same reading may succeed.
    straggler_rate / straggler_factor:
        Probability a reading is inflated by a straggling node, and the
        multiplicative slowdown it suffers.
    outlier_rate / outlier_factor:
        Probability a probe reading comes back as garbage, and how far
        off it lands.  Outliers are large by construction so robust
        profilers can detect and re-probe them.
    pool_failure_rate:
        Probability a parallel measurement fan-out loses a worker
        process mid-batch.
    worker_crash_rate:
        Probability one claimed epoch *execution attempt* in the
        daemon's executor pool dies mid-run (the worker stops renewing
        its lease and never commits; the health-checker reaps and
        requeues the work).
    lease_expiry_rate:
        Probability an execution attempt wedges: the worker stops
        renewing but eventually finishes and tries a stale commit,
        which the status-updater must fence off.
    preemption_rate:
        Per-(spot instance, epoch) probability the provider issues a
        preemption *warning* for that instance.  Reclaim follows
        ``preemption_warning_epochs`` later (two-phase, like real spot
        markets); durable instances are never preempted.
    preemption_warning_epochs:
        Epochs between a preemption warning and the reclaim — the
        evacuation window the rescheduler gets to drain the instance.
    """

    seed: int = 0
    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 1.5
    outlier_rate: float = 0.0
    outlier_factor: float = 25.0
    pool_failure_rate: float = 0.0
    worker_crash_rate: float = 0.0
    lease_expiry_rate: float = 0.0
    preemption_rate: float = 0.0
    preemption_warning_epochs: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate", "outlier_rate",
                     "pool_failure_rate", "worker_crash_rate",
                     "lease_expiry_rate", "preemption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_factor < 1.0:
            raise FaultError("straggler_factor must be >= 1.0")
        if self.outlier_factor <= 0.0:
            raise FaultError("outlier_factor must be positive")
        if self.preemption_warning_epochs < 0:
            raise FaultError("preemption_warning_epochs must be non-negative")


class FaultPlan:
    """Deterministic per-label fault decisions over a :class:`FaultConfig`.

    Every query derives a child generator from the plan seed, the fault
    family, and the caller-supplied label, so decisions are stable
    across runs, processes, and query order.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any fault family has a nonzero rate."""
        cfg = self.config
        return any(
            rate > 0.0
            for rate in (cfg.crash_rate, cfg.straggler_rate,
                         cfg.outlier_rate, cfg.pool_failure_rate,
                         cfg.worker_crash_rate, cfg.lease_expiry_rate,
                         cfg.preemption_rate)
        )

    def signature(self) -> str:
        """Stable identity of this plan (folded into cache fingerprints).

        A reading recorded under one fault plan must never be replayed
        into a run under a different plan (or none).
        """
        cfg = self.config
        return "faults|" + "|".join(
            str(part) for part in (
                cfg.seed, cfg.crash_rate, cfg.straggler_rate,
                cfg.straggler_factor, cfg.outlier_rate, cfg.outlier_factor,
                cfg.pool_failure_rate, cfg.worker_crash_rate,
                cfg.lease_expiry_rate, cfg.preemption_rate,
                cfg.preemption_warning_epochs,
            )
        )

    def _draw(self, family: str, labels: Tuple) -> "float":
        rng = make_rng(stable_seed(self.config.seed, "fault", family, *labels))
        return float(rng.random())

    # ------------------------------------------------------------------
    # Per-family decisions
    # ------------------------------------------------------------------
    def crashes(self, label: Tuple, attempt: int) -> bool:
        """Does attempt ``attempt`` of the reading ``label`` crash?"""
        if self.config.crash_rate <= 0.0:
            return False
        return self._draw("crash", label + (attempt,)) < self.config.crash_rate

    def straggler(self, label: Tuple, attempt: int) -> float:
        """Multiplicative straggler inflation of a reading (1.0 = none)."""
        if self.config.straggler_rate <= 0.0:
            return 1.0
        if self._draw("straggler", label + (attempt,)) < self.config.straggler_rate:
            return self.config.straggler_factor
        return 1.0

    def outlier(self, label: Tuple, attempt: int) -> float:
        """Multiplicative garbage factor of a reading (1.0 = clean)."""
        if self.config.outlier_rate <= 0.0:
            return 1.0
        if self._draw("outlier", label + (attempt,)) < self.config.outlier_rate:
            return self.config.outlier_factor
        return 1.0

    def pool_fails(self, label: Tuple) -> bool:
        """Does the fan-out batch ``label`` lose a worker process?"""
        if self.config.pool_failure_rate <= 0.0:
            return False
        return self._draw("pool", label) < self.config.pool_failure_rate

    def worker_crashes(self, epoch: int, attempt: int) -> bool:
        """Does execution attempt ``attempt`` of ``epoch`` die mid-run?

        A crashed attempt stops renewing its lease and never commits;
        the daemon's health-checker reaps the expired lease, requeues
        the work, and replaces the dead worker.  Drawn from the
        ``worker`` family's own stream, so enabling it perturbs no
        measurement draw (event-log bytes stay identical).
        """
        if self.config.worker_crash_rate <= 0.0:
            return False
        return (
            self._draw("worker", (epoch, attempt))
            < self.config.worker_crash_rate
        )

    def lease_expires(self, epoch: int, attempt: int) -> bool:
        """Does attempt ``attempt`` of ``epoch`` wedge past its lease?

        A wedged attempt stops renewing but finishes eventually and
        tries to commit under its stale lease — which the
        status-updater must reject, since the reaped work has been
        requeued (and possibly committed) by another worker.
        """
        if self.config.lease_expiry_rate <= 0.0:
            return False
        return (
            self._draw("lease", (epoch, attempt))
            < self.config.lease_expiry_rate
        )

    def preempts(self, node_id: int, epoch: int) -> bool:
        """Is a preemption warning issued for spot instance ``node_id``?

        Drawn per (instance, epoch) from the ``preempt`` family's own
        stream, so the decision is independent of pool size, query
        order, and every measurement draw — a churn plan replayed over
        the same day warns (and reclaims) the same instances at the
        same epochs.  The caller (the provider) owns the two-phase
        bookkeeping: reclaim follows ``preemption_warning_epochs``
        after the warning.
        """
        if self.config.preemption_rate <= 0.0:
            return False
        return (
            self._draw("preempt", (node_id, epoch))
            < self.config.preemption_rate
        )

    def pool_victim(self, label: Tuple, batch_size: int) -> int:
        """Which item of a failing batch the dying worker was holding."""
        if batch_size <= 0:
            raise FaultError("batch_size must be positive")
        rng = make_rng(stable_seed(self.config.seed, "fault", "pool-victim",
                                   *label))
        return int(rng.integers(batch_size))

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that injects nothing (all rates zero)."""
        return cls(FaultConfig())

    @classmethod
    def chaos(cls, seed: int = 0, *, scale: float = 1.0) -> "FaultPlan":
        """A ready-made moderately hostile plan for chaos testing."""
        if scale < 0.0:
            raise FaultError("scale must be non-negative")
        return cls(FaultConfig(
            seed=seed,
            crash_rate=min(0.15 * scale, 1.0),
            straggler_rate=min(0.10 * scale, 1.0),
            outlier_rate=min(0.08 * scale, 1.0),
            pool_failure_rate=min(0.20 * scale, 1.0),
        ))

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same rates under a different root seed."""
        return FaultPlan(replace(self.config, seed=seed))

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return asdict(self.config)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`.

        Raises
        ------
        FaultError
            On unknown keys, so a typo'd plan file fails loudly rather
            than silently injecting nothing.
        """
        known = set(FaultConfig.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise FaultError(
                f"unknown fault plan keys: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(FaultConfig(**payload))

    def save(self, path: Union[str, Path]) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan written by :meth:`save` (or by hand).

        Raises
        ------
        FaultError
            If the file is unreadable or not a valid plan.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path!s}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan {path!s} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise FaultError(f"fault plan {path!s} must be a JSON object")
        return cls.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.config!r})"
