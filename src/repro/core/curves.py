"""Interference sensitivity curves and the propagation matrix.

The propagation model of Section 3.4 is a matrix ``T`` where
``T[i][j]`` is the execution time, normalized to the no-interference
solo run, when ``j`` nodes interfere at bubble pressure level ``i+1``
(the curves of Figure 3).  Profiling fills the matrix; prediction reads
it back, bilinearly interpolating because heterogeneity conversion
produces fractional pressures (bubble scores like 4.3) and fractional
node counts never — but out-of-grid counts on EC2's sparse count axis
do (Figure 12 profiles counts 0,1,2,4,8,16,24,32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.units import validate_pressure


@dataclass(frozen=True)
class HomogeneousSetting:
    """A homogeneous interference setting: ``count`` nodes at ``pressure``."""

    pressure: float
    count: float

    def __post_init__(self) -> None:
        validate_pressure(self.pressure)
        if self.count < 0:
            raise ValueError("count must be non-negative")


class PropagationMatrix:
    """Normalized execution times over (pressure level, interfering nodes).

    Parameters
    ----------
    pressures:
        Strictly increasing bubble pressure levels (the row axis),
        e.g. ``[1, 2, ..., 8]``.
    counts:
        Strictly increasing interfering-node counts (the column axis),
        starting at 0, e.g. ``[0, 1, ..., 8]`` or EC2's sparse
        ``[0, 1, 2, 4, 8, 16, 24, 32]``.
    values:
        Matrix of normalized times, shape ``(len(pressures),
        len(counts))``; ``values[:, 0]`` must be 1 (no interference).
        ``None`` entries are allowed during construction via
        :meth:`empty`; a complete matrix has no ``None``.
    """

    def __init__(
        self,
        pressures: Sequence[float],
        counts: Sequence[float],
        values: np.ndarray,
    ) -> None:
        self.pressures = np.asarray(pressures, dtype=float)
        self.counts = np.asarray(counts, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.pressures.ndim != 1 or len(self.pressures) == 0:
            raise ModelError("pressures must be a non-empty 1-D sequence")
        if self.counts.ndim != 1 or len(self.counts) == 0:
            raise ModelError("counts must be a non-empty 1-D sequence")
        if np.any(np.diff(self.pressures) <= 0):
            raise ModelError("pressures must be strictly increasing")
        if np.any(np.diff(self.counts) <= 0):
            raise ModelError("counts must be strictly increasing")
        if self.counts[0] != 0:
            raise ModelError("counts must start at 0 (the no-interference column)")
        if self.values.shape != (len(self.pressures), len(self.counts)):
            raise ModelError(
                f"values shape {self.values.shape} does not match axes "
                f"({len(self.pressures)}, {len(self.counts)})"
            )

    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls, pressures: Sequence[float], counts: Sequence[float]
    ) -> "PropagationMatrix":
        """A matrix of NaNs with the no-interference column set to 1."""
        values = np.full((len(pressures), len(counts)), np.nan)
        values[:, 0] = 1.0
        return cls(pressures, counts, values)

    @property
    def num_levels(self) -> int:
        """Number of pressure levels (rows)."""
        return len(self.pressures)

    @property
    def max_count(self) -> float:
        """Largest interfering-node count on the column axis."""
        return float(self.counts[-1])

    def is_complete(self) -> bool:
        """Whether every cell holds a measured or interpolated value."""
        return not np.any(np.isnan(self.values))

    def copy(self) -> "PropagationMatrix":
        """Deep copy (profilers mutate their working matrices)."""
        return PropagationMatrix(
            self.pressures.copy(), self.counts.copy(), self.values.copy()
        )

    # ------------------------------------------------------------------
    def row(self, level_index: int) -> np.ndarray:
        """One sensitivity curve: normalized times across counts."""
        return self.values[level_index]

    def set(self, level_index: int, count_index: int, value: float) -> None:
        """Store one cell value."""
        if value <= 0:
            raise ModelError("normalized times must be positive")
        self.values[level_index, count_index] = value

    def get(self, level_index: int, count_index: int) -> float:
        """Read one cell value (NaN if unfilled)."""
        return float(self.values[level_index, count_index])

    # ------------------------------------------------------------------
    def lookup(self, setting: HomogeneousSetting) -> float:
        """Predict the normalized time of a homogeneous setting.

        Bilinear interpolation over (pressure, count).  Pressures below
        the first profiled level interpolate toward the implicit
        pressure-0 row of ones; pressures above the last level and
        counts above the last column clamp (the bubble scale and the
        cluster size bound the physical domain).

        Raises
        ------
        ModelError
            If the matrix still has unfilled cells.
        """
        if not self.is_complete():
            raise ModelError("cannot look up an incomplete propagation matrix")
        if setting.count <= 0 or setting.pressure <= 0:
            return 1.0
        count = min(setting.count, self.max_count)
        pressure = min(setting.pressure, float(self.pressures[-1]))

        column = self._interp_columns(count)
        # Interpolate along pressure, with an implicit (0, 1.0) anchor.
        levels = self.pressures
        if pressure <= levels[0]:
            fraction = pressure / levels[0]
            return 1.0 + (column[0] - 1.0) * fraction
        return float(np.interp(pressure, levels, column))

    def _interp_columns(self, count: float) -> np.ndarray:
        """Per-row value at a (possibly fractional) node count."""
        return np.array(
            [np.interp(count, self.counts, self.values[i]) for i in range(len(self.pressures))]
        )

    def lookup_batch(
        self, pressures: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`lookup` over parallel setting arrays.

        ``pressures[i]`` and ``counts[i]`` describe one homogeneous
        setting; the result is bit-identical to calling :meth:`lookup`
        per element (same interpolation bracketing, same clamp and
        blend operation order), which is what lets the batch prediction
        path stand in for the scalar one without moving any float.

        Raises
        ------
        ModelError
            If the matrix still has unfilled cells.
        """
        if not self.is_complete():
            raise ModelError("cannot look up an incomplete propagation matrix")
        pressure_in = np.asarray(pressures, dtype=float)
        count_in = np.asarray(counts, dtype=float)
        out = np.ones(pressure_in.shape, dtype=float)
        active = (count_in > 0.0) & (pressure_in > 0.0)
        if not active.any():
            return out
        count = np.minimum(count_in[active], self.max_count)
        levels = self.pressures
        pressure = np.minimum(pressure_in[active], levels[-1])

        # Count-axis interpolation: every sensitivity curve shares the
        # count axis, so one bracketing serves all rows at once.
        columns = _interp_rows(count, self.counts, self.values)

        result = np.empty(count.size, dtype=float)
        below = pressure <= levels[0]
        if below.any():
            fraction = pressure[below] / levels[0]
            result[below] = 1.0 + (columns[0, below] - 1.0) * fraction
        above = ~below
        if above.any():
            result[above] = _interp_per_column(
                pressure[above], levels, columns[:, above]
            )
        out[active] = result
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "pressures": self.pressures.tolist(),
            "counts": self.counts.tolist(),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PropagationMatrix":
        """Inverse of :meth:`to_dict`."""
        return cls(payload["pressures"], payload["counts"], np.array(payload["values"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PropagationMatrix(levels={len(self.pressures)}, "
            f"counts={self.counts.tolist()})"
        )


def _interp_per_column(
    x: np.ndarray, xp: np.ndarray, fp: np.ndarray
) -> np.ndarray:
    """``np.interp(x[i], xp, fp[:, i])`` for every ``i``, bit-identically.

    ``np.interp`` only broadcasts over ``x``, not over per-element
    ordinate columns, so the pressure-axis interpolation replicates its
    C kernel by hand: bracket with a right-sided binary search, then
    apply the identical slope/offset arithmetic (including the exact-knot
    shortcut and the NaN fallback recomputation from the right knot).
    Inputs must already satisfy ``xp[0] < x <= xp[-1]``.
    """
    index = np.searchsorted(xp, x, side="right") - 1
    columns = np.arange(x.size)
    result = np.empty(x.size, dtype=float)
    last = index == len(xp) - 1
    result[last] = fp[-1, columns[last]]
    rest = ~last
    j = index[rest]
    col = columns[rest]
    x_rest = x[rest]
    left = fp[j, col]
    slope = (fp[j + 1, col] - left) / (xp[j + 1] - xp[j])
    value = slope * (x_rest - xp[j]) + left
    overflow = np.isnan(value)
    if overflow.any():
        value[overflow] = (slope * (x_rest - xp[j + 1]) + fp[j + 1, col])[
            overflow
        ]
        flat = np.isnan(value) & (left == fp[j + 1, col])
        value[flat] = left[flat]
    result[rest] = np.where(xp[j] == x_rest, left, value)
    return result


def _interp_rows(
    x: np.ndarray, xp: np.ndarray, fp: np.ndarray
) -> np.ndarray:
    """``np.interp(x, xp, fp[i])`` for every row ``i``, bit-identically.

    All rows share one abscissa, so a single right-sided bracketing of
    ``x`` serves the whole ``(rows, len(xp))`` ordinate table; the
    slope/offset arithmetic, the below-/above-range clamps, the
    exact-knot shortcut, and the NaN fallback replicate ``np.interp``'s
    C kernel per element (see :func:`_interp_per_column`).  Returns a
    ``(rows, x.size)`` array.
    """
    index = np.searchsorted(xp, x, side="right") - 1
    out = np.empty((fp.shape[0], x.size), dtype=float)
    under = index < 0
    if under.any():
        out[:, under] = fp[:, :1]
    last = index == len(xp) - 1
    if last.any():
        out[:, last] = fp[:, -1:]
    rest = ~(under | last)
    if rest.any():
        j = index[rest]
        x_rest = x[rest]
        left = fp[:, j]
        right = fp[:, j + 1]
        slope = (right - left) / (xp[j + 1] - xp[j])
        value = slope * (x_rest - xp[j]) + left
        overflow = np.isnan(value)
        if overflow.any():
            value[overflow] = (slope * (x_rest - xp[j + 1]) + right)[
                overflow
            ]
            flat = np.isnan(value) & (left == right)
            value[flat] = left[flat]
        out[:, rest] = np.where(xp[j] == x_rest, left, value)
    return out


def exhaustive_matrix_from(
    measure, pressures: Sequence[float], counts: Sequence[float]
) -> PropagationMatrix:
    """Build a fully-measured matrix by calling ``measure(p, k)`` per cell.

    ``measure`` must return *normalized* execution times.  This is the
    naive full-profiling baseline the cost-reduction algorithms of
    Section 4.1 are compared against.
    """
    matrix = PropagationMatrix.empty(pressures, counts)
    for i, pressure in enumerate(pressures):
        for j, count in enumerate(counts):
            if j == 0:
                continue
            matrix.set(i, j, measure(float(pressure), int(count)))
    return matrix
