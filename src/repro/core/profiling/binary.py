"""Binary-search profiling: Algorithms 1 and 2 of the paper.

Both algorithms build the ``n x (m+1)`` propagation matrix ``T`` (rows:
bubble pressures, columns: interfering-node counts, ``T[i][0] = 1``)
while measuring as few settings as possible:

* **binary-brute** (Algorithm 1) profiles every pressure row with a
  binary search: the endpoints are measured, and an interval is
  subdivided only while its endpoint values differ by more than a
  threshold; skipped cells are filled by linear interpolation.
* **binary-optimized** (Algorithm 2) exploits the similarity of curve
  *shapes* across pressures: it binary-profiles only the top-pressure
  row and the max-count column, then reconstructs every interior cell
  by proportional scaling::

      T[i][j] = 1 + (T[i][m] - 1) * (T[n-1][j] - 1) / (T[n-1][m] - 1)
"""

from __future__ import annotations

import numpy as np

from repro.core.curves import PropagationMatrix
from repro.core.profiling.plan import (
    MeasurementOracle,
    ProfilingOutcome,
    ProfilingSession,
    total_settings_of,
)
from repro.errors import ProfilingError

#: Normalized-time difference below which an interval is not subdivided.
#: Calibrated so the profiling costs land where Table 3 reports them
#: (binary-brute ~59%, binary-optimized ~20% of the exhaustive grid).
DEFAULT_THRESHOLD: float = 0.12


def profile_binary_row(
    matrix: PropagationMatrix,
    session: ProfilingSession,
    row: int,
    lo: int,
    hi: int,
    threshold: float,
) -> None:
    """Binary-subdivide columns ``(lo, hi)`` of ``row`` (paper's
    ``profile_binary_row``).

    Both endpoints must already be filled.  The midpoint is measured
    only when the endpoint values differ by more than ``threshold``.
    """
    value_lo = matrix.get(row, lo)
    value_hi = matrix.get(row, hi)
    if np.isnan(value_lo) or np.isnan(value_hi):
        raise ProfilingError("binary row profiling requires filled endpoints")
    if hi - lo <= 1:
        return
    if abs(value_hi - value_lo) <= threshold:
        return
    mid = (lo + hi) // 2
    matrix.set(
        row, mid, session.measure(float(matrix.pressures[row]), int(matrix.counts[mid]))
    )
    profile_binary_row(matrix, session, row, lo, mid, threshold)
    profile_binary_row(matrix, session, row, mid, hi, threshold)


def profile_binary_col(
    matrix: PropagationMatrix,
    session: ProfilingSession,
    col: int,
    lo: int,
    hi: int,
    threshold: float,
) -> None:
    """Binary-subdivide rows ``(lo, hi)`` of column ``col`` (paper's
    ``profile_binary_col``)."""
    value_lo = matrix.get(lo, col)
    value_hi = matrix.get(hi, col)
    if np.isnan(value_lo) or np.isnan(value_hi):
        raise ProfilingError("binary column profiling requires filled endpoints")
    if hi - lo <= 1:
        return
    if abs(value_hi - value_lo) <= threshold:
        return
    mid = (lo + hi) // 2
    matrix.set(
        mid, col, session.measure(float(matrix.pressures[mid]), int(matrix.counts[col]))
    )
    profile_binary_col(matrix, session, col, lo, mid, threshold)
    profile_binary_col(matrix, session, col, mid, hi, threshold)


def interpolate_row(matrix: PropagationMatrix, row: int) -> None:
    """Fill a row's unmeasured cells by linear interpolation
    (paper's ``interpolate_row``)."""
    values = matrix.values[row]
    filled = ~np.isnan(values)
    if filled.sum() < 2:
        raise ProfilingError(f"row {row} has too few measured cells to interpolate")
    xs = matrix.counts[filled]
    ys = values[filled]
    matrix.values[row] = np.interp(matrix.counts, xs, ys)


def interpolate_col(matrix: PropagationMatrix, col: int) -> None:
    """Fill a column's unmeasured cells by linear interpolation
    (paper's ``interpolate_col``)."""
    values = matrix.values[:, col]
    filled = ~np.isnan(values)
    if filled.sum() < 2:
        raise ProfilingError(f"column {col} has too few measured cells to interpolate")
    xs = matrix.pressures[filled]
    ys = values[filled]
    matrix.values[:, col] = np.interp(matrix.pressures, xs, ys)


def interpolate_all(matrix: PropagationMatrix) -> None:
    """Reconstruct interior cells from the top row and last column
    (paper's ``interpolate_all``)::

        T[i][j] = 1 + (T[i][m] - 1) * (T[n-1][j] - 1) / (T[n-1][m] - 1)

    If the top curve is flat (an interference-insensitive workload,
    ``T[n-1][m]`` ~ 1), the shape ratio degenerates; the column-count
    ratio is used as the fallback shape.
    """
    top = matrix.num_levels - 1
    last = len(matrix.counts) - 1
    denominator = matrix.get(top, last) - 1.0
    for i in range(matrix.num_levels):
        row_amplitude = matrix.get(i, last) - 1.0
        for j in range(1, last):
            if not np.isnan(matrix.get(i, j)):
                continue
            if abs(denominator) > 1e-9:
                shape = (matrix.get(top, j) - 1.0) / denominator
            else:
                shape = matrix.counts[j] / matrix.counts[last]
            matrix.values[i, j] = 1.0 + row_amplitude * shape


def binary_brute(
    oracle: MeasurementOracle,
    pressures,
    counts,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> ProfilingOutcome:
    """Algorithm 1: per-row binary search profiling."""
    matrix = PropagationMatrix.empty(pressures, counts)
    session = ProfilingSession(oracle)
    last = len(matrix.counts) - 1
    for i in range(matrix.num_levels):
        matrix.set(
            i, last, session.measure(float(matrix.pressures[i]), int(matrix.counts[last]))
        )
        profile_binary_row(matrix, session, i, 0, last, threshold)
        interpolate_row(matrix, i)
    return ProfilingOutcome(
        algorithm="binary-brute",
        workload=oracle.abbrev,
        matrix=matrix,
        settings_measured=session.settings_measured,
        total_settings=total_settings_of(matrix),
    )


def binary_optimized(
    oracle: MeasurementOracle,
    pressures,
    counts,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> ProfilingOutcome:
    """Algorithm 2: top-row + last-column profiling with proportional
    reconstruction of the interior."""
    matrix = PropagationMatrix.empty(pressures, counts)
    session = ProfilingSession(oracle)
    top = matrix.num_levels - 1
    last = len(matrix.counts) - 1
    matrix.set(
        0, last, session.measure(float(matrix.pressures[0]), int(matrix.counts[last]))
    )
    matrix.set(
        top, last, session.measure(float(matrix.pressures[top]), int(matrix.counts[last]))
    )
    profile_binary_row(matrix, session, top, 0, last, threshold)
    interpolate_row(matrix, top)
    profile_binary_col(matrix, session, last, 0, top, threshold)
    interpolate_col(matrix, last)
    interpolate_all(matrix)
    return ProfilingOutcome(
        algorithm="binary-optimized",
        workload=oracle.abbrev,
        matrix=matrix,
        settings_measured=session.settings_measured,
        total_settings=total_settings_of(matrix),
    )
