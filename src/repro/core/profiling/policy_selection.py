"""Heterogeneity-policy selection by statistical sampling (Section 3.3).

For 8 hosts and pressures 0..8, the heterogeneous configuration space
is the set of size-8 multisets over 9 intensity values — C(16, 8) =
12,870 settings, far too many to measure.  The paper randomly samples
60 configurations, measures each, and picks the mapping policy whose
predictions match best; with the observed standard deviations the
60-sample estimate carries a ~±1.7 margin of error at 99% confidence.

This module reproduces that procedure: uniform sampling over multisets
(via the stars-and-bars bijection), measurement through the runner, and
per-policy error statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._util import make_rng
from repro.core.curves import PropagationMatrix
from repro.core.policies import HeterogeneityPolicy, all_policies
from repro.errors import ProfilingError
from repro.sim.runner import ClusterRunner


def heterogeneous_space_size(num_nodes: int, num_levels: int) -> int:
    """Number of distinct heterogeneous settings (multisets).

    Size-``num_nodes`` multisets over ``num_levels + 1`` intensity
    values (0 through ``num_levels``): C(n + k - 1, n).  For the
    paper's 8 hosts and 8 levels this is C(16, 8) = 12,870.
    """
    if num_nodes <= 0 or num_levels <= 0:
        raise ProfilingError("num_nodes and num_levels must be positive")
    return math.comb(num_nodes + num_levels, num_nodes)


def sample_heterogeneous_config(
    rng: np.random.Generator, num_nodes: int, num_levels: int
) -> Tuple[int, ...]:
    """Draw one configuration uniformly over multisets.

    Uses the stars-and-bars bijection: a size-``k`` multiset over
    ``v`` values corresponds to a ``k``-subset of ``k + v - 1``
    positions.  The returned tuple has one pressure per node, in
    non-increasing order.
    """
    positions = sorted(
        rng.choice(num_nodes + num_levels, size=num_nodes, replace=False)
    )
    values = [int(pos) - idx for idx, pos in enumerate(positions)]
    return tuple(sorted(values, reverse=True))


@dataclass(frozen=True)
class PolicyEvaluation:
    """Error statistics of one policy over the sampled configurations."""

    policy_name: str
    errors_percent: Tuple[float, ...]

    @property
    def average_error(self) -> float:
        """Mean absolute percentage error."""
        return float(np.mean(self.errors_percent))

    @property
    def std_dev(self) -> float:
        """Sample standard deviation of the errors."""
        if len(self.errors_percent) < 2:
            return 0.0
        return float(np.std(self.errors_percent, ddof=1))

    @property
    def min_error(self) -> float:
        """Smallest observed error."""
        return float(np.min(self.errors_percent))

    @property
    def max_error(self) -> float:
        """Largest observed error."""
        return float(np.max(self.errors_percent))


@dataclass(frozen=True)
class PolicySelectionResult:
    """Outcome of policy selection for one workload (a Table 2 row)."""

    workload: str
    evaluations: Tuple[PolicyEvaluation, ...]
    samples: int

    @property
    def best(self) -> PolicyEvaluation:
        """The policy with the smallest average error."""
        return min(self.evaluations, key=lambda e: e.average_error)

    def evaluation(self, policy_name: str) -> PolicyEvaluation:
        """Evaluation of a specific policy."""
        for evaluation in self.evaluations:
            if evaluation.policy_name == policy_name:
                return evaluation
        raise ProfilingError(f"policy {policy_name!r} was not evaluated")


def select_policy(
    runner: ClusterRunner,
    abbrev: str,
    matrix: PropagationMatrix,
    *,
    samples: int = 60,
    seed: object = 7,
    policies: Sequence[HeterogeneityPolicy] | None = None,
    span: int | None = None,
    reps: int = 1,
) -> PolicySelectionResult:
    """Find the best heterogeneity mapping policy for a workload.

    Parameters
    ----------
    runner:
        Measurement environment.
    abbrev:
        Workload to evaluate.
    matrix:
        The workload's (profiled) propagation matrix, used to predict
        each converted homogeneous setting.
    samples:
        Number of heterogeneous configurations to measure (60 in the
        paper's private-cluster study, 100 on EC2).
    seed:
        Randomness for configuration sampling.
    policies:
        Policies to compare; defaults to the paper's four.
    span:
        Deployment size the model targets (nodes the application
        spans); defaults to the whole cluster.
    reps:
        Measured repetitions averaged per sampled configuration.  The
        paper measures once; averaging reduces run-to-run noise where
        two policies' predictions sit within a standard deviation of
        each other (N MAX vs N+1 MAX on several workloads).
    """
    if samples <= 0:
        raise ProfilingError("samples must be positive")
    policies = list(policies) if policies is not None else all_policies()
    rng = make_rng(seed)
    num_nodes = span if span is not None else runner.num_nodes
    num_levels = matrix.num_levels

    errors: Dict[str, List[float]] = {p.name: [] for p in policies}
    drawn = 0
    while drawn < samples:
        config = sample_heterogeneous_config(rng, num_nodes, num_levels)
        if all(level == 0 for level in config):
            continue  # the all-zero setting is the trivial solo run
        drawn += 1
        node_pressures = {node: float(level) for node, level in enumerate(config)}
        observations = [
            runner.measure_heterogeneous(
                abbrev, node_pressures, rep=drawn * max(reps, 1) + r, span=span
            )
            for r in range(max(reps, 1))
        ]
        actual = sum(observations) / len(observations)
        vector = [float(level) for level in config]
        for policy in policies:
            predicted = matrix.lookup(policy.convert(vector))
            errors[policy.name].append(abs(predicted - actual) / actual * 100.0)

    evaluations = tuple(
        PolicyEvaluation(policy.name, tuple(errors[policy.name]))
        for policy in policies
    )
    return PolicySelectionResult(workload=abbrev, evaluations=evaluations, samples=samples)
