"""Measurement bookkeeping for profiling algorithms.

Profiling cost in the paper (Table 3) is the fraction of all
interference settings an algorithm actually measures, so the profilers
need precise accounting of *which* cells of the propagation matrix they
measured versus interpolated.

Two layers provide that:

* :class:`MeasurementOracle` — caches normalized execution times per
  (workload, pressure, count) so that the exhaustive ground-truth
  matrix and every profiler observe the *same* measurement for the
  same setting (as re-reading a run log would), while each fresh
  setting costs one simulated cluster run.
* :class:`ProfilingSession` — tracks the distinct settings one
  algorithm requested, yielding its cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

import numpy as np

from repro.core.curves import PropagationMatrix
from repro.errors import ProfilingError
from repro.obs import recorder as _obs
from repro.sim.runner import ClusterRunner


class MeasurementOracle:
    """Cached access to normalized measurements for one workload.

    Parameters
    ----------
    runner:
        The measurement environment.
    abbrev:
        Workload under profiling.
    """

    def __init__(
        self, runner: ClusterRunner, abbrev: str, span: int | None = None
    ) -> None:
        self.runner = runner
        self.abbrev = abbrev
        self.span = span
        self._cache: Dict[Tuple[float, int], float] = {}

    def normalized(self, pressure: float, count: int) -> float:
        """Normalized execution time at a homogeneous setting."""
        if count == 0 or pressure == 0.0:
            return 1.0
        key = (float(pressure), int(count))
        value = self._cache.get(key)
        if value is None:
            # One ``profile.probe`` span per *distinct* setting actually
            # measured — counting these spans per workload reproduces
            # the Table 3 cost accounting from the trace alone.
            with _obs.RECORDER.span(
                "profile.probe",
                workload=self.abbrev,
                pressure=float(pressure),
                count=int(count),
            ) as span:
                value = self.runner.measure(
                    self.abbrev, float(pressure), int(count), span=self.span
                )
                span.set(normalized=value)
            self._cache[key] = value
        else:
            _obs.RECORDER.count("profile.probe_memo_hit")
        return value

    def is_cached(self, pressure: float, count: int) -> bool:
        """Whether a setting has already been measured (or primed)."""
        return (float(pressure), int(count)) in self._cache

    def prime(self, pressure: float, count: int, value: float) -> None:
        """Install a measurement obtained out-of-band (batch prewarm).

        Lets callers fan a block of settings out through
        :meth:`~repro.sim.runner.ClusterRunner.measure_many` and hand
        the results to the oracle; an already-cached setting keeps its
        existing value.
        """
        if count == 0 or pressure == 0.0:
            return
        key = (float(pressure), int(count))
        if key not in self._cache:
            # A primed setting was still measured (out-of-band, via the
            # batch fan-out), so it gets its probe span too.
            with _obs.RECORDER.span(
                "profile.probe",
                workload=self.abbrev,
                pressure=float(pressure),
                count=int(count),
                primed=True,
            ) as span:
                span.set(normalized=float(value))
            self._cache[key] = float(value)

    @property
    def distinct_settings_measured(self) -> int:
        """Number of distinct settings run so far."""
        return len(self._cache)


@dataclass
class ProfilingSession:
    """One profiling algorithm's view of the oracle, with cost tracking."""

    oracle: MeasurementOracle
    cells: Set[Tuple[float, int]] = field(default_factory=set)

    def measure(self, pressure: float, count: int) -> float:
        """Measure a setting, recording it toward this session's cost."""
        if count > 0 and pressure > 0.0:
            self.cells.add((float(pressure), int(count)))
        return self.oracle.normalized(pressure, count)

    @property
    def settings_measured(self) -> int:
        """Distinct non-trivial settings this session requested."""
        return len(self.cells)


@dataclass(frozen=True)
class ProfilingOutcome:
    """Result of one profiling algorithm on one workload."""

    algorithm: str
    workload: str
    matrix: PropagationMatrix
    settings_measured: int
    total_settings: int

    def __post_init__(self) -> None:
        if self.total_settings <= 0:
            raise ProfilingError("total_settings must be positive")
        if not 0 <= self.settings_measured <= self.total_settings:
            raise ProfilingError(
                f"settings_measured {self.settings_measured} outside "
                f"[0, {self.total_settings}]"
            )
        if not self.matrix.is_complete():
            raise ProfilingError(
                f"{self.algorithm} left unfilled cells for {self.workload}"
            )

    @property
    def cost_percent(self) -> float:
        """Profiling cost as in Table 3: % of settings measured."""
        return 100.0 * self.settings_measured / self.total_settings

    def error_against(self, truth: PropagationMatrix) -> float:
        """Average % error of the matrix against an exhaustive truth.

        Only the interference cells (count > 0) are compared; the
        no-interference column is 1 by definition on both sides.
        """
        if truth.values.shape != self.matrix.values.shape:
            raise ProfilingError("matrices have different shapes")
        estimated = self.matrix.values[:, 1:]
        actual = truth.values[:, 1:]
        return float(np.mean(np.abs(estimated - actual) / actual) * 100.0)


def total_settings_of(matrix: PropagationMatrix) -> int:
    """Number of measurable settings in a matrix grid (count > 0 cells)."""
    return matrix.num_levels * (len(matrix.counts) - 1)
