"""Measurement bookkeeping for profiling algorithms.

Profiling cost in the paper (Table 3) is the fraction of all
interference settings an algorithm actually measures, so the profilers
need precise accounting of *which* cells of the propagation matrix they
measured versus interpolated.

Two layers provide that:

* :class:`MeasurementOracle` — caches normalized execution times per
  (workload, pressure, count) so that the exhaustive ground-truth
  matrix and every profiler observe the *same* measurement for the
  same setting (as re-reading a run log would), while each fresh
  setting costs one simulated cluster run.
* :class:`ProfilingSession` — tracks the distinct settings one
  algorithm requested, yielding its cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

import numpy as np

from repro.cluster.contention import ContentionDomain
from repro.core.curves import PropagationMatrix
from repro.errors import MeasurementFault, ProfilingError
from repro.obs import recorder as _obs
from repro.sim.runner import ClusterRunner

#: Normalized times above this are treated as measurement outliers when
#: fault injection is active.  The paper's slowdowns top out well under
#: 10x (Figure 3); an injected outlier (default 25x) clears the bound,
#: while an injected straggler (default 1.5x) never does — stragglers
#: are real slow runs and must stay in the data.
OUTLIER_BOUND = 10.0

#: Total readings behind a robust (median-of-k) probe after an outlier
#: is detected: the suspect reading plus ``REPROBE_K - 1`` independent
#: repetitions.
REPROBE_K = 3

#: Floor of the conservative fallback installed when a probe exhausts
#: its retry budget: at least this normalized slowdown is assumed.
FALLBACK_FLOOR = 2.0


class MeasurementOracle:
    """Cached access to normalized measurements for one workload.

    When the runner injects faults, the oracle is the robust layer of
    the profiling stack: a reading above :data:`OUTLIER_BOUND` triggers
    a median-of-:data:`REPROBE_K` re-probe (each repetition is its own
    ``profile.probe`` span with ``reprobe=True``, so retry cost folds
    into the Table 3 accounting derivable from the trace), and a
    reading that exhausts its retry budget is replaced by a
    conservative fallback (``fault.probe_fallback``) — the workload is
    then marked degraded on the runner.

    Parameters
    ----------
    runner:
        The measurement environment.
    abbrev:
        Workload under profiling.
    domain:
        Contention resource the settings describe.  COMPUTE (the
        default) probes with cache/memory-bandwidth bubbles via
        :meth:`~repro.sim.runner.ClusterRunner.measure`; NETWORK probes
        with traffic-generator bubbles via
        :meth:`~repro.sim.runner.ClusterRunner.measure_network`.  Every
        profiler runs unchanged on either domain — the oracle is the
        only routing point.
    """

    def __init__(
        self,
        runner: ClusterRunner,
        abbrev: str,
        span: int | None = None,
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> None:
        self.runner = runner
        self.abbrev = abbrev
        self.span = span
        self.domain = ContentionDomain.parse(domain)
        self._network = self.domain is ContentionDomain.NETWORK
        self._measure = (
            runner.measure_network if self._network else runner.measure
        )
        self._cache: Dict[Tuple[float, int], float] = {}

    def normalized(self, pressure: float, count: int) -> float:
        """Normalized execution time at a homogeneous setting."""
        if count == 0 or pressure == 0.0:
            return 1.0
        key = (float(pressure), int(count))
        value = self._cache.get(key)
        if value is None:
            value = self._probe(float(pressure), int(count))
            self._cache[key] = value
        else:
            _obs.RECORDER.count("profile.probe_memo_hit")
        return value

    def _probe(self, pressure: float, count: int) -> float:
        """Measure one distinct setting, robustly under fault injection.

        One ``profile.probe`` span per reading actually taken —
        counting these spans per workload reproduces the Table 3 cost
        accounting from the trace alone, re-probes included.
        """
        try:
            with _obs.RECORDER.span(
                "profile.probe",
                workload=self.abbrev,
                pressure=pressure,
                count=count,
                **({"domain": "network"} if self._network else {}),
            ) as span:
                value = self._measure(
                    self.abbrev, pressure, count, span=self.span
                )
                span.set(normalized=value)
            if self.runner.faults_active and value > OUTLIER_BOUND:
                value = self._reprobe(pressure, count, value)
        except MeasurementFault:
            value = self._fallback()
        return value

    def _reprobe(self, pressure: float, count: int, suspect: float) -> float:
        """Median-of-k re-probe after an outlier reading.

        The suspect reading is kept in the pool — if the setting really
        is that slow, two honest repetitions will agree with it.
        """
        _obs.RECORDER.count("fault.outlier_detected")
        readings = [suspect]
        for rep in range(1, REPROBE_K):
            _obs.RECORDER.count("retry.reprobe")
            with _obs.RECORDER.span(
                "profile.probe",
                workload=self.abbrev,
                pressure=pressure,
                count=count,
                reprobe=True,
                **({"domain": "network"} if self._network else {}),
            ) as span:
                value = self._measure(
                    self.abbrev, pressure, count, rep=rep, span=self.span
                )
                span.set(normalized=value)
            readings.append(value)
        readings.sort()
        return readings[len(readings) // 2]

    def _fallback(self) -> float:
        """Conservative stand-in for a setting that could not be read.

        At least as slow as every setting measured so far (and never
        below :data:`FALLBACK_FLOOR`), so the profile over-predicts
        rather than under-predicts interference at the unreadable cell.
        """
        _obs.RECORDER.count("fault.probe_fallback")
        return max(
            max(self._cache.values(), default=0.0), FALLBACK_FLOOR
        )

    def is_cached(self, pressure: float, count: int) -> bool:
        """Whether a setting has already been measured (or primed)."""
        return (float(pressure), int(count)) in self._cache

    def prime(self, pressure: float, count: int, value: float) -> None:
        """Install a measurement obtained out-of-band (batch prewarm).

        Lets callers fan a block of settings out through
        :meth:`~repro.sim.runner.ClusterRunner.measure_many` and hand
        the results to the oracle; an already-cached setting keeps its
        existing value.
        """
        if count == 0 or pressure == 0.0:
            return
        key = (float(pressure), int(count))
        if key not in self._cache:
            # A primed setting was still measured (out-of-band, via the
            # batch fan-out), so it gets its probe span too.
            with _obs.RECORDER.span(
                "profile.probe",
                workload=self.abbrev,
                pressure=float(pressure),
                count=int(count),
                primed=True,
            ) as span:
                span.set(normalized=float(value))
            self._cache[key] = float(value)

    @property
    def distinct_settings_measured(self) -> int:
        """Number of distinct settings run so far."""
        return len(self._cache)


@dataclass
class ProfilingSession:
    """One profiling algorithm's view of the oracle, with cost tracking."""

    oracle: MeasurementOracle
    cells: Set[Tuple[float, int]] = field(default_factory=set)

    def measure(self, pressure: float, count: int) -> float:
        """Measure a setting, recording it toward this session's cost."""
        if count > 0 and pressure > 0.0:
            self.cells.add((float(pressure), int(count)))
        return self.oracle.normalized(pressure, count)

    @property
    def settings_measured(self) -> int:
        """Distinct non-trivial settings this session requested."""
        return len(self.cells)


@dataclass(frozen=True)
class ProfilingOutcome:
    """Result of one profiling algorithm on one workload."""

    algorithm: str
    workload: str
    matrix: PropagationMatrix
    settings_measured: int
    total_settings: int

    def __post_init__(self) -> None:
        if self.total_settings <= 0:
            raise ProfilingError("total_settings must be positive")
        if not 0 <= self.settings_measured <= self.total_settings:
            raise ProfilingError(
                f"settings_measured {self.settings_measured} outside "
                f"[0, {self.total_settings}]"
            )
        if not self.matrix.is_complete():
            raise ProfilingError(
                f"{self.algorithm} left unfilled cells for {self.workload}"
            )

    @property
    def cost_percent(self) -> float:
        """Profiling cost as in Table 3: % of settings measured."""
        return 100.0 * self.settings_measured / self.total_settings

    def error_against(self, truth: PropagationMatrix) -> float:
        """Average % error of the matrix against an exhaustive truth.

        Only the interference cells (count > 0) are compared; the
        no-interference column is 1 by definition on both sides.
        """
        if truth.values.shape != self.matrix.values.shape:
            raise ProfilingError("matrices have different shapes")
        estimated = self.matrix.values[:, 1:]
        actual = truth.values[:, 1:]
        return float(np.mean(np.abs(estimated - actual) / actual) * 100.0)


def total_settings_of(matrix: PropagationMatrix) -> int:
    """Number of measurable settings in a matrix grid (count > 0 cells)."""
    return matrix.num_levels * (len(matrix.counts) - 1)
