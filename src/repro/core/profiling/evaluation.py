"""Cost/accuracy comparison of profiling algorithms (Section 4.2).

Runs the four profilers — binary-brute, binary-optimized, random-30%,
random-50% — for a set of workloads against the exhaustively-measured
ground-truth matrix, producing the rows of Table 3 and the per-workload
series of Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro._util import stable_seed
from repro.core.curves import PropagationMatrix
from repro.core.profiling.binary import (
    DEFAULT_THRESHOLD,
    binary_brute,
    binary_optimized,
)
from repro.core.profiling.plan import (
    MeasurementOracle,
    ProfilingOutcome,
    ProfilingSession,
    total_settings_of,
)
from repro.core.profiling.random_sampling import random_sampling
from repro.sim.runner import ClusterRunner

#: The four algorithms of Table 3, in paper order.
ALGORITHM_ORDER: Tuple[str, ...] = (
    "binary-optimized",
    "binary-brute",
    "random-50%",
    "random-30%",
)


def exhaustive_truth(
    oracle: MeasurementOracle, pressures: Sequence[float], counts: Sequence[float]
) -> PropagationMatrix:
    """Measure every setting: the ground truth estimates are scored against."""
    matrix = PropagationMatrix.empty(pressures, counts)
    session = ProfilingSession(oracle)
    for i in range(matrix.num_levels):
        for j in range(1, len(matrix.counts)):
            matrix.set(
                i, j, session.measure(float(matrix.pressures[i]), int(matrix.counts[j]))
            )
    return matrix


@dataclass(frozen=True)
class ProfilerScore:
    """Cost and accuracy of one algorithm on one workload."""

    algorithm: str
    workload: str
    cost_percent: float
    error_percent: float


@dataclass(frozen=True)
class ProfilerComparison:
    """All scores for a workload set (the data behind Table 3, Fig 6-7)."""

    scores: Tuple[ProfilerScore, ...]

    def by_algorithm(self, algorithm: str) -> List[ProfilerScore]:
        """Scores of one algorithm across workloads."""
        return [s for s in self.scores if s.algorithm == algorithm]

    def average_cost(self, algorithm: str) -> float:
        """Mean profiling cost % across workloads (Table 3 column)."""
        return float(np.mean([s.cost_percent for s in self.by_algorithm(algorithm)]))

    def average_error(self, algorithm: str) -> float:
        """Mean prediction error % across workloads (Table 3 column)."""
        return float(np.mean([s.error_percent for s in self.by_algorithm(algorithm)]))

    def table3_rows(self) -> List[Tuple[str, float, float]]:
        """(algorithm, avg cost %, avg error %) rows in paper order."""
        return [
            (name, self.average_cost(name), self.average_error(name))
            for name in ALGORITHM_ORDER
        ]


def run_profilers(
    oracle: MeasurementOracle,
    pressures: Sequence[float],
    counts: Sequence[float],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    seed: object = 11,
) -> Dict[str, ProfilingOutcome]:
    """Run all four profiling algorithms for one workload."""
    outcomes = {
        "binary-brute": binary_brute(oracle, pressures, counts, threshold=threshold),
        "binary-optimized": binary_optimized(
            oracle, pressures, counts, threshold=threshold
        ),
        "random-50%": random_sampling(
            oracle, pressures, counts, fraction=0.5,
            seed=stable_seed(seed, oracle.abbrev, 50),
        ),
        "random-30%": random_sampling(
            oracle, pressures, counts, fraction=0.3,
            seed=stable_seed(seed, oracle.abbrev, 30),
        ),
    }
    return outcomes


def compare_profilers(
    runner: ClusterRunner,
    workloads: Sequence[str],
    pressures: Sequence[float],
    counts: Sequence[float],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    seed: object = 11,
    oracle_factory: Callable[[ClusterRunner, str], MeasurementOracle] = MeasurementOracle,
) -> ProfilerComparison:
    """Score all algorithms on all workloads against exhaustive truth."""
    scores: List[ProfilerScore] = []
    for abbrev in workloads:
        oracle = oracle_factory(runner, abbrev)
        truth = exhaustive_truth(oracle, pressures, counts)
        for name, outcome in run_profilers(
            oracle, pressures, counts, threshold=threshold, seed=seed
        ).items():
            scores.append(
                ProfilerScore(
                    algorithm=name,
                    workload=abbrev,
                    cost_percent=outcome.cost_percent,
                    error_percent=outcome.error_against(truth),
                )
            )
    return ProfilerComparison(tuple(scores))
