"""Random-sampling profiling baselines (Section 4.2).

``random-30%`` and ``random-50%`` measure a random subset of all
interference settings and interpolate the rest.  As in the paper, the
settings with no interference and with interference on *all* hosts at
each pressure are always measured, so every sensitivity curve has
usable endpoints.
"""

from __future__ import annotations

from typing import List, Tuple

from repro._util import make_rng
from repro.core.curves import PropagationMatrix
from repro.core.profiling.binary import interpolate_row
from repro.core.profiling.plan import (
    MeasurementOracle,
    ProfilingOutcome,
    ProfilingSession,
    total_settings_of,
)
from repro.errors import ProfilingError


def random_sampling(
    oracle: MeasurementOracle,
    pressures,
    counts,
    *,
    fraction: float,
    seed: object = 0,
) -> ProfilingOutcome:
    """Profile by measuring a random ``fraction`` of all settings.

    Parameters
    ----------
    oracle:
        Measurement source for the workload.
    pressures, counts:
        Matrix axes.
    fraction:
        Share of all settings to measure, in (0, 1].  The mandatory
        all-hosts settings count toward the budget.
    seed:
        Randomness for the subset selection.
    """
    if not 0.0 < fraction <= 1.0:
        raise ProfilingError(f"fraction must be in (0, 1], got {fraction}")
    matrix = PropagationMatrix.empty(pressures, counts)
    session = ProfilingSession(oracle)
    rng = make_rng(seed)
    last = len(matrix.counts) - 1
    total = total_settings_of(matrix)
    budget = max(matrix.num_levels, int(round(fraction * total)))

    mandatory: List[Tuple[int, int]] = [(i, last) for i in range(matrix.num_levels)]
    optional: List[Tuple[int, int]] = [
        (i, j)
        for i in range(matrix.num_levels)
        for j in range(1, last)
    ]
    extra = budget - len(mandatory)
    chosen = list(mandatory)
    if extra > 0 and optional:
        indices = rng.choice(len(optional), size=min(extra, len(optional)), replace=False)
        chosen.extend(optional[int(idx)] for idx in indices)

    for i, j in chosen:
        matrix.set(
            i, j, session.measure(float(matrix.pressures[i]), int(matrix.counts[j]))
        )
    for i in range(matrix.num_levels):
        interpolate_row(matrix, i)

    return ProfilingOutcome(
        algorithm=f"random-{int(round(fraction * 100))}%",
        workload=oracle.abbrev,
        matrix=matrix,
        settings_measured=session.settings_measured,
        total_settings=total,
    )
