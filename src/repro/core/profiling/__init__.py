"""Profiling algorithms that construct interference models."""

from repro.core.profiling.binary import (
    DEFAULT_THRESHOLD,
    binary_brute,
    binary_optimized,
    interpolate_all,
    interpolate_col,
    interpolate_row,
    profile_binary_col,
    profile_binary_row,
)
from repro.core.profiling.evaluation import (
    ALGORITHM_ORDER,
    ProfilerComparison,
    ProfilerScore,
    compare_profilers,
    exhaustive_truth,
    run_profilers,
)
from repro.core.profiling.plan import (
    MeasurementOracle,
    ProfilingOutcome,
    ProfilingSession,
    total_settings_of,
)
from repro.core.profiling.policy_selection import (
    PolicyEvaluation,
    PolicySelectionResult,
    heterogeneous_space_size,
    sample_heterogeneous_config,
    select_policy,
)
from repro.core.profiling.random_sampling import random_sampling

__all__ = [
    "ALGORITHM_ORDER",
    "DEFAULT_THRESHOLD",
    "MeasurementOracle",
    "PolicyEvaluation",
    "PolicySelectionResult",
    "ProfilerComparison",
    "ProfilerScore",
    "ProfilingOutcome",
    "ProfilingSession",
    "binary_brute",
    "binary_optimized",
    "compare_profilers",
    "exhaustive_truth",
    "heterogeneous_space_size",
    "interpolate_all",
    "interpolate_col",
    "interpolate_row",
    "profile_binary_col",
    "profile_binary_row",
    "random_sampling",
    "run_profilers",
    "sample_heterogeneous_config",
    "select_policy",
    "total_settings_of",
]
