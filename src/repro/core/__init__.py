"""The paper's contribution: the distributed-interference model."""

from repro.core.builder import (
    MATRIX_PROFILERS,
    ModelBuildReport,
    build_batch_profiles,
    build_model,
    build_network_profiles,
    default_counts,
    default_pressures,
)
from repro.core.curves import (
    HomogeneousSetting,
    PropagationMatrix,
    exhaustive_matrix_from,
)
from repro.core.kernel import PredictionKernel, PredictionRequest
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.multiway import (
    MultiwayPredictor,
    combined_score,
    relaxed_cluster_spec,
)
from repro.core.naive import NaiveProportionalModel
from repro.core.online import CorrectionState, OnlineModel
from repro.core.policies import (
    AllMaxPolicy,
    HeterogeneityPolicy,
    InterpolatePolicy,
    NMaxPolicy,
    NPlusOneMaxPolicy,
    POLICY_CLASSES,
    all_policies,
    get_policy,
)
from repro.core.profile_store import load_model, save_model
from repro.core.scoring import BubbleCalibration, BubbleScoreMeter, calibrate_probe

__all__ = [
    "AllMaxPolicy",
    "BubbleCalibration",
    "BubbleScoreMeter",
    "HeterogeneityPolicy",
    "HomogeneousSetting",
    "InterferenceModel",
    "InterferenceProfile",
    "InterpolatePolicy",
    "MATRIX_PROFILERS",
    "ModelBuildReport",
    "MultiwayPredictor",
    "NMaxPolicy",
    "NPlusOneMaxPolicy",
    "NaiveProportionalModel",
    "OnlineModel",
    "CorrectionState",
    "POLICY_CLASSES",
    "PredictionKernel",
    "PredictionRequest",
    "PropagationMatrix",
    "all_policies",
    "build_batch_profiles",
    "build_model",
    "build_network_profiles",
    "calibrate_probe",
    "combined_score",
    "default_counts",
    "default_pressures",
    "exhaustive_matrix_from",
    "get_policy",
    "load_model",
    "relaxed_cluster_spec",
    "save_model",
]
