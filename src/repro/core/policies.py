"""Interference heterogeneity mapping policies (Section 3.3).

Real placements expose a distributed application to *different*
pressures on different nodes.  Profiling every heterogeneous
combination is intractable (12,870 settings for 8 hosts and 8 levels),
so the paper converts a heterogeneous pressure vector into an
equivalent *homogeneous* setting — the domain of the propagation
matrix — using one of four policies, chosen per application by
sampling:

* ``N max`` — keep only the nodes under the worst pressure.
* ``N+1 max`` — the worst-pressure nodes, plus one extra node standing
  in for all milder ones.
* ``ALL max`` — the worst pressure propagates to every node.
* ``INTERPOLATE`` — all nodes at the average pressure.

The worked example of Figure 5 is reproduced in each policy's
docstring and in ``tests/core/test_policies.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.core.curves import HomogeneousSetting
from repro.errors import ModelError
from repro.units import validate_pressure

#: Pressures within this distance of the maximum count as "max" nodes.
#: Exact ties are what occur with integer bubble levels; with continuous
#: bubble scores two co-runners of the same workload still tie exactly.
DEFAULT_MAX_BAND: float = 1e-9


class HeterogeneityPolicy:
    """Converts a per-node pressure vector to a homogeneous setting."""

    #: Registry / display name, e.g. ``"N+1 MAX"``.
    name: str = ""

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        """Map ``pressures`` (one entry per spanned node) to a setting.

        Zero entries are nodes without interference.  An all-zero
        vector maps to the no-interference setting ``(0, 0)``.
        """
        raise NotImplementedError

    @staticmethod
    def _validated(pressures: Sequence[float]) -> List[float]:
        if len(pressures) == 0:
            raise ModelError("pressure vector must cover at least one node")
        return [validate_pressure(p) for p in pressures]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NMaxPolicy(HeterogeneityPolicy):
    """Only the worst-pressure nodes matter; milder nodes are ignored.

    Figure 5, workload D: ``[5, 5, 3, 2] -> [5, 5, 0, 0]``, i.e. two
    nodes at pressure 5.
    """

    name = "N MAX"

    def __init__(self, band: float = DEFAULT_MAX_BAND) -> None:
        if band < 0:
            raise ModelError("band must be non-negative")
        self.band = band

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        peak = max(values)
        if peak <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        n_max = sum(1 for p in values if p >= peak - self.band)
        return HomogeneousSetting(peak, float(n_max))


class NPlusOneMaxPolicy(HeterogeneityPolicy):
    """Worst-pressure nodes plus one stand-in for all milder nodes.

    Figure 5, workload A: ``[3, 2, 1, 1] -> [3, 3, 0, 0]``: one node at
    the top pressure 3, plus one merged node for the three milder ones.
    The count never exceeds the number of spanned nodes.
    """

    name = "N+1 MAX"

    def __init__(self, band: float = DEFAULT_MAX_BAND) -> None:
        if band < 0:
            raise ModelError("band must be non-negative")
        self.band = band

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        peak = max(values)
        if peak <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        n_max = sum(1 for p in values if p >= peak - self.band)
        has_milder = any(0.0 < p < peak - self.band for p in values)
        count = min(n_max + (1 if has_milder else 0), len(values))
        return HomogeneousSetting(peak, float(count))


class AllMaxPolicy(HeterogeneityPolicy):
    """The worst pressure anywhere propagates to every node.

    Figure 5, workload B: ``[5, 2, 2, 1] -> [5, 5, 5, 5]``.
    """

    name = "ALL MAX"

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        peak = max(values)
        if peak <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        return HomogeneousSetting(peak, float(len(values)))


class InterpolatePolicy(HeterogeneityPolicy):
    """Every node at the average pressure across all spanned nodes.

    Figure 5, workload C: ``[3, 5, 3, 1] -> [3, 3, 3, 3]`` (the mean of
    3, 5, 3, 1 is 3, applied to all four nodes).
    """

    name = "INTERPOLATE"

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        average = sum(values) / len(values)
        if average <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        return HomogeneousSetting(average, float(len(values)))


#: All policies the selection procedure evaluates, in paper order.
POLICY_CLASSES: Dict[str, Type[HeterogeneityPolicy]] = {
    NMaxPolicy.name: NMaxPolicy,
    NPlusOneMaxPolicy.name: NPlusOneMaxPolicy,
    AllMaxPolicy.name: AllMaxPolicy,
    InterpolatePolicy.name: InterpolatePolicy,
}


def all_policies() -> List[HeterogeneityPolicy]:
    """Fresh instances of all four mapping policies."""
    return [cls() for cls in POLICY_CLASSES.values()]


def get_policy(name: str) -> HeterogeneityPolicy:
    """Look up a policy instance by name.

    Raises
    ------
    ModelError
        If the name is not one of the four policies.
    """
    try:
        return POLICY_CLASSES[name]()
    except KeyError:
        raise ModelError(
            f"unknown policy {name!r}; known: {', '.join(POLICY_CLASSES)}"
        ) from None
