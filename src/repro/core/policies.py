"""Interference heterogeneity mapping policies (Section 3.3).

Real placements expose a distributed application to *different*
pressures on different nodes.  Profiling every heterogeneous
combination is intractable (12,870 settings for 8 hosts and 8 levels),
so the paper converts a heterogeneous pressure vector into an
equivalent *homogeneous* setting — the domain of the propagation
matrix — using one of four policies, chosen per application by
sampling:

* ``N max`` — keep only the nodes under the worst pressure.
* ``N+1 max`` — the worst-pressure nodes, plus one extra node standing
  in for all milder ones.
* ``ALL max`` — the worst pressure propagates to every node.
* ``INTERPOLATE`` — all nodes at the average pressure.

The worked example of Figure 5 is reproduced in each policy's
docstring and in ``tests/core/test_policies.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Type

import numpy as np

from repro.core.curves import HomogeneousSetting
from repro.errors import ModelError
from repro.units import validate_pressure

#: Pressures within this distance of the maximum count as "max" nodes.
#: Exact ties are what occur with integer bubble levels; with continuous
#: bubble scores two co-runners of the same workload still tie exactly.
DEFAULT_MAX_BAND: float = 1e-9


class HeterogeneityPolicy:
    """Converts a per-node pressure vector to a homogeneous setting."""

    #: Registry / display name, e.g. ``"N+1 MAX"``.
    name: str = ""

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        """Map ``pressures`` (one entry per spanned node) to a setting.

        Zero entries are nodes without interference.  An all-zero
        vector maps to the no-interference setting ``(0, 0)``.
        """
        raise NotImplementedError

    def convert_batch(
        self, padded: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`convert` over a batch of pressure vectors.

        ``padded`` is a ``(batch, width)`` float array holding each
        vector left-aligned and zero-padded to the widest one;
        ``lengths`` gives each row's true vector length (all positive).
        Rows must be pre-validated (finite, non-negative): the batch
        entry points fall back to the scalar path to raise the exact
        scalar errors, so this method never validates.

        Returns the per-row ``(pressure, count)`` setting arrays,
        bit-identical to per-row :meth:`convert`.
        """
        raise NotImplementedError

    @staticmethod
    def _validated(pressures: Sequence[float]) -> List[float]:
        if len(pressures) == 0:
            raise ModelError("pressure vector must cover at least one node")
        return [validate_pressure(p) for p in pressures]

    @staticmethod
    def _valid_mask(padded: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Which ``padded`` cells are real vector entries (not padding)."""
        return np.arange(padded.shape[1]) < np.asarray(lengths)[:, None]

    @staticmethod
    def _peak(padded: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Row maxima over the real entries only.

        Entries are non-negative, but padding cannot simply be treated
        as pressure 0: a peak within ``band`` of zero would then count
        padding cells as max nodes.  Masking with ``-inf`` keeps the
        maximum exact (it is a comparison, not arithmetic).
        """
        return np.max(np.where(valid, padded, -np.inf), axis=1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NMaxPolicy(HeterogeneityPolicy):
    """Only the worst-pressure nodes matter; milder nodes are ignored.

    Figure 5, workload D: ``[5, 5, 3, 2] -> [5, 5, 0, 0]``, i.e. two
    nodes at pressure 5.
    """

    name = "N MAX"

    def __init__(self, band: float = DEFAULT_MAX_BAND) -> None:
        if band < 0:
            raise ModelError("band must be non-negative")
        self.band = band

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        peak = max(values)
        if peak <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        n_max = sum(1 for p in values if p >= peak - self.band)
        return HomogeneousSetting(peak, float(n_max))

    def convert_batch(
        self, padded: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        valid = self._valid_mask(padded, lengths)
        peak = self._peak(padded, valid)
        n_max = np.sum((padded >= (peak - self.band)[:, None]) & valid, axis=1)
        active = peak > 0.0
        return (
            np.where(active, peak, 0.0),
            np.where(active, n_max.astype(float), 0.0),
        )


class NPlusOneMaxPolicy(HeterogeneityPolicy):
    """Worst-pressure nodes plus one stand-in for all milder nodes.

    Figure 5, workload A: ``[3, 2, 1, 1] -> [3, 3, 0, 0]``: one node at
    the top pressure 3, plus one merged node for the three milder ones.
    The count never exceeds the number of spanned nodes.
    """

    name = "N+1 MAX"

    def __init__(self, band: float = DEFAULT_MAX_BAND) -> None:
        if band < 0:
            raise ModelError("band must be non-negative")
        self.band = band

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        peak = max(values)
        if peak <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        n_max = sum(1 for p in values if p >= peak - self.band)
        has_milder = any(0.0 < p < peak - self.band for p in values)
        count = min(n_max + (1 if has_milder else 0), len(values))
        return HomogeneousSetting(peak, float(count))

    def convert_batch(
        self, padded: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        valid = self._valid_mask(padded, lengths)
        peak = self._peak(padded, valid)
        threshold = (peak - self.band)[:, None]
        n_max = np.sum((padded >= threshold) & valid, axis=1)
        has_milder = ((padded > 0.0) & (padded < threshold) & valid).any(axis=1)
        count = np.minimum(n_max + has_milder.astype(np.intp), lengths)
        active = peak > 0.0
        return (
            np.where(active, peak, 0.0),
            np.where(active, count.astype(float), 0.0),
        )


class AllMaxPolicy(HeterogeneityPolicy):
    """The worst pressure anywhere propagates to every node.

    Figure 5, workload B: ``[5, 2, 2, 1] -> [5, 5, 5, 5]``.
    """

    name = "ALL MAX"

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        peak = max(values)
        if peak <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        return HomogeneousSetting(peak, float(len(values)))

    def convert_batch(
        self, padded: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        valid = self._valid_mask(padded, lengths)
        peak = self._peak(padded, valid)
        active = peak > 0.0
        return (
            np.where(active, peak, 0.0),
            np.where(active, np.asarray(lengths, dtype=float), 0.0),
        )


class InterpolatePolicy(HeterogeneityPolicy):
    """Every node at the average pressure across all spanned nodes.

    Figure 5, workload C: ``[3, 5, 3, 1] -> [3, 3, 3, 3]`` (the mean of
    3, 5, 3, 1 is 3, applied to all four nodes).
    """

    name = "INTERPOLATE"

    def convert(self, pressures: Sequence[float]) -> HomogeneousSetting:
        values = self._validated(pressures)
        average = sum(values) / len(values)
        if average <= 0.0:
            return HomogeneousSetting(0.0, 0.0)
        return HomogeneousSetting(average, float(len(values)))

    def convert_batch(
        self, padded: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The scalar path sums left to right with ``sum()``; ``np.sum``
        # uses pairwise summation, which rounds differently from eight
        # addends on.  Accumulating the padded columns sequentially
        # replays the scalar order exactly — trailing ``+ 0.0`` padding
        # terms cannot change a non-negative partial sum.
        total = np.zeros(padded.shape[0], dtype=float)
        for column in range(padded.shape[1]):
            total = total + padded[:, column]
        average = total / np.asarray(lengths, dtype=float)
        active = average > 0.0
        return (
            np.where(active, average, 0.0),
            np.where(active, np.asarray(lengths, dtype=float), 0.0),
        )


#: All policies the selection procedure evaluates, in paper order.
POLICY_CLASSES: Dict[str, Type[HeterogeneityPolicy]] = {
    NMaxPolicy.name: NMaxPolicy,
    NPlusOneMaxPolicy.name: NPlusOneMaxPolicy,
    AllMaxPolicy.name: AllMaxPolicy,
    InterpolatePolicy.name: InterpolatePolicy,
}


def all_policies() -> List[HeterogeneityPolicy]:
    """Fresh instances of all four mapping policies."""
    return [cls() for cls in POLICY_CLASSES.values()]


def get_policy(name: str) -> HeterogeneityPolicy:
    """Look up a policy instance by name.

    Raises
    ------
    ModelError
        If the name is not one of the four policies.
    """
    try:
        return POLICY_CLASSES[name]()
    except KeyError:
        raise ModelError(
            f"unknown policy {name!r}; known: {', '.join(POLICY_CLASSES)}"
        ) from None
