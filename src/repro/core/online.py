"""Online model refinement (the paper's stated future work).

Section 8 closes with: "Extending it to an online mechanism supporting
co-location of multiple applications is our future work", pointing at
Bubble-Flux (Yang et al., ISCA'13).  This module implements that
extension on top of the static model:

* :class:`OnlineModel` wraps a profiled
  :class:`~repro.core.model.InterferenceModel` and *refines* it from
  production observations: whenever a placement's measured normalized
  time is reported, the wrapper updates a per-workload multiplicative
  correction with an exponential moving average, so systematic bias
  (phase changes, mis-measured bubble scores, environment drift) decays
  out of future predictions without re-running the profiling campaign.
* Corrections are bounded so a single outlier observation cannot
  poison the model, and per-workload observation counts give operators
  a staleness signal.

The refinement deliberately keeps the published model as its prior: an
unobserved workload predicts exactly like the static model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.cluster.contention import ContentionDomain
from repro.core.kernel import PredictionKernel, PredictionRequest
from repro.core.model import InterferenceModel
from repro.errors import ModelError


@dataclass
class CorrectionState:
    """Learned multiplicative correction for one workload."""

    factor: float = 1.0
    observations: int = 0
    last_error_percent: float = 0.0
    history: List[float] = field(default_factory=list)


class OnlineModel:
    """Static interference model + online bias correction.

    Parameters
    ----------
    base:
        The profiled model used as the prior.
    learning_rate:
        EMA weight of each new observation, in (0, 1].
    max_correction:
        Bound on the multiplicative correction (both directions), e.g.
        0.3 keeps corrections within [0.7, 1.3] of the static model.
    """

    def __init__(
        self,
        base: InterferenceModel,
        *,
        learning_rate: float = 0.25,
        max_correction: float = 0.3,
    ) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise ModelError("learning_rate must be in (0, 1]")
        if not 0.0 <= max_correction < 1.0:
            raise ModelError("max_correction must be in [0, 1)")
        self.base = base
        self.learning_rate = learning_rate
        self.max_correction = max_correction
        self._corrections: Dict[str, CorrectionState] = {}

    # ------------------------------------------------------------------
    def correction(self, workload: str) -> CorrectionState:
        """The current correction state for ``workload``."""
        return self._corrections.setdefault(workload, CorrectionState())

    def _apply(self, workload: str, predicted: float) -> float:
        factor = self.correction(workload).factor
        # Corrections scale the *interference part* of the prediction,
        # so a solo run (1.0) is never distorted.
        return 1.0 + (predicted - 1.0) * factor

    # ------------------------------------------------------------------
    # Prediction interface (mirrors InterferenceModel)
    # ------------------------------------------------------------------
    @property
    def workloads(self) -> List[str]:
        """Workloads the underlying model can predict for."""
        return self.base.workloads

    def profile(self, workload: str):
        """The static profile (delegated)."""
        return self.base.profile(workload)

    @property
    def has_network(self) -> bool:
        """Whether the base model carries the NETWORK domain (delegated)."""
        return self.base.has_network

    def predict(
        self,
        workload: str,
        interference,
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> float:
        """Corrected :meth:`InterferenceModel.predict` (any domain)."""
        return self._apply(
            workload, self.base.predict(workload, interference, domain=domain)
        )

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node pressures (delegated to the static model)."""
        return self.base.pressure_vector(workload_nodes, co_runners_by_node)

    def network_pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node link pressures (delegated to the static model)."""
        return self.base.network_pressure_vector(
            workload_nodes, co_runners_by_node
        )

    def predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        """Corrected homogeneous prediction."""
        return self._apply(
            workload, self.base.predict_homogeneous(workload, pressure, count)
        )

    def predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        """Corrected heterogeneous prediction."""
        return self._apply(
            workload, self.base.predict_heterogeneous(workload, pressures)
        )

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        """Corrected placement-style prediction."""
        return self._apply(
            workload,
            self.base.predict_under_corunners(
                workload, workload_nodes, co_runners_by_node
            ),
        )

    # ------------------------------------------------------------------
    # Batch predictions (mirrors InterferenceModel's vectorized path)
    # ------------------------------------------------------------------
    def prediction_kernel(self) -> PredictionKernel:
        """The static base model's frozen batch snapshot (delegated).

        Corrections are applied on top of the kernel's raw
        predictions, so the snapshot never needs rebuilding when the
        online state learns.
        """
        return self.base.prediction_kernel()

    def _apply_batch(
        self, workloads: Sequence[str], values: np.ndarray
    ) -> np.ndarray:
        factors = np.array(
            [self.correction(workload).factor for workload in workloads],
            dtype=float,
        )
        # Elementwise replay of :meth:`_apply` — same operation order.
        return 1.0 + (values - 1.0) * factors

    def predict_batch(
        self,
        requests: Sequence,
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> np.ndarray:
        """Corrected :meth:`InterferenceModel.predict_batch`."""
        values = self.base.predict_batch(requests, domain=domain)
        workloads = [
            request.workload
            if isinstance(request, PredictionRequest)
            else request[0]
            for request in requests
        ]
        return self._apply_batch(workloads, values)

    def predict_corunners_batch(
        self,
        items: Sequence[Tuple[str, Sequence[int], Mapping[int, Sequence[str]]]],
    ) -> np.ndarray:
        """Corrected :meth:`InterferenceModel.predict_corunners_batch`."""
        values = self.base.predict_corunners_batch(items)
        return self._apply_batch([workload for workload, _, _ in items], values)

    def predict_placement_batch(self, placement) -> Dict[str, float]:
        """Corrected :meth:`InterferenceModel.predict_placement_batch`."""
        raw = self.base.predict_placement_batch(placement)
        workload_of = {
            spec.instance_key: spec.workload for spec in placement.instances
        }
        return {
            key: float(self._apply(workload_of[key], value))
            for key, value in raw.items()
        }

    def predict_placements_batch(self, placements: Sequence) -> np.ndarray:
        """Corrected :meth:`InterferenceModel.predict_placements_batch`."""
        values = self.base.predict_placements_batch(placements)
        if values.size == 0:
            return values
        factors = np.array(
            [
                self.correction(spec.workload).factor
                for spec in placements[0].instances
            ],
            dtype=float,
        )
        return 1.0 + (values - 1.0) * factors[None, :]

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(
        self, workload: str, predicted: float, measured: float
    ) -> CorrectionState:
        """Fold one production observation into the correction.

        Parameters
        ----------
        workload:
            The observed application.
        predicted:
            What this model predicted for the run (normalized time).
        measured:
            The normalized time actually measured.

        Returns
        -------
        CorrectionState
            The updated state (also retrievable via :meth:`correction`).
        """
        if predicted <= 0 or measured <= 0:
            raise ModelError("predicted and measured times must be positive")
        state = self.correction(workload)
        predicted_part = max(predicted - 1.0, 1e-6)
        measured_part = max(measured - 1.0, 0.0)
        # The ratio the correction should converge to, expressed
        # against the *static* prediction part.
        current_static_part = predicted_part / state.factor
        target = measured_part / max(current_static_part, 1e-6)
        target = min(max(target, 1.0 - self.max_correction),
                     1.0 + self.max_correction)
        state.factor += self.learning_rate * (target - state.factor)
        state.observations += 1
        state.last_error_percent = abs(predicted - measured) / measured * 100.0
        state.history.append(state.last_error_percent)
        return state

    def observe_placement(
        self,
        placement_predictions: Mapping[str, float],
        measured_times: Mapping[str, float],
        workload_of: Mapping[str, str],
    ) -> None:
        """Fold a whole placement's measurements into the corrections.

        Parameters
        ----------
        placement_predictions:
            Per-instance predicted normalized times.
        measured_times:
            Per-instance measured normalized times.
        workload_of:
            Instance key -> workload abbreviation.
        """
        for key, predicted in placement_predictions.items():
            if key in measured_times:
                self.observe(workload_of[key], predicted, measured_times[key])

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Dict[str, object]]:
        """The learned state (corrections only) as plain JSON-able data.

        The static base model is *not* part of the state: it derives
        deterministically from profiling, so checkpoints stay small and
        a resumed service rebuilds it from the same seed instead.
        """
        return {
            workload: {
                "factor": state.factor,
                "observations": state.observations,
                "last_error_percent": state.last_error_percent,
                "history": list(state.history),
            }
            for workload, state in sorted(self._corrections.items())
        }

    def load_state(self, state: Mapping[str, Mapping[str, object]]) -> None:
        """Restore corrections captured by :meth:`state_dict`."""
        self._corrections = {}
        for workload, entry in state.items():
            try:
                self._corrections[workload] = CorrectionState(
                    factor=float(entry["factor"]),
                    observations=int(entry["observations"]),
                    last_error_percent=float(entry["last_error_percent"]),
                    history=[float(v) for v in entry["history"]],
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ModelError(
                    f"malformed correction state for {workload!r}"
                ) from exc

    def staleness_report(self) -> List[tuple]:
        """(workload, observations, factor, last error %) per workload."""
        return [
            (workload, state.observations, state.factor,
             state.last_error_percent)
            for workload, state in sorted(self._corrections.items())
        ]
