"""Frozen batch-prediction kernel for the placement/admission hot loop.

Every annealing swap, admission check, and epoch reschedule funnels
through :meth:`~repro.core.model.InterferenceModel.predict` one
instance at a time.  The scalar path is the reference the paper's
Figure-5 procedure is tested against, but it pays Python dispatch,
profile lookups, and policy instantiation per call.  This module
flattens a model into a :class:`PredictionKernel` — a frozen snapshot
holding each profile's propagation matrix, heterogeneity policy, and
bubble score behind contiguous NumPy arrays — so a whole placement (or
a whole admission wave of candidate placements) is scored in a handful
of array operations.

**Bit-identity contract.**  The batch path must be a pure accelerator:
every float it produces is bit-identical to the scalar path's.  Three
rules make that hold:

* Pressure combination (:func:`~repro.cluster.contention.combine_pressures`)
  uses transcendentals whose vectorized rounding is not guaranteed to
  match ``math.log2``; the kernel therefore never vectorizes it — it
  calls the scalar function once per distinct co-runner score tuple and
  memoizes (placements reuse a handful of local configurations, so the
  cache hit rate is high).
* Policy conversion and matrix lookup use only elementwise ``+ - * /``,
  ``min``/``max``, and comparisons, replayed in the scalar operation
  order (see :meth:`HeterogeneityPolicy.convert_batch
  <repro.core.policies.HeterogeneityPolicy.convert_batch>` and
  :meth:`PropagationMatrix.lookup_batch
  <repro.core.curves.PropagationMatrix.lookup_batch>`).
* Anything anomalous — unknown workload, empty vector, NaN or negative
  pressure — drops the whole batch back onto the scalar path, which
  raises the exact scalar exception in request order.

The kernel is a *snapshot*: matrices are deep-copied at build time, and
:class:`~repro.core.model.InterferenceModel` rebuilds it whenever
``add_profile`` bumps the model's version counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.contention import combine_pressures
from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.policies import HeterogeneityPolicy, get_policy
from repro.errors import ModelError

#: Below this many rows in a per-workload group, the array machinery
#: costs more than it saves; such groups run the scalar conversion and
#: lookup directly (which is trivially bit-identical — it *is* the
#: scalar computation).  Crossover measured on 2-5 level matrices.
SMALL_GROUP = 12

#: What one batched prediction asks for; ``interference`` takes the
#: same forms :meth:`InterferenceModel.predict` accepts (a
#: ``HomogeneousSetting``, a ``(pressure, count)`` tuple, or a per-node
#: pressure vector).
@dataclass(frozen=True)
class PredictionRequest:
    """One entry of a :meth:`InterferenceModel.predict_batch` call."""

    workload: str
    interference: object


@dataclass(frozen=True)
class _WorkloadTable:
    """Flattened per-workload profile data inside a kernel snapshot."""

    workload: str
    matrix: PropagationMatrix
    max_count: float
    policy: HeterogeneityPolicy
    bubble_score: float


class PredictionKernel:
    """Immutable vectorized view over one model version's profiles.

    Built by :meth:`InterferenceModel.prediction_kernel
    <repro.core.model.InterferenceModel.prediction_kernel>`; consumers
    should obtain it there so snapshot invalidation (on
    ``add_profile``) is handled for them.
    """

    def __init__(
        self,
        profiles: Mapping[str, "InterferenceProfile"],  # noqa: F821
        *,
        version: int = 0,
    ) -> None:
        self.version = version
        self._workload_names = sorted(profiles)
        self._tables: Dict[str, _WorkloadTable] = {}
        self._scores: Dict[str, float] = {}
        for name in self._workload_names:
            profile = profiles[name]
            self._tables[name] = _WorkloadTable(
                workload=name,
                matrix=profile.matrix.copy(),
                max_count=profile.matrix.max_count,
                policy=get_policy(profile.policy_name),
                bubble_score=profile.bubble_score,
            )
            self._scores[name] = profile.bubble_score
        # Distinct co-runner score tuple -> combined pressure, computed
        # by the scalar combine (see module docstring).
        self._combine_cache: Dict[Tuple[float, ...], float] = {}
        # Single-score shortcut (score -> combined of its 1-tuple):
        # two-unit-per-node clusters hit this for every co-runner.
        self._single_cache: Dict[float, float] = {}

    # ------------------------------------------------------------------
    # Pressure-vector extraction
    # ------------------------------------------------------------------
    def combined_pressure(self, scores: Tuple[float, ...]) -> float:
        """Memoized scalar :func:`combine_pressures` (surcharge-free)."""
        value = self._combine_cache.get(scores)
        if value is None:
            value = combine_pressures(scores, collision_surcharge=0.0)
            self._combine_cache[scores] = value
        return value

    def _score_of(self, workload: str) -> float:
        try:
            return self._scores[workload]
        except KeyError:
            raise ModelError(
                f"no interference profile for {workload!r}; "
                f"profiled: {', '.join(self._workload_names)}"
            ) from None

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Mirror of :meth:`InterferenceModel.pressure_vector`."""
        return [
            self.combined_pressure(
                tuple(
                    self._score_of(name)
                    for name in co_runners_by_node.get(node, ())
                )
            )
            for node in workload_nodes
        ]

    def placement_vectors(
        self, placement: "Placement"  # noqa: F821
    ) -> List[Tuple[str, str, List[float]]]:
        """``(instance_key, workload, pressure_vector)`` per instance.

        Equivalent to calling ``placement.co_runner_workloads`` plus
        :meth:`pressure_vector` per instance, but built from a single
        pass over the placement's per-node residents — the scalar
        route is quadratic in the instance count.  The co-runner order
        within a node is the placement's assignment order, exactly as
        ``co_runner_workloads`` reports it, so the memoized combine
        replays the scalar summation order.
        """
        scores = self._scores
        single = self._single_cache
        residents = placement.node_residents()
        empty = self.combined_pressure(())
        # Per node, the combined co-runner pressure seen by each of its
        # resident instances (excluding that instance's own units).
        # Nodes host at most ``unit_slots_per_node`` units, so the one-
        # and two-unit cases below cover real clusters; the generic
        # branch keeps larger nodes exact (assignment-order tuples).
        excluding: Dict[int, Dict[str, float]] = {}
        try:
            for node, units in residents.items():
                if len(units) == 1:
                    excluding[node] = {units[0][0]: empty}
                    continue
                if len(units) == 2:
                    (key_a, work_a), (key_b, work_b) = units
                    if key_a == key_b:
                        excluding[node] = {key_a: empty}
                        continue
                    score_a = scores[work_a]
                    score_b = scores[work_b]
                    seen_by_a = single.get(score_b)
                    if seen_by_a is None:
                        seen_by_a = self.combined_pressure((score_b,))
                        single[score_b] = seen_by_a
                    seen_by_b = single.get(score_a)
                    if seen_by_b is None:
                        seen_by_b = self.combined_pressure((score_a,))
                        single[score_a] = seen_by_b
                    excluding[node] = {key_a: seen_by_a, key_b: seen_by_b}
                    continue
                scored = [(key, scores[workload]) for key, workload in units]
                views: Dict[str, float] = {}
                for key, _ in scored:
                    if key not in views:
                        views[key] = self.combined_pressure(
                            tuple(
                                [s for other, s in scored if other != key]
                            )
                        )
                excluding[node] = views
        except KeyError:
            # An unknown workload somewhere: replay the scalar walk
            # (instance order, then node order) so the error names the
            # workload the scalar path would have hit first.
            for spec in placement.instances:
                key = spec.instance_key
                for node in placement.spanned_nodes(key):
                    for other_key, workload in residents.get(node, ()):
                        if other_key != key:
                            self._score_of(workload)
                self._score_of(spec.workload)
            raise  # pragma: no cover - unknowns always reachable above
        out: List[Tuple[str, str, List[float]]] = []
        for spec in placement.instances:
            key = spec.instance_key
            out.append(
                (
                    key,
                    spec.workload,
                    [
                        excluding[node][key]
                        for node in placement.spanned_nodes(key)
                    ],
                )
            )
        return out

    # ------------------------------------------------------------------
    # Vectorized prediction
    # ------------------------------------------------------------------
    def knows(self, workload: str) -> bool:
        """Whether the snapshot carries a profile for ``workload``."""
        return workload in self._tables

    def predict_vectors(
        self,
        workloads: Sequence[str],
        vectors: Sequence[Sequence[float]],
        *,
        policy_override: Optional[HeterogeneityPolicy] = None,
    ) -> Optional[np.ndarray]:
        """Heterogeneous predictions for parallel workload/vector lists.

        Returns ``None`` when the batch contains an anomaly (unknown
        workload, empty vector, NaN or negative pressure) so the caller
        can replay the scalar path and surface the scalar error.
        ``policy_override`` substitutes one policy for every profile's
        own — the degraded-workload conservative ALL-max path.
        """
        size = len(workloads)
        out = np.empty(size, dtype=float)
        if size == 0:
            return out
        lengths = np.fromiter(
            (len(vector) for vector in vectors), dtype=np.intp, count=size
        )
        if (lengths == 0).any():
            return None
        width = int(lengths.max())
        try:
            if int(lengths.min()) == width:
                # Uniform span widths (the common placement case):
                # build the matrix in one C-level pass, no padding.
                padded = np.asarray(vectors, dtype=float)
                if padded.shape != (size, width):
                    return None
            else:
                padded = np.zeros((size, width), dtype=float)
                for i, vector in enumerate(vectors):
                    padded[i, : lengths[i]] = vector
        except (TypeError, ValueError):
            return None
        if np.isnan(padded).any() or (padded < 0.0).any():
            return None
        groups: Dict[str, List[int]] = {}
        for i, workload in enumerate(workloads):
            if workload not in self._tables:
                return None
            groups.setdefault(workload, []).append(i)
        for workload, indices in groups.items():
            table = self._tables[workload]
            policy = policy_override or table.policy
            if len(indices) < SMALL_GROUP:
                matrix = table.matrix
                for i in indices:
                    vector = padded[i, : lengths[i]]
                    setting = policy.convert(vector)
                    scale = table.max_count / len(vector)
                    out[i] = matrix.lookup(
                        HomogeneousSetting(
                            setting.pressure, setting.count * scale
                        )
                    )
                continue
            rows = np.asarray(indices, dtype=np.intp)
            group_lengths = lengths[rows]
            pressure, count = policy.convert_batch(
                padded[rows], group_lengths
            )
            # Same operation order as the scalar path: the profiled
            # span rescale divides max_count by the true vector length,
            # then scales the converted count.
            scale = table.max_count / group_lengths
            out[rows] = table.matrix.lookup_batch(pressure, count * scale)
        return out

    def lookup_settings(
        self, workload: str, pressures: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Vectorized homogeneous lookups for one workload."""
        return self._tables[workload].matrix.lookup_batch(pressures, counts)
