"""The naive proportional interference model (Figure 2, Section 5.2).

The paper's strawman treats a distributed application as a collection
of independent single-node applications: interference on ``k`` of ``m``
nodes degrades the whole application by ``k/m`` of the all-nodes
degradation.  Heterogeneity is converted with a fixed ``N+1 max``
policy — "the static best one, if we select a single policy for all
the applications" (Section 5.2).

The naive model shares the real model's profiles (it needs the
all-nodes sensitivity curve and bubble scores) but ignores the
per-application propagation shape, which is precisely what Figure 2
shows going wrong.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.core.curves import HomogeneousSetting
from repro.core.model import InterferenceModel
from repro.core.policies import NPlusOneMaxPolicy


class NaiveProportionalModel:
    """Proportional-aggregation baseline model.

    Parameters
    ----------
    model:
        A fully-profiled :class:`InterferenceModel` whose matrices and
        bubble scores the naive model borrows.
    """

    def __init__(self, model: InterferenceModel) -> None:
        self._model = model
        self._policy = NPlusOneMaxPolicy()

    @property
    def workloads(self) -> List[str]:
        """Workloads the model can predict for."""
        return self._model.workloads

    def predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        """Proportional estimate: ``1 + (k/m) * (T(p, m) - 1)``."""
        profile = self._model.profile(workload)
        max_count = profile.matrix.max_count
        if max_count <= 0 or count <= 0 or pressure <= 0:
            return 1.0
        all_nodes = profile.matrix.lookup(HomogeneousSetting(pressure, max_count))
        fraction = min(count, max_count) / max_count
        return 1.0 + (all_nodes - 1.0) * fraction

    def predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        """Convert with the fixed ``N+1 max`` policy, then proportional.

        The proportional fraction is taken over the *deployment* span
        (the vector length): ``k`` interfering nodes out of the ``m``
        the application runs on contribute ``k/m`` of the all-nodes
        degradation.
        """
        setting = self._policy.convert(pressures)
        if setting.count <= 0 or setting.pressure <= 0:
            return 1.0
        profile = self._model.profile(workload)
        all_nodes = profile.matrix.lookup(
            HomogeneousSetting(setting.pressure, profile.matrix.max_count)
        )
        fraction = min(setting.count / len(pressures), 1.0)
        return 1.0 + (all_nodes - 1.0) * fraction

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node pressures (delegated to the underlying profiles)."""
        return self._model.pressure_vector(workload_nodes, co_runners_by_node)

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        """Normalized time of ``workload`` given its co-runners per node."""
        vector = self._model.pressure_vector(workload_nodes, co_runners_by_node)
        return self.predict_heterogeneous(workload, vector)
