"""Beyond-pairwise co-location (Section 4.4's "Pairwise Interaction").

The published model restricts each node to two distinct applications;
Section 4.4 sketches the extension: combine co-runner bubble scores
through the logarithmic rule ("each score increase by 1 corresponds to
the doubling of LLC misses", so two equal scores ``S`` combine to
``S + 1`` plus a collision term).  This module makes the sketch
concrete and usable:

* :func:`combined_score` — the score-combination rule with an optional
  collision surcharge estimate.
* :class:`MultiwayPredictor` — predicts a workload's normalized time
  when *several* applications share its nodes, by combining their
  scores per node before heterogeneity conversion.
* :func:`relaxed_cluster_spec` — a cluster spec allowing ``k``-way
  co-location so placements can exercise the extension.

Ground truth for >2-way sharing already exists in the simulator (the
pressure field combines any number of sources), so the extension's
prediction error is measurable — see
``benchmarks/bench_ablation_multiway.py``.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

from repro.cluster.cluster import ClusterSpec
from repro.core.model import InterferenceModel
from repro.errors import ModelError
from repro.units import MAX_PRESSURE


def combined_score(
    scores: Sequence[float], *, collision_surcharge: float = 0.0
) -> float:
    """Combine several co-runners' bubble scores into one pressure.

    ``log2`` of the summed miss traffic, plus ``collision_surcharge``
    per additional active source (the "extra pressure by collision"
    Section 4.4 mentions but leaves unestimated — callers wanting the
    conservative published rule pass 0).
    """
    values = [float(s) for s in scores]
    if any(s < 0 for s in values):
        raise ModelError("scores must be non-negative")
    active = [s for s in values if s > 0.0]
    if not active:
        return 0.0
    if len(active) == 1:
        return min(active[0], MAX_PRESSURE)
    total = math.log2(sum(2.0**s for s in active))
    total += collision_surcharge * (len(active) - 1)
    return min(total, MAX_PRESSURE)


class MultiwayPredictor:
    """Predicts interference from multiple co-located applications.

    Parameters
    ----------
    model:
        A profiled pairwise model (scores + matrices + policies).
    collision_surcharge:
        Score-combination surcharge per extra co-runner; 0 reproduces
        the paper's conservative rule, ~0.15 matches this simulator's
        ground-truth collision term.
    """

    def __init__(
        self, model: InterferenceModel, *, collision_surcharge: float = 0.0
    ) -> None:
        if collision_surcharge < 0:
            raise ModelError("collision_surcharge must be non-negative")
        self.model = model
        self.collision_surcharge = collision_surcharge

    def node_pressure(self, co_runners: Sequence[str]) -> float:
        """Effective pressure from any number of co-located workloads."""
        scores = [self.model.profile(name).bubble_score for name in co_runners]
        return combined_score(
            scores, collision_surcharge=self.collision_surcharge
        )

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node combined pressures for a multiway placement."""
        return [
            self.node_pressure(co_runners_by_node.get(node, ()))
            for node in workload_nodes
        ]

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        """Normalized time under arbitrary-way co-location."""
        vector = self.pressure_vector(workload_nodes, co_runners_by_node)
        return self.model.predict_heterogeneous(workload, vector)


def relaxed_cluster_spec(
    base: ClusterSpec | None = None, *, max_workloads: int = 3
) -> ClusterSpec:
    """A cluster spec permitting ``max_workloads``-way co-location.

    The testbed's cores still bound how many units fit; this only
    relaxes the *distinct workload* limit the pairwise model imposed.
    """
    base = base or ClusterSpec()
    if max_workloads < 2:
        raise ModelError("max_workloads must be at least 2")
    return ClusterSpec(
        num_nodes=base.num_nodes,
        cores_per_node=base.cores_per_node,
        memory_gb_per_node=base.memory_gb_per_node,
        max_workloads_per_node=max_workloads,
    )
