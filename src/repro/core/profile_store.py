"""Persistence for interference models.

Profiling is the expensive step (hours of real cluster time in the
paper; seconds of simulation here), so profiled models can be saved to
JSON and reloaded — the paper's "profile once per application binary
and system configuration" workflow (Section 4.4).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.model import InterferenceModel
from repro.errors import ModelError

_FORMAT_VERSION = 1


def save_model(model: InterferenceModel, path: Union[str, Path]) -> None:
    """Write a model's profiles to ``path`` as JSON."""
    payload = {"version": _FORMAT_VERSION, "profiles": model.to_dict()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_model(path: Union[str, Path]) -> InterferenceModel:
    """Load a model previously written by :func:`save_model`.

    Raises
    ------
    ModelError
        If the file is not a recognized profile store.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ModelError(f"cannot read profile store {path}: {exc}") from exc
    if not isinstance(payload, dict) or "profiles" not in payload:
        raise ModelError(f"{path} is not a profile store")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ModelError(
            f"profile store version {version!r} unsupported "
            f"(expected {_FORMAT_VERSION})"
        )
    return InterferenceModel.from_dict(payload["profiles"])
