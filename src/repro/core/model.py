"""The interference-aware performance model (Sections 3.4 and 4).

An :class:`InterferenceProfile` bundles everything profiling produces
for one application:

1. its propagation matrix (sensitivity curves over homogeneous
   interference),
2. its best heterogeneity mapping policy, and
3. its bubble score (the pressure it exerts on co-runners).

The :class:`InterferenceModel` holds profiles for a set of applications
and predicts normalized execution times — for explicit interference
settings (used in validation) and for *placements*, where each
application's per-node pressure vector is derived from the bubble
scores of whatever shares its nodes (Figure 5's procedure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.contention import ContentionDomain, combine_pressures
from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.kernel import PredictionKernel, PredictionRequest
from repro.core.policies import HeterogeneityPolicy, get_policy
from repro.errors import ModelError
from repro.obs import recorder as _obs

#: What :meth:`InterferenceModel.predict` accepts as an interference
#: description: a homogeneous ``(pressure, count)`` setting (a
#: :class:`HomogeneousSetting` or a plain 2-tuple) or a per-node
#: pressure vector (a list/array, one entry per spanned node).
Interference = Union[HomogeneousSetting, Tuple[float, float], Sequence[float]]

#: Heterogeneity mapping of the NETWORK domain.  Collectives are gated
#: by the bottleneck link — the slowest uplink serializes the whole
#: exchange — so the worst per-node link pressure propagates to the
#: entire span regardless of the workload's compute-domain policy.
NETWORK_POLICY = "ALL MAX"


def _count_batch(size: int) -> None:
    """Batch-size counters for ``repro trace summarize`` rollups."""
    _obs.RECORDER.count("model.predict.batch.calls")
    _obs.RECORDER.count("model.predict.batch.requests", size)


@dataclass(frozen=True)
class InterferenceProfile:
    """Profiled interference behaviour of one application.

    The scalar-era fields describe the COMPUTE contention domain
    (LLC + memory bandwidth).  ``network_matrix``/``network_score``
    describe the NETWORK domain and stay at their defaults for every
    profile built without network profiling — serialization omits them
    entirely in that case, so existing model files round-trip
    byte-identically.
    """

    workload: str
    matrix: PropagationMatrix
    policy_name: str
    bubble_score: float
    #: Propagation matrix over NETWORK-domain (link-noise) settings;
    #: ``None`` means the workload was not profiled for the network
    #: dimension and its predictions are compute-only.
    network_matrix: Optional[PropagationMatrix] = None
    #: Link pressure the workload exerts on co-runners' uplinks (its
    #: network bubble score).
    network_score: float = 0.0

    def __post_init__(self) -> None:
        if self.bubble_score < 0:
            raise ModelError("bubble_score must be non-negative")
        if self.network_score < 0:
            raise ModelError("network_score must be non-negative")
        get_policy(self.policy_name)  # validates the name

    @property
    def policy(self) -> HeterogeneityPolicy:
        """Instantiate the profile's heterogeneity policy."""
        return get_policy(self.policy_name)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        payload = {
            "workload": self.workload,
            "matrix": self.matrix.to_dict(),
            "policy": self.policy_name,
            "bubble_score": self.bubble_score,
        }
        if self.network_matrix is not None:
            payload["network_matrix"] = self.network_matrix.to_dict()
        if self.network_score:
            payload["network_score"] = self.network_score
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "InterferenceProfile":
        """Inverse of :meth:`to_dict`."""
        network_matrix = payload.get("network_matrix")
        return cls(
            workload=payload["workload"],
            matrix=PropagationMatrix.from_dict(payload["matrix"]),
            policy_name=payload["policy"],
            bubble_score=payload["bubble_score"],
            network_matrix=(
                None if network_matrix is None
                else PropagationMatrix.from_dict(network_matrix)
            ),
            network_score=payload.get("network_score", 0.0),
        )


class InterferenceModel:
    """Predicts distributed applications' performance under interference.

    Parameters
    ----------
    profiles:
        One :class:`InterferenceProfile` per application the model
        knows about.
    """

    def __init__(self, profiles: Mapping[str, InterferenceProfile]) -> None:
        self._profiles = dict(profiles)
        #: Bumped on every profile registration; the cached
        #: :class:`PredictionKernel` snapshot is keyed on it.
        self._version = 0
        self._kernel: PredictionKernel | None = None
        self._net_kernel: PredictionKernel | None = None
        self._net_version = -1
        self._net_predictable: frozenset = frozenset()

    @property
    def workloads(self) -> List[str]:
        """Workloads the model can predict for."""
        return sorted(self._profiles)

    def profile(self, workload: str) -> InterferenceProfile:
        """The profile of ``workload``.

        Raises
        ------
        ModelError
            If the workload was never profiled.
        """
        try:
            return self._profiles[workload]
        except KeyError:
            raise ModelError(
                f"no interference profile for {workload!r}; "
                f"profiled: {', '.join(sorted(self._profiles))}"
            ) from None

    def add_profile(self, profile: InterferenceProfile) -> None:
        """Register (or replace) a workload profile.

        Invalidates the cached :meth:`prediction_kernel` snapshot.
        """
        self._profiles[profile.workload] = profile
        self._version += 1

    def prediction_kernel(self) -> PredictionKernel:
        """The frozen batch-prediction snapshot of this model.

        Rebuilt lazily whenever :meth:`add_profile` has registered or
        replaced a profile since the last build; see
        :mod:`repro.core.kernel` for the bit-identity contract.
        """
        kernel = self._kernel
        if kernel is None or kernel.version != self._version:
            kernel = PredictionKernel(self._profiles, version=self._version)
            self._kernel = kernel
        return kernel

    def _network_predictable(self) -> frozenset:
        """Workloads holding a network matrix (version-cached)."""
        if self._net_version != self._version:
            self._net_predictable = frozenset(
                name
                for name, profile in self._profiles.items()
                if profile.network_matrix is not None
            )
            self._net_kernel = None
            self._net_version = self._version
        return self._net_predictable

    @property
    def has_network(self) -> bool:
        """Whether any profile carries the NETWORK contention domain.

        False for every model built without network profiling; all
        combined-prediction branches gate on it, so such models execute
        exactly the scalar-era code paths.
        """
        return bool(self._network_predictable())

    def network_kernel(self) -> PredictionKernel:
        """The batch-prediction snapshot of the NETWORK domain.

        Built from a *view* of the profiles in which each workload's
        matrix is its network matrix and its bubble score is its
        network score, so the full kernel machinery — and its
        bit-identity contract — applies unchanged to the network
        dimension.  Workloads without a network matrix appear in the
        view only as pressure sources (their compute matrix is a
        placeholder that is never consulted; prediction for them is
        guarded at the model level).

        Every view profile carries the ALL-max heterogeneity policy:
        a collective is gated by its *bottleneck* link (the slowest
        uplink serializes the whole exchange), so the worst link
        pressure anywhere on the span is what the network matrix must
        be read at — see :data:`NETWORK_POLICY`.
        """
        self._network_predictable()
        if self._net_kernel is None or self._net_kernel.version != self._version:
            view = {
                name: InterferenceProfile(
                    workload=profile.workload,
                    matrix=(
                        profile.network_matrix
                        if profile.network_matrix is not None
                        else profile.matrix
                    ),
                    policy_name=NETWORK_POLICY,
                    bubble_score=profile.network_score,
                )
                for name, profile in self._profiles.items()
            }
            self._net_kernel = PredictionKernel(view, version=self._version)
        return self._net_kernel

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def predict(
        self,
        workload: str,
        interference: Interference,
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> float:
        """Normalized time of ``workload`` under ``interference``.

        The single prediction entry point; dispatches on the type of
        ``interference``:

        * a :class:`HomogeneousSetting` or a plain **tuple**
          ``(pressure, count)`` — the homogeneous lookup (``count``
          nodes all interfering at ``pressure``);
        * any other sequence (list, array) — a per-node pressure
          vector, one entry per node the deployment spans, mapped
          through the workload's heterogeneity policy (Figure 5).

        The tuple/list distinction is deliberate: a 2-tuple is always
        the homogeneous pair, a 2-element list is always a 2-node
        vector.

        ``domain`` selects the contention resource: COMPUTE (the
        default, and exactly the scalar-era behaviour) reads the
        propagation matrix over cache/memory-bandwidth settings;
        NETWORK reads the per-link matrix and raises
        :class:`~repro.errors.ModelError` for workloads without a
        network profile.

        >>> model.predict("M.lmps", (5.0, 3))          # homogeneous
        >>> model.predict("M.lmps", [6.0, 3.0, 0, 0])  # heterogeneous
        """
        if domain is not ContentionDomain.COMPUTE:
            domain = ContentionDomain.parse(domain)
        if isinstance(interference, HomogeneousSetting):
            return self._predict_homogeneous(
                workload, interference.pressure, interference.count,
                domain=domain,
            )
        if isinstance(interference, tuple):
            if len(interference) != 2:
                raise ModelError(
                    "a homogeneous interference tuple must be "
                    f"(pressure, count); got {len(interference)} elements"
                )
            pressure, count = interference
            return self._predict_homogeneous(
                workload, float(pressure), float(count), domain=domain
            )
        if isinstance(interference, np.ndarray):
            # Float64 vectors pass through uncopied — the per-element
            # ``float()`` round-trip below is a pure identity for them
            # and a measurable allocation on the heterogeneous hot path.
            if interference.dtype == np.float64 and interference.ndim == 1:
                return self._predict_heterogeneous(
                    workload, interference, domain=domain
                )
            return self._predict_heterogeneous(
                workload, [float(p) for p in interference], domain=domain
            )
        if isinstance(interference, list) or (
            isinstance(interference, Sequence)
            and not isinstance(interference, (str, bytes))
        ):
            return self._predict_heterogeneous(
                workload, [float(p) for p in interference], domain=domain
            )
        raise ModelError(
            "interference must be a (pressure, count) pair or a per-node "
            f"pressure vector; got {type(interference).__name__}"
        )

    def _domain_matrix(
        self, profile: InterferenceProfile, domain: ContentionDomain
    ) -> PropagationMatrix:
        if domain is ContentionDomain.COMPUTE:
            return profile.matrix
        if profile.network_matrix is None:
            raise ModelError(
                f"no network profile for {profile.workload!r}; "
                "build one with build_network_profiles"
            )
        return profile.network_matrix

    def _predict_homogeneous(
        self, workload: str, pressure: float, count: float,
        *, domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> float:
        profile = self.profile(workload)
        matrix = self._domain_matrix(profile, domain)
        return matrix.lookup(HomogeneousSetting(pressure, count))

    def _predict_heterogeneous(
        self, workload: str, pressures: Sequence[float],
        *, domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> float:
        profile = self.profile(workload)
        matrix = self._domain_matrix(profile, domain)
        if domain is ContentionDomain.COMPUTE:
            policy = profile.policy
        else:
            policy = get_policy(NETWORK_POLICY)
        setting = policy.convert(pressures)
        scale = matrix.max_count / len(pressures)
        scaled = HomogeneousSetting(setting.pressure, setting.count * scale)
        return matrix.lookup(scaled)

    def predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        """Normalized time with ``count`` nodes interfering at ``pressure``.

        Delegates to :meth:`predict` with a homogeneous setting.
        """
        return self.predict(workload, HomogeneousSetting(pressure, count))

    def predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        """Normalized time under a per-node pressure vector.

        Applies the workload's heterogeneity policy and then looks up
        the propagation matrix — exactly Figure 5's procedure.

        The pressure vector has one entry per node the *deployment*
        spans.  The matrix was profiled on a fixed span (all 8 hosts in
        Section 3.1), so when the deployment spans fewer nodes —
        Section 5 runs each application on 4 hosts — the converted
        node count is rescaled to the profiled span: ``k`` interfering
        nodes out of 4 correspond to ``2k`` out of the profiled 8.

        Delegates to :meth:`predict` with the vector form.
        """
        return self.predict(workload, list(pressures))

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node pressures an application sees from its co-runners.

        Parameters
        ----------
        workload_nodes:
            Nodes the target application spans.
        co_runners_by_node:
            For each node, the workload names of *other* applications
            resident there (one name per resident VM unit; the same
            name may repeat if two units share the node).

        Notes
        -----
        Pressures combine using the public scoring rule (one level per
        doubling of misses) without the collision surcharge — the model
        cannot observe the surcharge, which is one of its honest error
        sources.
        """
        vector: List[float] = []
        for node in workload_nodes:
            scores = [
                self.profile(name).bubble_score
                for name in co_runners_by_node.get(node, ())
            ]
            vector.append(combine_pressures(scores, collision_surcharge=0.0))
        return vector

    def network_pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node *link* pressures seen from co-runners' network scores.

        The NETWORK-domain analogue of :meth:`pressure_vector`,
        combining the co-runners' network bubble scores per node with
        the same surcharge-free public rule.
        """
        vector: List[float] = []
        for node in workload_nodes:
            scores = [
                self.profile(name).network_score
                for name in co_runners_by_node.get(node, ())
            ]
            vector.append(combine_pressures(scores, collision_surcharge=0.0))
        return vector

    def _network_factor(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> Optional[float]:
        """NETWORK-domain slowdown factor, or ``None`` if not applicable.

        ``None`` when the target has no network profile — combined
        predictions then degrade gracefully to compute-only, mirroring
        the scalar era.
        """
        profile = self.profile(workload)
        if profile.network_matrix is None:
            return None
        vector = self.network_pressure_vector(
            workload_nodes, co_runners_by_node
        )
        return self._predict_heterogeneous(
            workload, vector, domain=ContentionDomain.NETWORK
        )

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        """Normalized time of ``workload`` given its co-runners per node.

        When the model carries the NETWORK domain, the prediction is
        the *combined* per-resource estimate: the compute slowdown
        multiplied by the link-contention slowdown (slowdowns on
        independent resources compose multiplicatively, the standard
        independence assumption).  Models without network profiles run
        exactly the scalar-era code path.
        """
        vector = self.pressure_vector(workload_nodes, co_runners_by_node)
        value = self.predict_heterogeneous(workload, vector)
        if self.has_network:
            factor = self._network_factor(
                workload, workload_nodes, co_runners_by_node
            )
            if factor is not None:
                value = value * factor
        return value

    # ------------------------------------------------------------------
    # Batch predictions (the vectorized hot path)
    # ------------------------------------------------------------------
    def predict_batch(
        self,
        requests: Sequence[Union[PredictionRequest, Tuple[str, object]]],
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> np.ndarray:
        """Vectorized :meth:`predict` over many requests at once.

        Each request is a :class:`~repro.core.kernel.PredictionRequest`
        or a plain ``(workload, interference)`` pair; ``interference``
        takes the same forms :meth:`predict` accepts.  ``domain``
        selects the contention resource exactly as in :meth:`predict`.
        Results are bit-identical to calling :meth:`predict` per
        request (see :mod:`repro.core.kernel`); any malformed request
        drops the whole batch onto the scalar path so the scalar
        exception is raised, in request order.
        """
        if domain is not ContentionDomain.COMPUTE:
            domain = ContentionDomain.parse(domain)
        network = domain is ContentionDomain.NETWORK
        unpacked: List[Tuple[str, object]] = []
        for request in requests:
            if isinstance(request, PredictionRequest):
                unpacked.append((request.workload, request.interference))
            else:
                workload, interference = request
                unpacked.append((workload, interference))
        _count_batch(len(unpacked))
        if network:
            kernel = self.network_kernel()
            predictable = self._network_predictable()
        else:
            kernel = self.prediction_kernel()
            predictable = None
        out = np.empty(len(unpacked), dtype=float)
        het_indices: List[int] = []
        het_workloads: List[str] = []
        het_vectors: List[Sequence[float]] = []
        # Homogeneous settings grouped per workload: indices, pressures,
        # counts.
        hom: Dict[str, Tuple[List[int], List[float], List[float]]] = {}
        for i, (workload, interference) in enumerate(unpacked):
            if not kernel.knows(workload):
                return self._predict_batch_scalar(unpacked, domain=domain)
            if predictable is not None and workload not in predictable:
                # The network view knows the workload only as a pressure
                # source; scalar replay raises the proper ModelError.
                return self._predict_batch_scalar(unpacked, domain=domain)
            if isinstance(interference, tuple) and not isinstance(
                interference, HomogeneousSetting
            ):
                if len(interference) != 2:
                    return self._predict_batch_scalar(unpacked, domain=domain)
                try:
                    interference = HomogeneousSetting(
                        float(interference[0]), float(interference[1])
                    )
                except (TypeError, ValueError):
                    return self._predict_batch_scalar(unpacked, domain=domain)
            if isinstance(interference, HomogeneousSetting):
                bucket = hom.setdefault(workload, ([], [], []))
                bucket[0].append(i)
                bucket[1].append(interference.pressure)
                bucket[2].append(interference.count)
            elif isinstance(interference, (list, np.ndarray)) or (
                isinstance(interference, Sequence)
                and not isinstance(interference, (str, bytes))
            ):
                het_indices.append(i)
                het_workloads.append(workload)
                het_vectors.append(interference)
            else:
                return self._predict_batch_scalar(unpacked, domain=domain)
        if het_indices:
            values = kernel.predict_vectors(het_workloads, het_vectors)
            if values is None:
                return self._predict_batch_scalar(unpacked, domain=domain)
            out[het_indices] = values
        for workload, (indices, pressures, counts) in hom.items():
            out[indices] = kernel.lookup_settings(
                workload, np.asarray(pressures), np.asarray(counts)
            )
        return out

    def _predict_batch_scalar(
        self,
        unpacked: Sequence[Tuple[str, object]],
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> np.ndarray:
        """Reference scalar path (also the error-raising fallback)."""
        return np.array(
            [self.predict(workload, interference, domain=domain)
             for workload, interference in unpacked],
            dtype=float,
        )

    def predict_corunners_batch(
        self,
        items: Sequence[Tuple[str, Sequence[int], Mapping[int, Sequence[str]]]],
    ) -> np.ndarray:
        """Vectorized :meth:`predict_under_corunners` over many items.

        Each item is ``(workload, workload_nodes, co_runners_by_node)``.
        """
        _count_batch(len(items))
        kernel = self.prediction_kernel()
        workloads: List[str] = []
        vectors: List[List[float]] = []
        try:
            for workload, nodes, co_runners in items:
                workloads.append(workload)
                vectors.append(kernel.pressure_vector(nodes, co_runners))
        except ModelError:
            # An unknown co-runner: replay scalar in item order so the
            # error surfaces exactly where the scalar loop raises it.
            return np.array(
                [self.predict_under_corunners(w, n, c) for w, n, c in items],
                dtype=float,
            )
        values = kernel.predict_vectors(workloads, vectors)
        if values is None:
            return np.array(
                [self.predict_under_corunners(w, n, c) for w, n, c in items],
                dtype=float,
            )
        if self.has_network:
            values = self._apply_network_factors(
                values,
                [(w, n, c) for w, n, c in items],
            )
            if values is None:
                return np.array(
                    [
                        self.predict_under_corunners(w, n, c)
                        for w, n, c in items
                    ],
                    dtype=float,
                )
        return values

    def _apply_network_factors(
        self,
        values: np.ndarray,
        items: Sequence[Tuple[str, Sequence[int], Mapping[int, Sequence[str]]]],
    ) -> Optional[np.ndarray]:
        """Fold NETWORK-domain factors into compute predictions in place.

        ``values[i]`` is multiplied by the network slowdown of
        ``items[i]`` for every network-predictable target — one
        multiplication per item, in item order, exactly as the scalar
        combined path does it.  Returns ``None`` on a kernel anomaly so
        callers replay the whole batch through the scalar path.
        """
        predictable = self._network_predictable()
        net_kernel = self.network_kernel()
        indices: List[int] = []
        net_workloads: List[str] = []
        net_vectors: List[List[float]] = []
        try:
            for i, (workload, nodes, co_runners) in enumerate(items):
                if workload not in predictable:
                    continue
                indices.append(i)
                net_workloads.append(workload)
                net_vectors.append(
                    net_kernel.pressure_vector(nodes, co_runners)
                )
        except ModelError:
            return None
        if not indices:
            return values
        factors = net_kernel.predict_vectors(net_workloads, net_vectors)
        if factors is None:
            return None
        for i, factor in zip(indices, factors):
            values[i] = values[i] * factor
        return values

    def predict_placement_batch(
        self, placement: "Placement"  # noqa: F821
    ) -> Dict[str, float]:
        """All of a placement's instance predictions in one batch.

        Bit-identical to
        :func:`repro.placement.objectives.predict_placement_scalar`,
        with the per-instance table in the same (instance) order.
        """
        kernel = self.prediction_kernel()
        triples = kernel.placement_vectors(placement)
        _count_batch(len(triples))
        values = kernel.predict_vectors(
            [workload for _, workload, _ in triples],
            [vector for _, _, vector in triples],
        )
        net_triples = None
        if self.has_network:
            # Same placement, network view: vectors combine co-runner
            # *network* scores; triple order matches `triples`.
            net_triples = self.network_kernel().placement_vectors(placement)
        if values is not None and net_triples is not None:
            values = self._fold_placement_network(values, triples, net_triples)
        if values is None:
            predictable = self._network_predictable()
            out: Dict[str, float] = {}
            for i, (key, workload, vector) in enumerate(triples):
                value = self.predict_heterogeneous(workload, vector)
                if net_triples is not None and workload in predictable:
                    value = value * self._predict_heterogeneous(
                        workload, net_triples[i][2],
                        domain=ContentionDomain.NETWORK,
                    )
                out[key] = value
            return out
        return {
            key: float(value)
            for (key, _, _), value in zip(triples, values)
        }

    def _fold_placement_network(
        self,
        values: np.ndarray,
        triples: Sequence[Tuple[str, str, List[float]]],
        net_triples: Sequence[Tuple[str, str, List[float]]],
    ) -> Optional[np.ndarray]:
        """Multiply NETWORK factors into placement predictions in place.

        Returns ``None`` on a network-kernel anomaly so the caller
        replays the combined scalar path.
        """
        predictable = self._network_predictable()
        indices = [
            i for i, (_, workload, _) in enumerate(triples)
            if workload in predictable
        ]
        if not indices:
            return values
        factors = self.network_kernel().predict_vectors(
            [triples[i][1] for i in indices],
            [net_triples[i][2] for i in indices],
        )
        if factors is None:
            return None
        for i, factor in zip(indices, factors):
            values[i] = values[i] * factor
        return values

    def predict_placements_batch(
        self, placements: Sequence["Placement"]  # noqa: F821
    ) -> np.ndarray:
        """Score a whole wave of candidate placements in one batch.

        All placements must share the same instance list in the same
        order (an admission wave extends one base placement with the
        same job).  Returns a ``(num_placements, num_instances)`` array
        whose row ``c`` holds candidate ``c``'s per-instance
        predictions in instance order.
        """
        if not placements:
            return np.empty((0, 0), dtype=float)
        keys = tuple(spec.instance_key for spec in placements[0].instances)
        workloads: List[str] = []
        vectors: List[List[float]] = []
        kernel = self.prediction_kernel()
        net_kernel = self.network_kernel() if self.has_network else None
        net_vectors: List[List[float]] = []
        for placement in placements:
            if tuple(
                spec.instance_key for spec in placement.instances
            ) != keys:
                raise ModelError(
                    "predict_placements_batch requires every placement "
                    "to share one instance list"
                )
            for _, workload, vector in kernel.placement_vectors(placement):
                workloads.append(workload)
                vectors.append(vector)
            if net_kernel is not None:
                for _, _, vector in net_kernel.placement_vectors(placement):
                    net_vectors.append(vector)
        _count_batch(len(workloads))
        values = kernel.predict_vectors(workloads, vectors)
        if values is None:
            values = np.array(
                [
                    self.predict_heterogeneous(workload, vector)
                    for workload, vector in zip(workloads, vectors)
                ],
                dtype=float,
            )
        if net_kernel is not None:
            predictable = self._network_predictable()
            indices = [
                i for i, workload in enumerate(workloads)
                if workload in predictable
            ]
            if indices:
                factors = net_kernel.predict_vectors(
                    [workloads[i] for i in indices],
                    [net_vectors[i] for i in indices],
                )
                if factors is None:
                    factors = np.array(
                        [
                            self._predict_heterogeneous(
                                workloads[i],
                                net_vectors[i],
                                domain=ContentionDomain.NETWORK,
                            )
                            for i in indices
                        ],
                        dtype=float,
                    )
                for i, factor in zip(indices, factors):
                    values[i] = values[i] * factor
        return values.reshape(len(placements), len(keys))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation of all profiles."""
        return {name: prof.to_dict() for name, prof in self._profiles.items()}

    @classmethod
    def from_dict(cls, payload: dict) -> "InterferenceModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            {name: InterferenceProfile.from_dict(p) for name, p in payload.items()}
        )
