"""The interference-aware performance model (Sections 3.4 and 4).

An :class:`InterferenceProfile` bundles everything profiling produces
for one application:

1. its propagation matrix (sensitivity curves over homogeneous
   interference),
2. its best heterogeneity mapping policy, and
3. its bubble score (the pressure it exerts on co-runners).

The :class:`InterferenceModel` holds profiles for a set of applications
and predicts normalized execution times — for explicit interference
settings (used in validation) and for *placements*, where each
application's per-node pressure vector is derived from the bubble
scores of whatever shares its nodes (Figure 5's procedure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.cluster.contention import combine_pressures
from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.policies import HeterogeneityPolicy, get_policy
from repro.errors import ModelError

#: What :meth:`InterferenceModel.predict` accepts as an interference
#: description: a homogeneous ``(pressure, count)`` setting (a
#: :class:`HomogeneousSetting` or a plain 2-tuple) or a per-node
#: pressure vector (a list/array, one entry per spanned node).
Interference = Union[HomogeneousSetting, Tuple[float, float], Sequence[float]]


@dataclass(frozen=True)
class InterferenceProfile:
    """Profiled interference behaviour of one application."""

    workload: str
    matrix: PropagationMatrix
    policy_name: str
    bubble_score: float

    def __post_init__(self) -> None:
        if self.bubble_score < 0:
            raise ModelError("bubble_score must be non-negative")
        get_policy(self.policy_name)  # validates the name

    @property
    def policy(self) -> HeterogeneityPolicy:
        """Instantiate the profile's heterogeneity policy."""
        return get_policy(self.policy_name)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "workload": self.workload,
            "matrix": self.matrix.to_dict(),
            "policy": self.policy_name,
            "bubble_score": self.bubble_score,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InterferenceProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=payload["workload"],
            matrix=PropagationMatrix.from_dict(payload["matrix"]),
            policy_name=payload["policy"],
            bubble_score=payload["bubble_score"],
        )


class InterferenceModel:
    """Predicts distributed applications' performance under interference.

    Parameters
    ----------
    profiles:
        One :class:`InterferenceProfile` per application the model
        knows about.
    """

    def __init__(self, profiles: Mapping[str, InterferenceProfile]) -> None:
        self._profiles = dict(profiles)

    @property
    def workloads(self) -> List[str]:
        """Workloads the model can predict for."""
        return sorted(self._profiles)

    def profile(self, workload: str) -> InterferenceProfile:
        """The profile of ``workload``.

        Raises
        ------
        ModelError
            If the workload was never profiled.
        """
        try:
            return self._profiles[workload]
        except KeyError:
            raise ModelError(
                f"no interference profile for {workload!r}; "
                f"profiled: {', '.join(sorted(self._profiles))}"
            ) from None

    def add_profile(self, profile: InterferenceProfile) -> None:
        """Register (or replace) a workload profile."""
        self._profiles[profile.workload] = profile

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def predict(self, workload: str, interference: Interference) -> float:
        """Normalized time of ``workload`` under ``interference``.

        The single prediction entry point; dispatches on the type of
        ``interference``:

        * a :class:`HomogeneousSetting` or a plain **tuple**
          ``(pressure, count)`` — the homogeneous lookup (``count``
          nodes all interfering at ``pressure``);
        * any other sequence (list, array) — a per-node pressure
          vector, one entry per node the deployment spans, mapped
          through the workload's heterogeneity policy (Figure 5).

        The tuple/list distinction is deliberate: a 2-tuple is always
        the homogeneous pair, a 2-element list is always a 2-node
        vector.

        >>> model.predict("M.lmps", (5.0, 3))          # homogeneous
        >>> model.predict("M.lmps", [6.0, 3.0, 0, 0])  # heterogeneous
        """
        if isinstance(interference, HomogeneousSetting):
            return self._predict_homogeneous(
                workload, interference.pressure, interference.count
            )
        if isinstance(interference, tuple):
            if len(interference) != 2:
                raise ModelError(
                    "a homogeneous interference tuple must be "
                    f"(pressure, count); got {len(interference)} elements"
                )
            pressure, count = interference
            return self._predict_homogeneous(
                workload, float(pressure), float(count)
            )
        if isinstance(interference, (list, np.ndarray)) or (
            isinstance(interference, Sequence)
            and not isinstance(interference, (str, bytes))
        ):
            return self._predict_heterogeneous(
                workload, [float(p) for p in interference]
            )
        raise ModelError(
            "interference must be a (pressure, count) pair or a per-node "
            f"pressure vector; got {type(interference).__name__}"
        )

    def _predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        profile = self.profile(workload)
        return profile.matrix.lookup(HomogeneousSetting(pressure, count))

    def _predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        profile = self.profile(workload)
        setting = profile.policy.convert(pressures)
        scale = profile.matrix.max_count / len(pressures)
        scaled = HomogeneousSetting(setting.pressure, setting.count * scale)
        return profile.matrix.lookup(scaled)

    def predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        """Normalized time with ``count`` nodes interfering at ``pressure``.

        Delegates to :meth:`predict` with a homogeneous setting.
        """
        return self.predict(workload, HomogeneousSetting(pressure, count))

    def predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        """Normalized time under a per-node pressure vector.

        Applies the workload's heterogeneity policy and then looks up
        the propagation matrix — exactly Figure 5's procedure.

        The pressure vector has one entry per node the *deployment*
        spans.  The matrix was profiled on a fixed span (all 8 hosts in
        Section 3.1), so when the deployment spans fewer nodes —
        Section 5 runs each application on 4 hosts — the converted
        node count is rescaled to the profiled span: ``k`` interfering
        nodes out of 4 correspond to ``2k`` out of the profiled 8.

        Delegates to :meth:`predict` with the vector form.
        """
        return self.predict(workload, list(pressures))

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node pressures an application sees from its co-runners.

        Parameters
        ----------
        workload_nodes:
            Nodes the target application spans.
        co_runners_by_node:
            For each node, the workload names of *other* applications
            resident there (one name per resident VM unit; the same
            name may repeat if two units share the node).

        Notes
        -----
        Pressures combine using the public scoring rule (one level per
        doubling of misses) without the collision surcharge — the model
        cannot observe the surcharge, which is one of its honest error
        sources.
        """
        vector: List[float] = []
        for node in workload_nodes:
            scores = [
                self.profile(name).bubble_score
                for name in co_runners_by_node.get(node, ())
            ]
            vector.append(combine_pressures(scores, collision_surcharge=0.0))
        return vector

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        """Normalized time of ``workload`` given its co-runners per node."""
        vector = self.pressure_vector(workload_nodes, co_runners_by_node)
        return self.predict_heterogeneous(workload, vector)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation of all profiles."""
        return {name: prof.to_dict() for name, prof in self._profiles.items()}

    @classmethod
    def from_dict(cls, payload: dict) -> "InterferenceModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            {name: InterferenceProfile.from_dict(p) for name, p in payload.items()}
        )
