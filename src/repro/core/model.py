"""The interference-aware performance model (Sections 3.4 and 4).

An :class:`InterferenceProfile` bundles everything profiling produces
for one application:

1. its propagation matrix (sensitivity curves over homogeneous
   interference),
2. its best heterogeneity mapping policy, and
3. its bubble score (the pressure it exerts on co-runners).

The :class:`InterferenceModel` holds profiles for a set of applications
and predicts normalized execution times — for explicit interference
settings (used in validation) and for *placements*, where each
application's per-node pressure vector is derived from the bubble
scores of whatever shares its nodes (Figure 5's procedure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.cluster.contention import combine_pressures
from repro.core.curves import HomogeneousSetting, PropagationMatrix
from repro.core.kernel import PredictionKernel, PredictionRequest
from repro.core.policies import HeterogeneityPolicy, get_policy
from repro.errors import ModelError
from repro.obs import recorder as _obs

#: What :meth:`InterferenceModel.predict` accepts as an interference
#: description: a homogeneous ``(pressure, count)`` setting (a
#: :class:`HomogeneousSetting` or a plain 2-tuple) or a per-node
#: pressure vector (a list/array, one entry per spanned node).
Interference = Union[HomogeneousSetting, Tuple[float, float], Sequence[float]]


def _count_batch(size: int) -> None:
    """Batch-size counters for ``repro trace summarize`` rollups."""
    _obs.RECORDER.count("model.predict.batch.calls")
    _obs.RECORDER.count("model.predict.batch.requests", size)


@dataclass(frozen=True)
class InterferenceProfile:
    """Profiled interference behaviour of one application."""

    workload: str
    matrix: PropagationMatrix
    policy_name: str
    bubble_score: float

    def __post_init__(self) -> None:
        if self.bubble_score < 0:
            raise ModelError("bubble_score must be non-negative")
        get_policy(self.policy_name)  # validates the name

    @property
    def policy(self) -> HeterogeneityPolicy:
        """Instantiate the profile's heterogeneity policy."""
        return get_policy(self.policy_name)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "workload": self.workload,
            "matrix": self.matrix.to_dict(),
            "policy": self.policy_name,
            "bubble_score": self.bubble_score,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InterferenceProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=payload["workload"],
            matrix=PropagationMatrix.from_dict(payload["matrix"]),
            policy_name=payload["policy"],
            bubble_score=payload["bubble_score"],
        )


class InterferenceModel:
    """Predicts distributed applications' performance under interference.

    Parameters
    ----------
    profiles:
        One :class:`InterferenceProfile` per application the model
        knows about.
    """

    def __init__(self, profiles: Mapping[str, InterferenceProfile]) -> None:
        self._profiles = dict(profiles)
        #: Bumped on every profile registration; the cached
        #: :class:`PredictionKernel` snapshot is keyed on it.
        self._version = 0
        self._kernel: PredictionKernel | None = None

    @property
    def workloads(self) -> List[str]:
        """Workloads the model can predict for."""
        return sorted(self._profiles)

    def profile(self, workload: str) -> InterferenceProfile:
        """The profile of ``workload``.

        Raises
        ------
        ModelError
            If the workload was never profiled.
        """
        try:
            return self._profiles[workload]
        except KeyError:
            raise ModelError(
                f"no interference profile for {workload!r}; "
                f"profiled: {', '.join(sorted(self._profiles))}"
            ) from None

    def add_profile(self, profile: InterferenceProfile) -> None:
        """Register (or replace) a workload profile.

        Invalidates the cached :meth:`prediction_kernel` snapshot.
        """
        self._profiles[profile.workload] = profile
        self._version += 1

    def prediction_kernel(self) -> PredictionKernel:
        """The frozen batch-prediction snapshot of this model.

        Rebuilt lazily whenever :meth:`add_profile` has registered or
        replaced a profile since the last build; see
        :mod:`repro.core.kernel` for the bit-identity contract.
        """
        kernel = self._kernel
        if kernel is None or kernel.version != self._version:
            kernel = PredictionKernel(self._profiles, version=self._version)
            self._kernel = kernel
        return kernel

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def predict(self, workload: str, interference: Interference) -> float:
        """Normalized time of ``workload`` under ``interference``.

        The single prediction entry point; dispatches on the type of
        ``interference``:

        * a :class:`HomogeneousSetting` or a plain **tuple**
          ``(pressure, count)`` — the homogeneous lookup (``count``
          nodes all interfering at ``pressure``);
        * any other sequence (list, array) — a per-node pressure
          vector, one entry per node the deployment spans, mapped
          through the workload's heterogeneity policy (Figure 5).

        The tuple/list distinction is deliberate: a 2-tuple is always
        the homogeneous pair, a 2-element list is always a 2-node
        vector.

        >>> model.predict("M.lmps", (5.0, 3))          # homogeneous
        >>> model.predict("M.lmps", [6.0, 3.0, 0, 0])  # heterogeneous
        """
        if isinstance(interference, HomogeneousSetting):
            return self._predict_homogeneous(
                workload, interference.pressure, interference.count
            )
        if isinstance(interference, tuple):
            if len(interference) != 2:
                raise ModelError(
                    "a homogeneous interference tuple must be "
                    f"(pressure, count); got {len(interference)} elements"
                )
            pressure, count = interference
            return self._predict_homogeneous(
                workload, float(pressure), float(count)
            )
        if isinstance(interference, np.ndarray):
            # Float64 vectors pass through uncopied — the per-element
            # ``float()`` round-trip below is a pure identity for them
            # and a measurable allocation on the heterogeneous hot path.
            if interference.dtype == np.float64 and interference.ndim == 1:
                return self._predict_heterogeneous(workload, interference)
            return self._predict_heterogeneous(
                workload, [float(p) for p in interference]
            )
        if isinstance(interference, list) or (
            isinstance(interference, Sequence)
            and not isinstance(interference, (str, bytes))
        ):
            return self._predict_heterogeneous(
                workload, [float(p) for p in interference]
            )
        raise ModelError(
            "interference must be a (pressure, count) pair or a per-node "
            f"pressure vector; got {type(interference).__name__}"
        )

    def _predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        profile = self.profile(workload)
        return profile.matrix.lookup(HomogeneousSetting(pressure, count))

    def _predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        profile = self.profile(workload)
        setting = profile.policy.convert(pressures)
        scale = profile.matrix.max_count / len(pressures)
        scaled = HomogeneousSetting(setting.pressure, setting.count * scale)
        return profile.matrix.lookup(scaled)

    def predict_homogeneous(
        self, workload: str, pressure: float, count: float
    ) -> float:
        """Normalized time with ``count`` nodes interfering at ``pressure``.

        Delegates to :meth:`predict` with a homogeneous setting.
        """
        return self.predict(workload, HomogeneousSetting(pressure, count))

    def predict_heterogeneous(
        self, workload: str, pressures: Sequence[float]
    ) -> float:
        """Normalized time under a per-node pressure vector.

        Applies the workload's heterogeneity policy and then looks up
        the propagation matrix — exactly Figure 5's procedure.

        The pressure vector has one entry per node the *deployment*
        spans.  The matrix was profiled on a fixed span (all 8 hosts in
        Section 3.1), so when the deployment spans fewer nodes —
        Section 5 runs each application on 4 hosts — the converted
        node count is rescaled to the profiled span: ``k`` interfering
        nodes out of 4 correspond to ``2k`` out of the profiled 8.

        Delegates to :meth:`predict` with the vector form.
        """
        return self.predict(workload, list(pressures))

    def pressure_vector(
        self,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> List[float]:
        """Per-node pressures an application sees from its co-runners.

        Parameters
        ----------
        workload_nodes:
            Nodes the target application spans.
        co_runners_by_node:
            For each node, the workload names of *other* applications
            resident there (one name per resident VM unit; the same
            name may repeat if two units share the node).

        Notes
        -----
        Pressures combine using the public scoring rule (one level per
        doubling of misses) without the collision surcharge — the model
        cannot observe the surcharge, which is one of its honest error
        sources.
        """
        vector: List[float] = []
        for node in workload_nodes:
            scores = [
                self.profile(name).bubble_score
                for name in co_runners_by_node.get(node, ())
            ]
            vector.append(combine_pressures(scores, collision_surcharge=0.0))
        return vector

    def predict_under_corunners(
        self,
        workload: str,
        workload_nodes: Sequence[int],
        co_runners_by_node: Mapping[int, Sequence[str]],
    ) -> float:
        """Normalized time of ``workload`` given its co-runners per node."""
        vector = self.pressure_vector(workload_nodes, co_runners_by_node)
        return self.predict_heterogeneous(workload, vector)

    # ------------------------------------------------------------------
    # Batch predictions (the vectorized hot path)
    # ------------------------------------------------------------------
    def predict_batch(
        self, requests: Sequence[Union[PredictionRequest, Tuple[str, object]]]
    ) -> np.ndarray:
        """Vectorized :meth:`predict` over many requests at once.

        Each request is a :class:`~repro.core.kernel.PredictionRequest`
        or a plain ``(workload, interference)`` pair; ``interference``
        takes the same forms :meth:`predict` accepts.  Results are
        bit-identical to calling :meth:`predict` per request (see
        :mod:`repro.core.kernel`); any malformed request drops the
        whole batch onto the scalar path so the scalar exception is
        raised, in request order.
        """
        unpacked: List[Tuple[str, object]] = []
        for request in requests:
            if isinstance(request, PredictionRequest):
                unpacked.append((request.workload, request.interference))
            else:
                workload, interference = request
                unpacked.append((workload, interference))
        _count_batch(len(unpacked))
        kernel = self.prediction_kernel()
        out = np.empty(len(unpacked), dtype=float)
        het_indices: List[int] = []
        het_workloads: List[str] = []
        het_vectors: List[Sequence[float]] = []
        # Homogeneous settings grouped per workload: indices, pressures,
        # counts.
        hom: Dict[str, Tuple[List[int], List[float], List[float]]] = {}
        for i, (workload, interference) in enumerate(unpacked):
            if not kernel.knows(workload):
                return self._predict_batch_scalar(unpacked)
            if isinstance(interference, tuple) and not isinstance(
                interference, HomogeneousSetting
            ):
                if len(interference) != 2:
                    return self._predict_batch_scalar(unpacked)
                try:
                    interference = HomogeneousSetting(
                        float(interference[0]), float(interference[1])
                    )
                except (TypeError, ValueError):
                    return self._predict_batch_scalar(unpacked)
            if isinstance(interference, HomogeneousSetting):
                bucket = hom.setdefault(workload, ([], [], []))
                bucket[0].append(i)
                bucket[1].append(interference.pressure)
                bucket[2].append(interference.count)
            elif isinstance(interference, (list, np.ndarray)) or (
                isinstance(interference, Sequence)
                and not isinstance(interference, (str, bytes))
            ):
                het_indices.append(i)
                het_workloads.append(workload)
                het_vectors.append(interference)
            else:
                return self._predict_batch_scalar(unpacked)
        if het_indices:
            values = kernel.predict_vectors(het_workloads, het_vectors)
            if values is None:
                return self._predict_batch_scalar(unpacked)
            out[het_indices] = values
        for workload, (indices, pressures, counts) in hom.items():
            out[indices] = kernel.lookup_settings(
                workload, np.asarray(pressures), np.asarray(counts)
            )
        return out

    def _predict_batch_scalar(
        self, unpacked: Sequence[Tuple[str, object]]
    ) -> np.ndarray:
        """Reference scalar path (also the error-raising fallback)."""
        return np.array(
            [self.predict(workload, interference)
             for workload, interference in unpacked],
            dtype=float,
        )

    def predict_corunners_batch(
        self,
        items: Sequence[Tuple[str, Sequence[int], Mapping[int, Sequence[str]]]],
    ) -> np.ndarray:
        """Vectorized :meth:`predict_under_corunners` over many items.

        Each item is ``(workload, workload_nodes, co_runners_by_node)``.
        """
        _count_batch(len(items))
        kernel = self.prediction_kernel()
        workloads: List[str] = []
        vectors: List[List[float]] = []
        try:
            for workload, nodes, co_runners in items:
                workloads.append(workload)
                vectors.append(kernel.pressure_vector(nodes, co_runners))
        except ModelError:
            # An unknown co-runner: replay scalar in item order so the
            # error surfaces exactly where the scalar loop raises it.
            return np.array(
                [self.predict_under_corunners(w, n, c) for w, n, c in items],
                dtype=float,
            )
        values = kernel.predict_vectors(workloads, vectors)
        if values is None:
            return np.array(
                [self.predict_under_corunners(w, n, c) for w, n, c in items],
                dtype=float,
            )
        return values

    def predict_placement_batch(
        self, placement: "Placement"  # noqa: F821
    ) -> Dict[str, float]:
        """All of a placement's instance predictions in one batch.

        Bit-identical to
        :func:`repro.placement.objectives.predict_placement_scalar`,
        with the per-instance table in the same (instance) order.
        """
        kernel = self.prediction_kernel()
        triples = kernel.placement_vectors(placement)
        _count_batch(len(triples))
        values = kernel.predict_vectors(
            [workload for _, workload, _ in triples],
            [vector for _, _, vector in triples],
        )
        if values is None:
            return {
                key: self.predict_heterogeneous(workload, vector)
                for key, workload, vector in triples
            }
        return {
            key: float(value)
            for (key, _, _), value in zip(triples, values)
        }

    def predict_placements_batch(
        self, placements: Sequence["Placement"]  # noqa: F821
    ) -> np.ndarray:
        """Score a whole wave of candidate placements in one batch.

        All placements must share the same instance list in the same
        order (an admission wave extends one base placement with the
        same job).  Returns a ``(num_placements, num_instances)`` array
        whose row ``c`` holds candidate ``c``'s per-instance
        predictions in instance order.
        """
        if not placements:
            return np.empty((0, 0), dtype=float)
        keys = tuple(spec.instance_key for spec in placements[0].instances)
        workloads: List[str] = []
        vectors: List[List[float]] = []
        kernel = self.prediction_kernel()
        for placement in placements:
            if tuple(
                spec.instance_key for spec in placement.instances
            ) != keys:
                raise ModelError(
                    "predict_placements_batch requires every placement "
                    "to share one instance list"
                )
            for _, workload, vector in kernel.placement_vectors(placement):
                workloads.append(workload)
                vectors.append(vector)
        _count_batch(len(workloads))
        values = kernel.predict_vectors(workloads, vectors)
        if values is None:
            values = np.array(
                [
                    self.predict_heterogeneous(workload, vector)
                    for workload, vector in zip(workloads, vectors)
                ],
                dtype=float,
            )
        return values.reshape(len(placements), len(keys))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation of all profiles."""
        return {name: prof.to_dict() for name, prof in self._profiles.items()}

    @classmethod
    def from_dict(cls, payload: dict) -> "InterferenceModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            {name: InterferenceProfile.from_dict(p) for name, p in payload.items()}
        )
