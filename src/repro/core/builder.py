"""End-to-end model construction.

Ties the three profiling steps of Section 3.4 together for a set of
workloads:

1. build each workload's propagation matrix (binary-optimized by
   default — the paper's recommended cost/accuracy point),
2. select its heterogeneity mapping policy by sampling, and
3. measure its bubble score with the probe bubble,

yielding a ready-to-use :class:`~repro.core.model.InterferenceModel`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro._util import stable_seed
from repro.cluster.contention import ContentionDomain
from repro.core.model import (
    InterferenceModel,
    InterferenceProfile,
    NETWORK_POLICY,
)
from repro.core.profiling.binary import (
    DEFAULT_THRESHOLD,
    binary_brute,
    binary_optimized,
)
from repro.core.profiling.plan import MeasurementOracle, ProfilingOutcome
from repro.core.profiling.policy_selection import PolicySelectionResult, select_policy
from repro.core.profiling.random_sampling import random_sampling
from repro.core.scoring import BubbleScoreMeter
from repro.errors import ProfilingError
from repro.obs import recorder as _obs
from repro.sim.runner import ClusterRunner
from repro.units import NUM_PRESSURE_LEVELS


def _random_profiler(fraction: float) -> Callable:
    """Adapt :func:`random_sampling` to the registry signature.

    The subset choice is seeded per workload (via the oracle's
    abbreviation), so a registry-driven build stays deterministic
    without threading a seed through every profiler.
    """

    def profile(
        oracle: MeasurementOracle, pressures, counts, *, threshold: float
    ) -> ProfilingOutcome:
        del threshold  # sampling has no subdivision threshold
        return random_sampling(
            oracle,
            pressures,
            counts,
            fraction=fraction,
            seed=stable_seed("random-profiler", fraction, oracle.abbrev),
        )

    return profile


#: Matrix-profiling algorithms selectable by name (Section 4.2's four).
MATRIX_PROFILERS: Dict[str, Callable] = {
    "binary-optimized": binary_optimized,
    "binary-brute": binary_brute,
    "random-30%": _random_profiler(0.3),
    "random-50%": _random_profiler(0.5),
}


@dataclass
class ModelBuildReport:
    """Everything learned while building a model (for reporting)."""

    model: InterferenceModel
    policy_selections: Dict[str, PolicySelectionResult]
    profiling_outcomes: Dict[str, ProfilingOutcome]
    bubble_scores: Dict[str, float]


def default_pressures() -> list:
    """The paper's profiled bubble levels: 1 through 8."""
    return [float(level) for level in range(1, NUM_PRESSURE_LEVELS + 1)]


def default_counts(num_nodes: int) -> list:
    """The private testbed's count axis: 0 through ``num_nodes``."""
    return [float(count) for count in range(num_nodes + 1)]


def build_model(
    runner: ClusterRunner,
    workloads: Sequence[str],
    *,
    algorithm: str = "binary-optimized",
    threshold: float = DEFAULT_THRESHOLD,
    policy_samples: int = 60,
    policy_reps: int = 1,
    counts: Optional[Sequence[float]] = None,
    pressures: Optional[Sequence[float]] = None,
    seed: int = 42,
    span: Optional[int] = None,
) -> ModelBuildReport:
    """Profile ``workloads`` on ``runner`` and assemble a model.

    Parameters
    ----------
    runner:
        Measurement environment.
    workloads:
        Workload abbreviations to profile.
    algorithm:
        Matrix-profiling algorithm (``"binary-optimized"`` or
        ``"binary-brute"``).
    threshold:
        Binary-search subdivision threshold.
    policy_samples:
        Heterogeneous configurations sampled per workload for policy
        selection.
    counts, pressures:
        Matrix axes; default to the environment's full grid (or
        ``0..span`` when a span is given).
    seed:
        Root seed for the sampling steps.
    span:
        Deployment size (nodes spanned) the model is profiled for.
        Sensitivity curves and heterogeneity behaviour depend on the
        deployment shape, so the paper's Section 5 placements (each
        application on 4 of the 8 hosts) use a span-4 model while
        Sections 3-4 profile the full span.
    """
    try:
        profiler = MATRIX_PROFILERS[algorithm]
    except KeyError:
        raise ProfilingError(
            f"unknown profiling algorithm {algorithm!r}; "
            f"known: {', '.join(MATRIX_PROFILERS)}"
        ) from None
    pressures = list(pressures) if pressures is not None else default_pressures()
    if counts is not None:
        counts = list(counts)
    else:
        counts = default_counts(span if span is not None else runner.num_nodes)

    meter = BubbleScoreMeter(runner)
    profiles: Dict[str, InterferenceProfile] = {}
    selections: Dict[str, PolicySelectionResult] = {}
    outcomes: Dict[str, ProfilingOutcome] = {}
    scores: Dict[str, float] = {}

    for abbrev in workloads:
        with _obs.RECORDER.span(
            "profile.workload", workload=abbrev, algorithm=algorithm
        ) as wspan:
            oracle = MeasurementOracle(runner, abbrev, span=span)
            with _obs.RECORDER.span("profile.matrix", workload=abbrev):
                outcome = profiler(oracle, pressures, counts, threshold=threshold)
            with _obs.RECORDER.span("profile.policy", workload=abbrev):
                selection = select_policy(
                    runner,
                    abbrev,
                    outcome.matrix,
                    samples=policy_samples,
                    seed=stable_seed(seed, abbrev, "policy"),
                    span=span,
                    reps=policy_reps,
                )
            with _obs.RECORDER.span("profile.score", workload=abbrev):
                score = meter.score(abbrev)
            wspan.set(
                settings_measured=outcome.settings_measured,
                total_settings=outcome.total_settings,
                cost_percent=outcome.cost_percent,
                policy=selection.best.policy_name,
                bubble_score=score,
            )
        profiles[abbrev] = InterferenceProfile(
            workload=abbrev,
            matrix=outcome.matrix,
            policy_name=selection.best.policy_name,
            bubble_score=score,
        )
        outcomes[abbrev] = outcome
        selections[abbrev] = selection
        scores[abbrev] = score

    return ModelBuildReport(
        model=InterferenceModel(profiles),
        policy_selections=selections,
        profiling_outcomes=outcomes,
        bubble_scores=scores,
    )


def build_batch_profiles(
    runner: ClusterRunner,
    model: InterferenceModel,
    batch_workloads: Sequence[str],
    *,
    counts: Optional[Sequence[float]] = None,
    pressures: Optional[Sequence[float]] = None,
    threshold: float = DEFAULT_THRESHOLD,
    span: Optional[int] = None,
) -> None:
    """Add single-node batch co-runners to an existing model.

    Batch workloads (SPEC CPU2006) have no propagation structure — the
    placement algorithms still need their bubble scores and their own
    sensitivity (their runtime suffers under interference too).  Their
    matrices are profiled like distributed workloads'; since their
    instances are independent, the measured curves come out close to
    proportional.  Policy selection is skipped: ``INTERPOLATE``
    matches independent instances by construction.
    """
    pressures = list(pressures) if pressures is not None else default_pressures()
    if counts is not None:
        counts = list(counts)
    else:
        counts = default_counts(span if span is not None else runner.num_nodes)
    meter = BubbleScoreMeter(runner)
    for abbrev in batch_workloads:
        with _obs.RECORDER.span(
            "profile.workload", workload=abbrev,
            algorithm="binary-optimized", batch=True,
        ) as wspan:
            oracle = MeasurementOracle(runner, abbrev, span=span)
            with _obs.RECORDER.span("profile.matrix", workload=abbrev):
                outcome = binary_optimized(
                    oracle, pressures, counts, threshold=threshold
                )
            with _obs.RECORDER.span("profile.score", workload=abbrev):
                score = meter.score(abbrev)
            wspan.set(
                settings_measured=outcome.settings_measured,
                total_settings=outcome.total_settings,
                cost_percent=outcome.cost_percent,
                policy="INTERPOLATE",
                bubble_score=score,
            )
        model.add_profile(
            InterferenceProfile(
                workload=abbrev,
                matrix=outcome.matrix,
                policy_name="INTERPOLATE",
                bubble_score=score,
            )
        )


def build_network_profiles(
    runner: ClusterRunner,
    model: InterferenceModel,
    workloads: Sequence[str],
    *,
    counts: Optional[Sequence[float]] = None,
    pressures: Optional[Sequence[float]] = None,
    threshold: float = DEFAULT_THRESHOLD,
    span: Optional[int] = None,
) -> Dict[str, ProfilingOutcome]:
    """Add the NETWORK contention domain to already-profiled workloads.

    For each workload (which must already hold a compute profile in
    ``model``) this runs the same binary-optimized matrix campaign over
    *network-noise* settings — traffic-generator bubbles instead of
    cache thrashers — and meters the workload's network bubble score
    with the traffic probe.  The workload's profile is replaced in
    place with ``network_matrix``/``network_score`` filled in; its
    compute matrix, policy, and bubble score are untouched, so every
    compute-domain prediction stays bit-identical.

    No policy selection runs for the network domain: collectives are
    gated by the bottleneck link, so the NETWORK domain always maps a
    per-node link-pressure vector through the ALL-max policy
    (:data:`repro.core.model.NETWORK_POLICY`) regardless of the
    workload's compute-domain policy.

    Returns the per-workload profiling outcomes (for cost reporting).
    """
    pressures = list(pressures) if pressures is not None else default_pressures()
    if counts is not None:
        counts = list(counts)
    else:
        counts = default_counts(span if span is not None else runner.num_nodes)
    meter = BubbleScoreMeter(runner)
    outcomes: Dict[str, ProfilingOutcome] = {}
    for abbrev in workloads:
        base = model.profile(abbrev)  # raises if never compute-profiled
        with _obs.RECORDER.span(
            "profile.workload", workload=abbrev,
            algorithm="binary-optimized", domain="network",
        ) as wspan:
            oracle = MeasurementOracle(
                runner, abbrev, span=span, domain=ContentionDomain.NETWORK
            )
            with _obs.RECORDER.span(
                "profile.matrix", workload=abbrev, domain="network"
            ):
                outcome = binary_optimized(
                    oracle, pressures, counts, threshold=threshold
                )
            with _obs.RECORDER.span(
                "profile.score", workload=abbrev, domain="network"
            ):
                score = meter.score(abbrev, domain=ContentionDomain.NETWORK)
            wspan.set(
                settings_measured=outcome.settings_measured,
                total_settings=outcome.total_settings,
                cost_percent=outcome.cost_percent,
                policy=NETWORK_POLICY,
                bubble_score=score,
            )
        model.add_profile(
            dataclasses.replace(
                base, network_matrix=outcome.matrix, network_score=score
            )
        )
        outcomes[abbrev] = outcome
    return outcomes
