"""Bubble score measurement (Section 2.1, Table 4).

An application's *bubble score* is the interference it generates,
expressed on the bubble-pressure scale.  Following Mars et al., the
score is measured with the bubble program itself as the reporter: run a
probe bubble next to the target application and observe how much the
probe slows down; invert the probe's calibration curve (its slowdown
when co-run with bubbles of known pressure) to recover the pressure the
application must have been exerting.

For a distributed application a probe is placed on every participating
node and the per-node readings are averaged (Section 3.4); the master
node of Hadoop/Spark jobs reads lower, which the averaging deliberately
smears — a modelled simplification the paper acknowledges in
Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.apps.bubble import bubble_sensitivity
from repro.cluster.contention import ContentionDomain
from repro.errors import ModelError
from repro.obs import recorder as _obs
from repro.sim.execution import CoRunExecutor, DeployedInstance
from repro.sim.runner import ClusterRunner
from repro._util import stable_seed
from repro.apps.catalog import make_bubble
from repro.units import MAX_PRESSURE, NUM_PRESSURE_LEVELS


@dataclass(frozen=True)
class BubbleCalibration:
    """The probe bubble's slowdown at each known reference pressure.

    Built once per environment by co-running a probe bubble with
    reference bubbles at pressures 1..8 and recording the probe's
    slowdown; :meth:`pressure_for` inverts the curve by interpolation.
    """

    reference_pressures: Sequence[float]
    slowdowns: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.reference_pressures) != len(self.slowdowns):
            raise ModelError("calibration axes must have equal length")
        if len(self.reference_pressures) < 2:
            raise ModelError("calibration needs at least two reference points")
        if any(np.diff(self.reference_pressures) <= 0):
            raise ModelError("reference pressures must be strictly increasing")
        if any(np.diff(self.slowdowns) <= 0):
            raise ModelError("calibration slowdowns must be strictly increasing")

    def pressure_for(self, slowdown: float) -> float:
        """Invert the calibration: observed slowdown -> pressure."""
        if slowdown <= 1.0:
            return 0.0
        pressures = [0.0] + list(self.reference_pressures)
        slowdowns = [1.0] + list(self.slowdowns)
        return float(np.interp(slowdown, slowdowns, pressures))


def calibrate_probe(levels: Sequence[float] | None = None) -> BubbleCalibration:
    """Build the probe calibration from bubble-vs-bubble co-runs.

    The probe's response function is a property of the bubble binary,
    not of the cluster workloads, so the calibration can be computed
    directly from the probe's sensitivity at each reference level.
    """
    if levels is None:
        levels = [float(level) for level in range(1, NUM_PRESSURE_LEVELS + 1)]
    sensitivity = bubble_sensitivity()
    slowdowns = [sensitivity.slowdown(level) for level in levels]
    return BubbleCalibration(tuple(levels), tuple(slowdowns))


class BubbleScoreMeter:
    """Measures workloads' bubble scores on a cluster environment.

    Parameters
    ----------
    runner:
        Measurement environment (the private testbed or EC2).
    calibration:
        Probe calibration; built fresh when omitted.
    probe_level:
        Pressure the probe itself exerts while observing.  A gentle
        probe (level 1) perturbs the target minimally — the target's
        *generated* interference is what is being read, and it does not
        depend on the probe's own pressure.
    """

    def __init__(
        self,
        runner: ClusterRunner,
        *,
        calibration: BubbleCalibration | None = None,
        probe_level: float = 1.0,
    ) -> None:
        if not 0 < probe_level <= MAX_PRESSURE:
            raise ModelError("probe_level must be in (0, MAX_PRESSURE]")
        self.runner = runner
        self.calibration = calibration or calibrate_probe()
        self.probe_level = probe_level
        self._probe_sensitivity = bubble_sensitivity()

    def node_readings(
        self,
        abbrev: str,
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> Dict[int, float]:
        """Per-node pressure readings for one workload.

        Deploys the target across the cluster with one probe bubble per
        node; each probe reports its own slowdown, inverted through the
        calibration curve.  In the NETWORK domain the probe is the
        traffic-generator bubble and it reads the *link* pressure its
        uplink experiences; seeds and instance keys are distinct so
        network readings never collide with compute ones.
        """
        network = ContentionDomain.parse(domain) is ContentionDomain.NETWORK
        probe_prefix = "netprobe" if network else "probe"
        with _obs.RECORDER.span(
            "score.readings", workload=abbrev, probes=self.runner.num_nodes,
            **({"domain": "network"} if network else {}),
        ) as obs_span:
            target = self.runner.full_span_deployment(abbrev)
            probes: List[DeployedInstance] = []
            for node_id in range(self.runner.num_nodes):
                probes.append(
                    DeployedInstance(
                        instance_key=f"{probe_prefix}@n{node_id}",
                        workload=make_bubble(
                            self.probe_level,
                            domain=(
                                ContentionDomain.NETWORK
                                if network
                                else ContentionDomain.COMPUTE
                            ),
                        ),
                        units_to_nodes={0: node_id},
                    )
                )
            seed_kind = "netscore" if network else "score"
            seed = stable_seed(self.runner.base_seed, seed_kind, abbrev)
            results = CoRunExecutor(
                [target] + probes,
                seed=seed,
                noise=self.runner.noise,
                num_nodes=self.runner.num_nodes,
            ).run()
            readings: Dict[int, float] = {}
            for node_id in range(self.runner.num_nodes):
                probe_result = results[f"{probe_prefix}@n{node_id}"]
                # The probe sees the target *and* the other probes'
                # pressure is on other nodes, so its reading is the
                # target's contribution on this node (plus ambient noise on
                # EC2, which the paper also could not exclude).
                pressure_seen = (
                    probe_result.mean_link_pressure_seen
                    if network
                    else probe_result.mean_pressure_seen
                )
                observed_slowdown = self._probe_sensitivity.slowdown(
                    pressure_seen
                )
                readings[node_id] = self.calibration.pressure_for(observed_slowdown)
            obs_span.set_sim(results[abbrev].finish_time)
        return readings

    def score(
        self,
        abbrev: str,
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> float:
        """The workload's bubble score: the mean of per-node readings."""
        readings = self.node_readings(abbrev, domain=domain)
        return sum(readings.values()) / len(readings)

    def score_table(
        self,
        abbrevs: Sequence[str],
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> Dict[str, float]:
        """Bubble scores for many workloads (Table 4)."""
        return {abbrev: self.score(abbrev, domain=domain) for abbrev in abbrevs}
