"""Small internal helpers shared across subpackages."""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temporary file is fsync'd before the rename, so a crash at any
    point leaves either the complete old contents or the complete new
    contents — never a torn file.  Used by every artifact writer whose
    output something else (CI byte-comparison, crash recovery) re-reads.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def make_rng(seed: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (non-deterministic), an integer seed, an existing
    generator (returned unchanged), or a :class:`numpy.random.SeedSequence`.
    Centralizing this keeps every stochastic component of the library
    seedable through one conventional entry point.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, *labels: object) -> np.random.Generator:
    """Derive a reproducible child generator from ``rng`` and labels.

    The child stream is a deterministic function of the parent stream
    state and the labels — and only of those: the label mix uses
    :func:`stable_seed` rather than :func:`hash`, so identical runs in
    different processes (hash randomization) observe identical noise.
    """
    seed = int(rng.integers(0, 2**32)) ^ stable_seed(*labels)
    return np.random.default_rng(seed)


def stable_seed(*labels: object) -> int:
    """Map a tuple of labels to a stable 32-bit seed.

    Unlike :func:`hash`, the result is stable across interpreter runs
    (``PYTHONHASHSEED`` does not affect it), which matters because the
    measurement oracle keys simulation seeds off workload names.
    """
    acc = 2166136261
    for label in labels:
        for byte in str(label).encode("utf-8"):
            acc ^= byte
            acc = (acc * 16777619) % (2**32)
        acc ^= 0xABCD
        acc = (acc * 16777619) % (2**32)
    return acc


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable of floats."""
    items = list(values)
    if not items:
        raise ValueError("mean() of empty sequence")
    return float(sum(items)) / len(items)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean.

    Raises
    ------
    ValueError
        If lengths differ, the sequences are empty, or weights sum to 0.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted_mean() of empty sequence")
    total_weight = float(sum(weights))
    if total_weight <= 0.0:
        raise ValueError("weights must sum to a positive value")
    return float(sum(v * w for v, w in zip(values, weights))) / total_weight


def percent_error(predicted: float, actual: float) -> float:
    """Absolute percentage error of ``predicted`` against ``actual``."""
    if actual == 0.0:
        raise ValueError("actual value must be non-zero for percent error")
    return abs(predicted - actual) / abs(actual) * 100.0
