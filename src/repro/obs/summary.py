"""Trace loading and the ``repro trace summarize`` reporter.

:func:`load_trace` accepts either export format
(:mod:`repro.obs.sinks`) and normalizes it back to the canonical
payload dict.  :func:`summarize_text` renders the operator report:
span counts with logical/simulated-time attribution, counter and
histogram totals, and — when the trace covers a profiling run — the
Table 3 probe-count accounting reconstructed *from the trace alone*
(by counting per-probe spans, not by trusting any summary field).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.errors import ReproError


def _payload_from_jsonl(lines: List[str]) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "version": None,
        "spans": [],
        "counters": {},
        "gauges": {},
        "histograms": {},
        "logs": [],
    }
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("type", None)
        if kind == "trace":
            payload["version"] = record.get("version")
        elif kind == "span":
            payload["spans"].append(record)
        elif kind == "counter":
            payload["counters"][record["name"]] = record["value"]
        elif kind == "gauge":
            payload["gauges"][record["name"]] = record["value"]
        elif kind == "histogram":
            name = record.pop("name")
            payload["histograms"][name] = record
        elif kind == "log":
            payload["logs"].append(record)
        else:
            raise ReproError(f"unknown trace record type {kind!r}")
    return payload


def _payload_from_chrome(document: Dict[str, object]) -> Dict[str, object]:
    other = document.get("otherData", {})
    spans = []
    for event in document.get("traceEvents", []):
        args = dict(event.get("args", {}))
        row = {
            "id": event.get("id"),
            "parent": None,  # the event form flattens the tree
            "name": event["name"],
            "seq0": event["ts"],
            "seq1": event["ts"] + event.get("dur", 1),
            "attrs": args,
        }
        if "sim" in args:
            row["sim"] = args.pop("sim")
        spans.append(row)
    return {
        "version": other.get("version"),
        "spans": spans,
        "counters": dict(other.get("counters", {})),
        "gauges": dict(other.get("gauges", {})),
        "histograms": dict(other.get("histograms", {})),
        "logs": list(other.get("logs", [])),
    }


def load_trace(path: str) -> Dict[str, object]:
    """Load a trace file (JSONL or Chrome-trace) into payload form.

    Raises
    ------
    ReproError
        If the file is not a recognizable trace export.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path!r}: {exc}") from None
    stripped = text.lstrip()
    if not stripped:
        raise ReproError(f"trace file {path!r} is empty")
    if stripped.startswith("{") and '"traceEvents"' in stripped:
        # A Chrome export is one JSON document; a JSONL export is one
        # record per line (and only a multi-line one could mention
        # traceEvents inside an attribute, in which case the full-text
        # parse below fails and we fall through to the JSONL reader).
        # The substring probe must scan the whole text — the counters
        # block preceding traceEvents can be arbitrarily large.
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and "traceEvents" in document:
            try:
                return _payload_from_chrome(document)
            except (KeyError, TypeError) as exc:
                raise ReproError(
                    f"malformed Chrome trace {path!r}: {exc}"
                ) from None
    try:
        return _payload_from_jsonl(text.splitlines())
    except (json.JSONDecodeError, KeyError) as exc:
        raise ReproError(f"malformed JSONL trace {path!r}: {exc}") from None


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def span_rollup(payload: Dict[str, object]) -> List[Tuple[str, int, int, float]]:
    """Per-span-name rollup: (name, count, total steps, total sim time)."""
    totals: Dict[str, List[float]] = {}
    for span in payload["spans"]:
        entry = totals.setdefault(span["name"], [0, 0, 0.0])
        entry[0] += 1
        seq1 = span.get("seq1") or span.get("seq0", 0)
        entry[1] += max(seq1 - span.get("seq0", 0), 0)
        entry[2] += float(span.get("sim") or 0.0)
    return [
        (name, int(count), int(steps), sim)
        for name, (count, steps, sim) in sorted(totals.items())
    ]


def cell_rollup(payload: Dict[str, object]) -> List[Tuple[int, int, int, int, float]]:
    """Per-cell attribution for sharded days.

    Groups spans carrying a ``cell`` attribute (the scale layer tags
    every span recorded inside a cell's epoch body) into
    ``(cell, epochs, spans, steps, sim_time)`` rows.  Empty for flat
    traces — no span carries the attribute, and the summary section is
    suppressed.
    """
    totals: Dict[int, List[float]] = {}
    for span in payload["spans"]:
        cell = span.get("attrs", {}).get("cell")
        if cell is None:
            continue
        entry = totals.setdefault(int(cell), [0, 0, 0, 0.0])
        if span["name"] == "service.epoch":
            entry[0] += 1
        entry[1] += 1
        seq1 = span.get("seq1") or span.get("seq0", 0)
        entry[2] += max(seq1 - span.get("seq0", 0), 0)
        entry[3] += float(span.get("sim") or 0.0)
    return [
        (cell, int(epochs), int(spans), int(steps), sim)
        for cell, (epochs, spans, steps, sim) in sorted(totals.items())
    ]


def probe_accounting(
    payload: Dict[str, object],
) -> List[Tuple[str, str, int, int, float]]:
    """Table 3 from the trace: per-workload probe counts and cost.

    The probe count is derived by *counting* ``profile.probe`` spans
    (one per distinct interference setting actually measured); the
    grid size comes from the enclosing ``profile.workload`` span's
    ``total_settings`` attribute.  Rows are
    ``(workload, algorithm, probes, total_settings, cost_percent)``.
    """
    probes: Dict[str, int] = {}
    for span in payload["spans"]:
        if span["name"] != "profile.probe":
            continue
        workload = span.get("attrs", {}).get("workload")
        if workload is not None:
            probes[workload] = probes.get(workload, 0) + 1
    rows = []
    for span in payload["spans"]:
        if span["name"] != "profile.workload":
            continue
        attrs = span.get("attrs", {})
        workload = attrs.get("workload")
        total = attrs.get("total_settings")
        if workload is None or not total:
            continue
        measured = probes.get(workload, 0)
        rows.append(
            (
                str(workload),
                str(attrs.get("algorithm", "?")),
                measured,
                int(total),
                100.0 * measured / int(total),
            )
        )
    return rows


def fault_accounting(payload: Dict[str, object]) -> List[Tuple[str, object]]:
    """Fault-injection totals from the trace: ``fault.*`` / ``retry.*``.

    Empty for clean runs — the fault path records nothing unless a
    plan is active, so the summary section only appears when the trace
    actually covers an injected run.
    """
    counters = payload.get("counters", {})
    return sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith(("fault.", "retry."))
    )


def batch_accounting(payload: Dict[str, object]) -> List[Tuple[str, object]]:
    """Vectorized-prediction totals: the ``model.predict.batch.*`` counters.

    ``...calls`` counts batch dispatches, ``...requests`` the
    predictions they carried; the derived mean batch size is how an
    operator checks the hot loop actually amortizes (a mean near 1
    means the batch path is pure overhead).  Empty when the run never
    touched the batch kernel.
    """
    counters = payload.get("counters", {})
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith("model.predict.batch.")
    )
    calls = counters.get("model.predict.batch.calls", 0)
    requests = counters.get("model.predict.batch.requests", 0)
    if calls:
        rows.append(("mean batch size", round(requests / calls, 1)))
    return rows


def daemon_accounting(payload: Dict[str, object]) -> List[Tuple[str, object]]:
    """Daemon totals: ``daemon.*`` counters plus queue/lease gauges.

    Counters cover the whole claim/commit protocol (claims, commits,
    reaps, requeues, worker crashes, fenced stale commits); the gauges
    are the last-observed spool queue depth and active lease count.
    Empty when the trace does not cover a daemon run, so flat-serve
    summaries are unchanged.
    """
    counters = payload.get("counters", {})
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith("daemon.")
    )
    gauges = payload.get("gauges", {})
    rows.extend(sorted(
        (f"{name} (gauge)", value)
        for name, value in gauges.items()
        if name.startswith("daemon.")
    ))
    return rows


def provider_accounting(payload: Dict[str, object]) -> List[Tuple[str, object]]:
    """Elastic-capacity totals: ``provider.*`` counters and gauges.

    Counters cover autoscale decisions, reclaimed spot nodes, and
    requeued jobs; the gauges are the last-observed pool size and spot
    fraction.  Empty when the trace covers no elastic-provider run —
    fixed-pool (and ``--provider static``) summaries are unchanged.
    """
    counters = payload.get("counters", {})
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith("provider.")
    )
    gauges = payload.get("gauges", {})
    rows.extend(sorted(
        (f"{name} (gauge)", value)
        for name, value in gauges.items()
        if name.startswith("provider.")
    ))
    return rows


def summarize_text(payload: Dict[str, object]) -> str:
    """Human-readable trace summary (the ``repro trace summarize`` body)."""
    # Imported here: analysis -> obs would otherwise be circular for
    # callers that only record.
    from repro.analysis.reporting import format_table

    sections: List[str] = []
    rollup = span_rollup(payload)
    if rollup:
        sections.append("Spans:\n" + format_table(
            ["Span", "Count", "Steps", "Sim time"],
            [(name, count, steps, f"{sim:.3f}") for name, count, steps, sim in rollup],
        ))
    counters = payload.get("counters", {})
    if counters:
        sections.append("Counters:\n" + format_table(
            ["Counter", "Value"], sorted(counters.items()),
        ))
    histograms = payload.get("histograms", {})
    if histograms:
        sections.append("Histograms:\n" + format_table(
            ["Histogram", "Count", "Sum", "Min", "Max"],
            [
                (name, s.get("count"), s.get("sum"), s.get("min"), s.get("max"))
                for name, s in sorted(histograms.items())
            ],
        ))
    cells = cell_rollup(payload)
    if cells:
        sections.append(
            "Per-cell attribution (spans tagged by the scale layer):\n"
            + format_table(
                ["Cell", "Epochs", "Spans", "Steps", "Sim time"],
                [
                    (cell, epochs, spans, steps, f"{sim:.3f}")
                    for cell, epochs, spans, steps, sim in cells
                ],
            )
        )
    table3 = probe_accounting(payload)
    if table3:
        sections.append(
            "Profiling cost (Table 3, derived from probe spans):\n"
            + format_table(
                ["Workload", "Algorithm", "Probes", "Grid", "Cost (%)"],
                [
                    (workload, algorithm, measured, total, f"{cost:.1f}")
                    for workload, algorithm, measured, total, cost in table3
                ],
            )
        )
    faults = fault_accounting(payload)
    if faults:
        sections.append(
            "Fault injection (fault.* / retry.* totals):\n"
            + format_table(
                ["Event", "Total"],
                [
                    (name, value if isinstance(value, int) else f"{value:.3f}")
                    for name, value in faults
                ],
            )
        )
    daemon = daemon_accounting(payload)
    if daemon:
        sections.append(
            "Daemon (daemon.* counters and gauges):\n"
            + format_table(
                ["Metric", "Total"],
                [
                    (name, value if isinstance(value, int) else f"{value:.1f}")
                    for name, value in daemon
                ],
            )
        )
    provider = provider_accounting(payload)
    if provider:
        sections.append(
            "Elastic capacity (provider.* counters and gauges):\n"
            + format_table(
                ["Metric", "Total"],
                [
                    (name, value if isinstance(value, int) else f"{value:.3f}")
                    for name, value in provider
                ],
            )
        )
    batches = batch_accounting(payload)
    if batches:
        sections.append(
            "Batch prediction (model.predict.batch.* totals):\n"
            + format_table(
                ["Metric", "Total"],
                [
                    (name, value if isinstance(value, int) else f"{value:.1f}")
                    for name, value in batches
                ],
            )
        )
    if not sections:
        return "(empty trace)"
    return "\n\n".join(sections)
