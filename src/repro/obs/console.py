"""The output chokepoint: every console line flows through here.

Library and CLI code never call ``print`` directly; they call
:func:`emit` (the result channel, stdout) or :func:`info` (the
progress/diagnostic channel, stderr).  Both mirror the line into the
active recorder as a ``log`` record, so a ``--trace`` run carries its
own console transcript — and a test can assert on what a component
*said* without capturing streams.
"""

from __future__ import annotations

import sys

from repro.obs import recorder as _obs


def emit(message: str = "") -> None:
    """Write a result line to stdout (and the active recorder)."""
    _obs.RECORDER.log(message, stream="out")
    print(message, file=sys.stdout)


def info(message: str) -> None:
    """Write a progress/diagnostic line to stderr (and the recorder)."""
    _obs.RECORDER.log(message, stream="err")
    print(message, file=sys.stderr)
