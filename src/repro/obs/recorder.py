"""The recorder: nested spans, counters, gauges, histograms, logs.

One module-level :data:`RECORDER` is the whole dispatch mechanism.  It
is a :class:`NullRecorder` by default, whose every method is a no-op,
so instrumented code costs one module-attribute lookup plus one no-op
call when tracing is disabled — there is no ``if tracing:`` branching
at call sites.  Installing a :class:`TraceRecorder` (via
:func:`install` or the :func:`recording` context manager) turns the
same call sites into structured telemetry.

Hot call sites import the module, not the name::

    from repro.obs import recorder as _obs

    _obs.RECORDER.count("measure.cache_hit")
    with _obs.RECORDER.span("measure.setting", workload=abbrev) as span:
        ...
        span.set_sim(elapsed)

Determinism: a :class:`TraceRecorder` stamps every span with a logical
*step* sequence number (start and end).  Exports built from steps and
simulated-time attribution are byte-stable across runs of a seeded
workload; wall-clock durations are recorded alongside but excluded
from deterministic exports (see :mod:`repro.obs.sinks`).

Process model: the recorder is per-process state.  Work fanned out to
worker processes (:mod:`repro.parallel`) records into the workers'
own (null) recorders; only parent-side spans and counters appear in
the trace.  Serial runs — the default — capture everything.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class NullSpan:
    """Reusable no-op context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> "NullSpan":
        return self

    def set_sim(self, _elapsed: float) -> "NullSpan":
        return self


#: The singleton no-op span; every disabled ``span()`` call returns it.
NULL_SPAN = NullSpan()


class NullRecorder:
    """Tracing disabled: every operation is a no-op.

    Stateless and allocation-free — ``span()`` hands back the shared
    :data:`NULL_SPAN` instead of building anything.
    """

    __slots__ = ()

    enabled = False

    def span(self, _name: str, **_attrs) -> NullSpan:
        return NULL_SPAN

    def count(self, _name: str, _value: float = 1) -> None:
        pass

    def gauge(self, _name: str, _value: float) -> None:
        pass

    def observe(self, _name: str, _value: float) -> None:
        pass

    def log(self, _message: str, *, stream: str = "out") -> None:
        pass


#: Shared disabled recorder (also what :func:`install` restores to).
NULL_RECORDER = NullRecorder()


#: Ambient span attributes: merged into every span started while an
#: :func:`ambient` block is active.  The scale layer uses this to stamp
#: ``cell=<id>`` onto every span a cell's epoch produces
#: (``service.epoch``, ``anneal.search``, ...) without threading a cell
#: id through every instrumented call site.  Explicit ``span()``
#: attributes win on key collisions.
_AMBIENT: Dict[str, object] = {}


@contextmanager
def ambient(**attrs: object) -> Iterator[None]:
    """Attach ``attrs`` to every span started inside the block.

    Nests: inner blocks shadow outer values for the duration of the
    inner block only.  Costs nothing when tracing is disabled beyond
    the dict update (the :class:`NullRecorder` never reads it).
    """
    previous = {key: _AMBIENT[key] for key in attrs if key in _AMBIENT}
    _AMBIENT.update(attrs)
    try:
        yield
    finally:
        for key in attrs:
            if key in previous:
                _AMBIENT[key] = previous[key]
            else:
                _AMBIENT.pop(key, None)


@dataclass
class Span:
    """One recorded span.

    ``seq_start``/``seq_end`` are logical step numbers (deterministic
    under a fixed seed); ``wall_ns`` is the measured wall-clock
    duration (excluded from deterministic exports); ``sim_elapsed``
    is optional simulated-time attribution set by the call site.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    seq_start: int
    seq_end: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    wall_ns: Optional[int] = None
    sim_elapsed: Optional[float] = None


class ActiveSpan:
    """Context-manager handle over a :class:`Span` being recorded."""

    __slots__ = ("_recorder", "record", "_t0")

    def __init__(self, recorder: "TraceRecorder", record: Span) -> None:
        self._recorder = recorder
        self.record = record
        self._t0 = 0

    def __enter__(self) -> "ActiveSpan":
        self._recorder._open(self.record)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *_exc) -> bool:
        self.record.wall_ns = time.perf_counter_ns() - self._t0
        self._recorder._close(self.record)
        return False

    def set(self, **attrs) -> "ActiveSpan":
        """Attach (or overwrite) attributes on the span."""
        self.record.attrs.update(attrs)
        return self

    def set_sim(self, elapsed: float) -> "ActiveSpan":
        """Attribute ``elapsed`` simulated time units to this span."""
        self.record.sim_elapsed = float(elapsed)
        return self


class TraceRecorder:
    """Tracing enabled: collects spans, counters, gauges, histograms.

    Spans are stored in start order; nesting is tracked with an
    explicit stack, so ``parent_id`` links reconstruct the tree.
    The recorder itself is the in-memory sink — exports render from
    it (:mod:`repro.obs.sinks`) without further bookkeeping.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.logs: List[Dict[str, object]] = []
        self._stack: List[int] = []
        self._seq = 0

    # -- span plumbing -------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def span(self, name: str, **attrs) -> ActiveSpan:
        if _AMBIENT:
            merged = dict(_AMBIENT)
            merged.update(attrs)
            attrs = merged
        record = Span(
            span_id=len(self.spans) + 1,
            parent_id=None,
            name=name,
            seq_start=0,
            attrs=dict(attrs),
        )
        return ActiveSpan(self, record)

    def _open(self, record: Span) -> None:
        record.span_id = len(self.spans) + 1
        record.parent_id = self._stack[-1] if self._stack else None
        record.seq_start = self._next_seq()
        self.spans.append(record)
        self._stack.append(record.span_id)

    def _close(self, record: Span) -> None:
        record.seq_end = self._next_seq()
        if self._stack and self._stack[-1] == record.span_id:
            self._stack.pop()
        elif record.span_id in self._stack:  # tolerate out-of-order exits
            self._stack.remove(record.span_id)

    # -- metrics -------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histograms.setdefault(name, []).append(float(value))

    def log(self, message: str, *, stream: str = "out") -> None:
        """Record one console line (see :mod:`repro.obs.console`)."""
        self.logs.append(
            {"seq": self._next_seq(), "stream": stream, "message": message}
        )

    # -- introspection helpers (tests, summaries) ----------------------
    def spans_named(self, name: str) -> List[Span]:
        """All spans with the given name, in start order."""
        return [span for span in self.spans if span.name == name]

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never touched)."""
        return self.counters.get(name, 0)


#: The active recorder.  Instrumented code reads this through the
#: module (``_obs.RECORDER``) so installs take effect immediately.
RECORDER = NULL_RECORDER


def current():
    """The currently installed recorder."""
    return RECORDER


def install(recorder) -> object:
    """Install ``recorder`` as the process-wide recorder.

    Returns the previously installed recorder so callers can restore
    it (prefer the :func:`recording` context manager).
    """
    global RECORDER
    previous = RECORDER
    RECORDER = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(recorder: Optional[TraceRecorder] = None) -> Iterator[TraceRecorder]:
    """Run a block with tracing enabled; restore the previous recorder.

    Yields the (possibly freshly created) :class:`TraceRecorder`::

        with recording() as rec:
            build_model(runner, ["M.lmps"])
        print(rec.counter("measure.simulated"))
    """
    active = recorder if recorder is not None else TraceRecorder()
    previous = install(active)
    try:
        yield active
    finally:
        install(previous)
