"""Structured observability: spans, metrics, and trace export.

The subsystem has three parts:

* :mod:`repro.obs.recorder` — the dispatch core: a module-level
  :data:`~repro.obs.recorder.RECORDER` that is a no-op
  :class:`NullRecorder` until a :class:`TraceRecorder` is installed
  (:func:`install` / :func:`recording`).  Instrumented call sites pay
  one attribute lookup plus a no-op call when tracing is disabled.
* :mod:`repro.obs.sinks` — byte-stable exports: a JSONL stream
  (``*.jsonl``) and a Chrome-trace/Perfetto ``trace.json`` document.
* :mod:`repro.obs.summary` — loading either format back and the
  ``repro trace summarize`` report (including Table 3 probe-count
  accounting reconstructed from per-probe spans).

Typical library use::

    from repro.obs import recording, write_trace

    with recording() as rec:
        report = build_model(runner, ["M.lmps"])
    write_trace(rec, "trace.json")

On the CLI every verb accepts ``--trace out.json`` (or ``out.jsonl``)
and ``repro trace summarize out.json`` renders the report.
"""

from repro.obs.recorder import (
    NULL_RECORDER,
    NULL_SPAN,
    ActiveSpan,
    NullRecorder,
    NullSpan,
    Span,
    TraceRecorder,
    ambient,
    current,
    install,
    recording,
)
from repro.obs.sinks import (
    TRACE_VERSION,
    render_trace,
    to_chrome_trace,
    to_jsonl,
    to_payload,
    write_trace,
)
from repro.obs.summary import (
    cell_rollup,
    load_trace,
    probe_accounting,
    span_rollup,
    summarize_text,
)

__all__ = [
    "ActiveSpan",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NullRecorder",
    "NullSpan",
    "Span",
    "TRACE_VERSION",
    "TraceRecorder",
    "ambient",
    "cell_rollup",
    "current",
    "install",
    "load_trace",
    "probe_accounting",
    "recording",
    "render_trace",
    "span_rollup",
    "summarize_text",
    "to_chrome_trace",
    "to_jsonl",
    "to_payload",
    "write_trace",
]
