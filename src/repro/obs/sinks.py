"""Trace export: JSONL stream and Chrome-trace/Perfetto ``trace.json``.

Both formats render from a :class:`~repro.obs.recorder.TraceRecorder`
and are **byte-stable** in their default deterministic mode: span
timestamps are logical step numbers, simulated-time attribution is
rounded to six decimals (like the service event log), keys are sorted,
and wall-clock durations are omitted.  Two runs of the same seeded
workload therefore produce identical bytes, so CI can ``diff`` traces
the same way it diffs service snapshots.

Pass ``deterministic=False`` to include wall-clock microseconds (for
human performance work in Perfetto); such traces are not diffable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.recorder import Span, TraceRecorder

#: Trace payload schema version (bump on incompatible layout changes).
TRACE_VERSION = 1


def _clean(value: object) -> object:
    """Round floats (recursively) so serialization is byte-stable."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    return value


def _span_row(span: Span, *, deterministic: bool) -> Dict[str, object]:
    row: Dict[str, object] = {
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "seq0": span.seq_start,
        "seq1": span.seq_end,
        "attrs": _clean(span.attrs),
    }
    if span.sim_elapsed is not None:
        row["sim"] = round(span.sim_elapsed, 6)
    if not deterministic and span.wall_ns is not None:
        row["wall_us"] = span.wall_ns // 1000
    return row


def _histogram_summary(values: List[float]) -> Dict[str, object]:
    return {
        "count": len(values),
        "sum": round(sum(values), 6),
        "min": round(min(values), 6),
        "max": round(max(values), 6),
    }


def to_payload(
    recorder: TraceRecorder, *, deterministic: bool = True
) -> Dict[str, object]:
    """The canonical dict form of a recorded trace.

    This is the single source both exporters serialize and the form
    :func:`repro.obs.summary.load_trace` normalizes back to.
    """
    return {
        "version": TRACE_VERSION,
        "spans": [
            _span_row(span, deterministic=deterministic)
            for span in recorder.spans
        ],
        "counters": {
            name: _clean(value)
            for name, value in sorted(recorder.counters.items())
        },
        "gauges": {
            name: _clean(value)
            for name, value in sorted(recorder.gauges.items())
        },
        "histograms": {
            name: _histogram_summary(values)
            for name, values in sorted(recorder.histograms.items())
        },
        "logs": [dict(entry) for entry in recorder.logs],
    }


def to_jsonl(recorder: TraceRecorder, *, deterministic: bool = True) -> str:
    """The trace as JSON lines (one record per line, type-tagged)."""
    payload = to_payload(recorder, deterministic=deterministic)
    lines = [
        json.dumps(
            {"type": "trace", "version": payload["version"]}, sort_keys=True
        )
    ]
    for span in payload["spans"]:
        lines.append(json.dumps({"type": "span", **span}, sort_keys=True))
    for section in ("counters", "gauges"):
        for name, value in payload[section].items():
            lines.append(
                json.dumps(
                    {"type": section[:-1], "name": name, "value": value},
                    sort_keys=True,
                )
            )
    for name, summary in payload["histograms"].items():
        lines.append(
            json.dumps(
                {"type": "histogram", "name": name, **summary}, sort_keys=True
            )
        )
    for entry in payload["logs"]:
        lines.append(json.dumps({"type": "log", **entry}, sort_keys=True))
    return "\n".join(lines) + "\n"


def to_chrome_trace(
    recorder: TraceRecorder, *, deterministic: bool = True
) -> Dict[str, object]:
    """The trace in Chrome-trace (``chrome://tracing`` / Perfetto) form.

    Spans become complete (``ph: "X"``) events.  In deterministic mode
    timestamps are logical steps; otherwise wall microseconds.
    Counters, gauges, and histogram summaries travel in ``otherData``
    (Perfetto preserves it; diff tooling reads it).
    """
    events = []
    for span in recorder.spans:
        args: Dict[str, object] = dict(_clean(span.attrs))
        if span.sim_elapsed is not None:
            args["sim"] = round(span.sim_elapsed, 6)
        if deterministic:
            ts = span.seq_start
            dur = max((span.seq_end or span.seq_start) - span.seq_start, 1)
        else:
            ts = span.seq_start  # steps still order concurrent spans
            dur = (span.wall_ns or 0) // 1000
            args["wall_us"] = dur
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": ts,
                "dur": dur,
                "id": span.span_id,
                "args": args,
            }
        )
    payload = to_payload(recorder, deterministic=deterministic)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "version": payload["version"],
            "counters": payload["counters"],
            "gauges": payload["gauges"],
            "histograms": payload["histograms"],
            "logs": payload["logs"],
        },
    }


def render_trace(
    recorder: TraceRecorder, path: str, *, deterministic: bool = True
) -> str:
    """The serialized trace for ``path`` (format chosen by suffix).

    ``*.jsonl`` renders the JSONL stream; anything else the
    Chrome-trace JSON document.
    """
    if path.endswith(".jsonl"):
        return to_jsonl(recorder, deterministic=deterministic)
    return (
        json.dumps(
            to_chrome_trace(recorder, deterministic=deterministic),
            sort_keys=True,
            indent=2,
        )
        + "\n"
    )


def write_trace(
    recorder: TraceRecorder,
    path: str,
    *,
    deterministic: bool = True,
) -> None:
    """Write the trace to ``path`` (see :func:`render_trace`)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_trace(recorder, path, deterministic=deterministic))
