"""Deterministic process fan-out for measurements and searches.

Every measurement in this reproduction derives a stable seed from its
own setting (:func:`repro._util.stable_seed`), so a batch of
measurements is embarrassingly parallel: the results are identical
whether the batch runs in one process or many.  The same holds for
annealing restarts once each restart owns an independent random stream.
This module provides the one fan-out primitive both layers use.

Workers are forked (where the platform allows) so they inherit the
parent's loaded modules and caches cheaply; on platforms without
``fork`` the pool falls back to ``spawn``.  Anything that cannot be
pickled silently degrades to the serial path — parallelism here is an
optimization, never a semantic switch.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.obs import recorder as _obs

T = TypeVar("T")
R = TypeVar("R")

#: Placeholder for an item whose worker died before returning a result.
_PENDING = object()

#: Environment variable overriding the default worker count.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_max_workers() -> int:
    """Worker count used when a caller asks for "parallel" without a number.

    Reads :data:`MAX_WORKERS_ENV` if set, otherwise the CPU count.
    """
    override = os.environ.get(MAX_WORKERS_ENV)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


def resolve_workers(max_workers: Optional[int]) -> int:
    """Normalize a ``max_workers`` argument to an effective count.

    ``None``, 0 and 1 all mean "serial"; negative values mean "use the
    default" (CPU count or :data:`MAX_WORKERS_ENV`).
    """
    if max_workers is None:
        return 1
    if max_workers < 0:
        return default_max_workers()
    return max(1, max_workers)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def fan_out(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    max_workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
) -> List[R]:
    """Order-preserving map over ``items``, optionally across processes.

    The serial path is taken when ``max_workers`` resolves to 1, the
    batch has fewer than two items, or the function/items cannot be
    pickled.  When the serial path is taken and an ``initializer`` was
    supplied, it runs once in-process first so ``fn`` sees the same
    worker state either way.

    A worker process dying mid-batch (``BrokenProcessPool``) does not
    abort the batch: results already returned are kept, and every
    unfinished item is re-run serially in the parent (after running the
    initializer in-process), so the output is identical to an
    undisturbed run for deterministic ``fn``.  The recovery is counted
    as ``fault.pool_failure`` / ``retry.pool_serial_items``.

    Results are returned in input order; the output is bit-identical to
    ``[fn(item) for item in items]`` for deterministic ``fn``.
    """
    work = list(items)
    workers = min(resolve_workers(max_workers), len(work))
    if workers <= 1 or not _picklable(fn, work, initargs):
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]
    results: List = [_PENDING] * len(work)
    broken = False
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=initializer,
        initargs=tuple(initargs),
    ) as pool:
        futures = [pool.submit(fn, item) for item in work]
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                # This item's worker died (or the pool was already
                # broken when its turn came).  Keep collecting: futures
                # that completed before the break still hold results.
                broken = True
    if broken:
        unfinished = [i for i, value in enumerate(results) if value is _PENDING]
        _obs.RECORDER.count("fault.pool_failure")
        _obs.RECORDER.count("retry.pool_serial_items", len(unfinished))
        if initializer is not None:
            initializer(*initargs)
        for index in unfinished:
            results[index] = fn(work[index])
    return results
