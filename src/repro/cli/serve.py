"""``repro serve`` — the online consolidation service over a traffic day.

Crash safety: with ``--checkpoint`` the service writes an atomic
:class:`~repro.service.checkpoint.ServiceCheckpoint` after every epoch,
and (when ``--event-log`` is also given) persists each event to disk
with an fsync before moving on.  A killed day is then continued with
``--resume``: the checkpoint restores the last epoch boundary, the
event log is recovered (a torn final line from the crash is dropped),
and the remaining epochs re-run — producing an event log and metrics
snapshot byte-identical to a day that was never interrupted.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Mapping

from repro._util import atomic_write_text
from repro.analysis.reporting import render_event_counts, render_service_snapshot
from repro.apps.catalog import BATCH_WORKLOADS, NETWORK_WORKLOADS
from repro.cli._parents import wants_network
from repro.core.builder import (
    build_batch_profiles,
    build_model,
    build_network_profiles,
)
from repro.obs import console
from repro.service import (
    ConsolidationService,
    EventLog,
    ServiceCheckpoint,
    ServiceConfig,
    StreamConfig,
    WorkloadStream,
)
from repro.sim.runner import ClusterRunner

#: Default application mix a ``repro serve`` traffic day draws from.
DEFAULT_SERVE_MIX = ("M.lmps", "M.milc", "H.KM", "S.WC")


def provider_setup(args: argparse.Namespace, default_nodes: int):
    """Resolve ``--provider``/``--churn`` into ``(factory, runner_nodes)``.

    ``factory`` is a zero-argument callable building a *fresh* provider
    (``None`` when no ``--provider`` was given — the fixed pool), and
    ``runner_nodes`` is the node count the runner must be built at
    (``None`` to keep the default spec).  Shared by ``repro serve`` and
    ``repro daemon`` so the pool spells identically in both; the daemon
    hands the factory to its :class:`~repro.daemon.ServiceBlueprint`.
    """
    from repro.errors import ConfigurationError

    name = getattr(args, "provider", None)
    churn_path = getattr(args, "churn", None)
    if churn_path and name != "elastic":
        raise ConfigurationError("--churn requires --provider elastic")
    if name is None:
        return None, None
    from repro.providers import (
        AutoscalerConfig,
        ElasticProvider,
        StaticProvider,
        make_provider,
    )

    if name == "static":
        def factory():
            return StaticProvider(default_nodes)
        return factory, None
    if name == "elastic":
        from repro.faults import FaultPlan

        initial = args.initial_nodes or default_nodes
        ceiling = args.max_nodes or initial + 4
        churn = FaultPlan.load(churn_path) if churn_path else None
        spot_fraction = args.spot_fraction

        def factory():
            return ElasticProvider(
                ceiling,
                initial_nodes=initial,
                spot_fraction=spot_fraction,
                churn=churn,
                autoscaler=AutoscalerConfig(),
            )
        return factory, ceiling
    # Any other registered backend (e.g. "ec2") builds with its own
    # defaults; the runner is sized to its ceiling.
    probe = make_provider(name)

    def factory():
        return make_provider(name)
    return factory, probe.max_nodes


def _serve_expectation(service: ConsolidationService) -> dict:
    """The deterministic outcome summary ``--expect`` compares against."""
    return {
        "counters": service.log.counts(),
        "final": service.snapshots[-1].to_dict(),
    }


def _check_expectation(expected: dict, actual: dict) -> int:
    """Compare a served day against a checked-in expectation.

    QoS-violation regressions fail hard; any other counter drift is
    reported (it means the deterministic day changed and the
    expectation file needs a refresh) but does not fail the run.
    """
    expected_violations = expected["final"]["qos_violations_total"]
    actual_violations = actual["final"]["qos_violations_total"]
    for key in sorted(set(actual["counters"]) | set(expected["counters"])):
        want = expected["counters"].get(key, 0)
        got = actual["counters"].get(key, 0)
        if want != got:
            console.info(
                f"warning: event count {key!r} drifted: "
                f"expected {want}, got {got}"
            )
    if actual_violations > expected_violations:
        console.info(
            f"error: QoS-violation regression: expected at most "
            f"{expected_violations}, got {actual_violations}"
        )
        return 1
    console.emit(
        f"expectation check passed: {actual_violations} QoS violation(s) "
        f"(bound {expected_violations})"
    )
    return 0


def _build_sharded(args: argparse.Namespace, profiling_runner, model, stream):
    """Stand up the sharded (``--cells``) service behind the same flags.

    ``--cells 1`` keeps the flat per-cell config and serves on the
    profiling runner itself, so its day replays the flat service byte
    for byte (even under a fault plan whose schedule spans profiling
    and serving).  Multi-cell days run the scale-layer config (shorter
    annealing schedule, capped admission candidates) on derived
    per-cell seeds.
    """
    from repro.cluster.cluster import ClusterSpec
    from repro.scale import build_sharded_service, scale_service_config

    provider_factory = _cell_provider_factory(args)
    nodes = args.nodes or profiling_runner.spec.num_nodes
    if args.cells == 1:
        config = ServiceConfig(
            reschedule_every=args.reschedule_every,
            migration_cost=args.migration_cost,
        )
    else:
        config = scale_service_config(
            reschedule_every=args.reschedule_every,
            migration_cost=args.migration_cost,
        )
    fault_plan = getattr(args, "fault_plan", None)

    def factory(shard, cell_seed):
        if (
            args.cells == 1
            and shard.num_nodes == profiling_runner.spec.num_nodes
        ):
            return profiling_runner
        return ClusterRunner(
            shard.spec,
            base_seed=cell_seed,
            faults=fault_plan,
            network_ambient=getattr(args, "network_noise", 0.0),
        )

    return build_sharded_service(
        model,
        ClusterSpec(num_nodes=nodes),
        args.cells,
        stream,
        seed=args.seed,
        config=config,
        checkpoint_path=args.checkpoint,
        cell_workers=args.cell_workers,
        runner_factory=factory,
        degraded_workloads=sorted(profiling_runner.faulted_workloads),
        provider_factory=provider_factory,
    )


def _cell_provider_factory(args: argparse.Namespace):
    """Per-cell provider factory for ``--cells`` days (``None`` = fixed).

    Cells keep their shard-sized runners, so each cell's provider is
    built at the shard's node count: ``static`` is a per-cell no-op,
    ``elastic`` starts the cell full and lets it lose spot capacity to
    churn (and grow it back) within the shard.
    """
    from repro.errors import ConfigurationError

    name = getattr(args, "provider", None)
    churn_path = getattr(args, "churn", None)
    if churn_path and name != "elastic":
        raise ConfigurationError("--churn requires --provider elastic")
    if name is None:
        return None
    if getattr(args, "initial_nodes", None) or getattr(args, "max_nodes", None):
        raise ConfigurationError(
            "--initial-nodes/--max-nodes apply to the flat service; "
            "cells are provider-sized by their shard"
        )
    from repro.providers import (
        AutoscalerConfig,
        ElasticProvider,
        StaticProvider,
    )

    if name == "static":
        return lambda shard, cell_seed: StaticProvider(shard.num_nodes)
    if name == "elastic":
        from repro.faults import FaultPlan

        churn = FaultPlan.load(churn_path) if churn_path else None
        spot_fraction = args.spot_fraction
        return lambda shard, cell_seed: ElasticProvider(
            shard.num_nodes,
            spot_fraction=spot_fraction,
            churn=churn,
            autoscaler=AutoscalerConfig(),
        )
    raise ConfigurationError(
        f"--provider {name!r} is not supported with --cells"
    )


def _build_service(args: argparse.Namespace):
    """Construct the (deterministic) service a serve invocation runs."""
    workloads = tuple(args.workloads or DEFAULT_SERVE_MIX)
    distributed = [w for w in workloads if w not in BATCH_WORKLOADS]
    batch = [w for w in workloads if w in BATCH_WORKLOADS]
    from repro.cluster.cluster import ClusterSpec

    provider_factory = None
    runner_spec = None
    if getattr(args, "cells", None) is None:
        provider_factory, provider_nodes = provider_setup(
            args, ClusterSpec().num_nodes
        )
        if provider_nodes is not None:
            runner_spec = ClusterSpec(num_nodes=provider_nodes)
    runner = ClusterRunner(
        runner_spec,
        base_seed=args.seed,
        faults=getattr(args, "fault_plan", None),
        network_ambient=getattr(args, "network_noise", 0.0),
    )
    console.info(
        f"Profiling {len(workloads)} workload(s) for the serving model..."
    )
    report = build_model(
        runner,
        distributed,
        policy_samples=args.policy_samples,
        seed=args.seed,
        span=4,
    )
    if batch:
        build_batch_profiles(runner, report.model, batch, span=4)
    if wants_network(args):
        network_capable = [w for w in workloads if w in NETWORK_WORKLOADS]
        if network_capable:
            console.info(
                f"Profiling the network domain for "
                f"{len(network_capable)} workload(s)..."
            )
            build_network_profiles(
                runner, report.model, network_capable, span=4
            )
    stream = WorkloadStream(
        StreamConfig(
            workloads=workloads,
            arrival_rate=args.arrival_rate,
            qos_fraction=args.qos_fraction,
        ),
        seed=args.seed,
    )
    if getattr(args, "cells", None):
        return _build_sharded(args, runner, report.model, stream)
    return ConsolidationService(
        runner,
        report.model,
        stream,
        config=ServiceConfig(
            reschedule_every=args.reschedule_every,
            migration_cost=args.migration_cost,
        ),
        seed=args.seed,
        checkpoint_path=args.checkpoint,
        provider=(
            provider_factory() if provider_factory is not None else None
        ),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        console.info("error: --resume requires --checkpoint")
        return 1
    if args.cells is not None and args.cells < 1:
        console.info("error: --cells must be at least 1")
        return 1
    if args.cells is None and (args.nodes or args.cell_workers):
        console.info("error: --nodes/--cell-workers require --cells")
        return 1
    service = _build_service(args)
    if args.resume:
        if args.cells:
            from repro.scale import ScaleCheckpoint

            checkpoint = ScaleCheckpoint.load(args.checkpoint)
        else:
            checkpoint = ServiceCheckpoint.load(args.checkpoint)
        log = None
        if args.event_log and os.path.exists(args.event_log):
            log = EventLog.recover(args.event_log)
        service.restore(checkpoint, log=log)
        console.info(
            f"resumed from checkpoint at epoch boundary {checkpoint.epoch}"
        )
    if args.checkpoint and args.event_log:
        # Persist every event as it is appended (fsync'd), so a crash
        # loses at most a torn final line that --resume drops.
        service.log.attach(args.event_log)
    remaining = args.epochs - service.epochs_run
    if remaining > 0:
        console.info(f"Serving {remaining} epochs...")
        service.run(remaining)
    else:
        console.info(
            f"checkpoint already covers all {args.epochs} epoch(s)"
        )
    service.log.detach()

    final = service.snapshots[-1]
    console.emit(render_service_snapshot(final))
    console.emit()
    console.emit(render_event_counts(service.log.counts()))
    if args.event_log:
        service.log.write(args.event_log)
        console.info(f"\nevent log written to {args.event_log}")
    actual = _serve_expectation(service)
    if args.snapshot:
        atomic_write_text(
            args.snapshot,
            json.dumps(
                {
                    "final": actual["final"],
                    "counters": actual["counters"],
                    "per_epoch": [s.to_dict() for s in service.snapshots],
                },
                sort_keys=True,
                indent=2,
            ) + "\n",
        )
        console.info(f"metrics snapshot written to {args.snapshot}")
    if args.update_expect:
        atomic_write_text(
            args.update_expect,
            json.dumps(actual, sort_keys=True, indent=2) + "\n",
        )
        console.info(f"expectation written to {args.update_expect}")
    if args.expect:
        with open(args.expect, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        return _check_expectation(expected, actual)
    return 0


def register(
    subparsers: argparse._SubParsersAction,
    parents: Mapping[str, argparse.ArgumentParser],
) -> None:
    """Attach the ``serve`` verb."""
    p_serve = subparsers.add_parser(
        "serve",
        help="run the online consolidation service over a seeded traffic day",
        parents=[
            parents["trace"], parents["faults"], parents["seed"],
            parents["network"], parents["provider"],
        ],
    )
    p_serve.add_argument("--epochs", type=int, default=12)
    p_serve.add_argument(
        "--workloads", nargs="+",
        help=f"catalog mix jobs draw from (default: {' '.join(DEFAULT_SERVE_MIX)})",
    )
    p_serve.add_argument("--arrival-rate", type=float, default=1.2,
                         help="mean job arrivals per epoch (Poisson)")
    p_serve.add_argument("--qos-fraction", type=float, default=0.5,
                         help="probability a job carries a QoS bound")
    p_serve.add_argument("--policy-samples", type=int, default=10)
    p_serve.add_argument("--reschedule-every", type=int, default=1)
    p_serve.add_argument("--migration-cost", type=float, default=0.02)
    p_serve.add_argument(
        "--cells",
        type=int,
        help=(
            "shard the cluster into N cells under the headroom router "
            "and global QoS coordinator (1 replays the flat day byte "
            "for byte; default: the flat service)"
        ),
    )
    p_serve.add_argument(
        "--nodes",
        type=int,
        help="cluster size for sharded days (default: the flat testbed size)",
    )
    p_serve.add_argument(
        "--cell-workers",
        type=int,
        default=0,
        help="fan per-cell epochs out over N worker processes (0 = serial)",
    )
    p_serve.add_argument("--event-log", help="write the JSONL event log here")
    p_serve.add_argument("--snapshot", help="write the metrics snapshot JSON here")
    p_serve.add_argument(
        "--checkpoint",
        metavar="PATH",
        help=(
            "write an atomic service checkpoint here after every epoch "
            "(with --event-log, events are also fsync'd as they happen)"
        ),
    )
    p_serve.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue a killed day from --checkpoint (and recover "
            "--event-log); the finished day is byte-identical to an "
            "uninterrupted run"
        ),
    )
    p_serve.add_argument(
        "--expect",
        help="expectation JSON to check; exits 1 on a QoS-violation regression",
    )
    p_serve.add_argument(
        "--update-expect", help="write the expectation JSON for this run"
    )
    p_serve.set_defaults(fn=_cmd_serve)
