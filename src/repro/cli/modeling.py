"""``repro profile`` and ``repro predict`` — model building and queries."""

from __future__ import annotations

import argparse
from typing import Mapping

from repro.analysis.reporting import format_table
from repro.cli._parents import wants_network
from repro.core.builder import (
    MATRIX_PROFILERS,
    build_model,
    build_network_profiles,
)
from repro.core.profile_store import load_model, save_model
from repro.obs import console
from repro.sim.runner import ClusterRunner


def _cmd_profile(args: argparse.Namespace) -> int:
    runner = ClusterRunner(
        base_seed=args.seed,
        faults=getattr(args, "fault_plan", None),
        network_ambient=getattr(args, "network_noise", 0.0),
    )
    report = build_model(
        runner,
        args.workloads,
        algorithm=args.algorithm,
        policy_samples=args.policy_samples,
        seed=args.seed,
    )
    network = wants_network(args)
    if network:
        build_network_profiles(runner, report.model, args.workloads)
    rows = [
        (
            abbrev,
            report.model.profile(abbrev).policy_name,
            report.model.profile(abbrev).bubble_score,
            report.profiling_outcomes[abbrev].cost_percent,
        )
        + (
            (report.model.profile(abbrev).network_score,)
            if network
            else ()
        )
        for abbrev in args.workloads
    ]
    headers = ["Workload", "Policy", "Bubble score", "Profiling cost (%)"]
    if network:
        headers.append("Network score")
    console.emit(format_table(headers, rows))
    if args.out:
        save_model(report.model, args.out)
        console.emit(f"\nmodel written to {args.out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    if args.pressures:
        vector = [float(p) for p in args.pressures.split(",")]
        predicted = model.predict(args.workload, vector, domain=args.domain)
        setting = f"heterogeneous vector {vector}"
    else:
        predicted = model.predict(
            args.workload, (args.pressure, args.count), domain=args.domain
        )
        setting = f"{args.count} node(s) at pressure {args.pressure}"
    if args.domain != "compute":
        setting += f" ({args.domain} domain)"
    console.emit(f"{args.workload} under {setting}: {predicted:.3f}x solo time")
    return 0


def register(
    subparsers: argparse._SubParsersAction,
    parents: Mapping[str, argparse.ArgumentParser],
) -> None:
    """Attach the ``profile`` and ``predict`` verbs."""
    p_profile = subparsers.add_parser(
        "profile",
        help="build an interference model",
        parents=[
            parents["trace"], parents["faults"], parents["seed"],
            parents["output"], parents["network"],
        ],
    )
    p_profile.add_argument("workloads", nargs="+")
    p_profile.add_argument(
        "--algorithm", default="binary-optimized",
        choices=sorted(MATRIX_PROFILERS),
    )
    p_profile.add_argument("--policy-samples", type=int, default=30)
    p_profile.set_defaults(fn=_cmd_profile)

    p_predict = subparsers.add_parser(
        "predict",
        help="query a saved model",
        parents=[parents["trace"], parents["faults"]],
    )
    p_predict.add_argument("--model", required=True)
    p_predict.add_argument("--workload", required=True)
    p_predict.add_argument("--pressure", type=float, default=8.0)
    p_predict.add_argument("--count", type=float, default=1.0)
    p_predict.add_argument(
        "--pressures",
        help="comma-separated per-node pressures (heterogeneous query)",
    )
    p_predict.add_argument(
        "--domain",
        choices=("compute", "network"),
        default="compute",
        help="contention domain to query (default: compute)",
    )
    p_predict.set_defaults(fn=_cmd_predict)
