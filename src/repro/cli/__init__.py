"""Command-line interface.

Provides direct access to the reproduction's main entry points::

    python -m repro list                  # catalog + experiments
    python -m repro run fig2              # regenerate a paper artifact
    python -m repro profile M.lmps M.Gems --output model.json
    python -m repro predict --model model.json --workload M.lmps \\
        --pressure 6 --count 3
    python -m repro serve --seed 2016 --epochs 12   # simulated traffic day
    python -m repro --trace day.json serve --seed 2016 --epochs 12
    python -m repro trace summarize day.json
    python -m repro daemon --spool day/ --seed 2016 --epochs 12
    python -m repro submit --spool day/ M.lmps --duration 2
    python -m repro status --spool day/ sub-000001
    python -m repro cancel --spool day/ sub-000001

Each verb lives in its own module exposing ``register(subparsers,
parents)``; the shared flags (``--seed``, ``--output``, ``--trace``)
come from the parent parsers in :mod:`repro.cli._parents`, so they
spell identically everywhere.  ``--trace PATH`` (top level or after
any verb) installs a :class:`~repro.obs.TraceRecorder` for the run and
writes the trace to ``PATH`` on the way out — deterministically, so
fixed-seed runs produce byte-identical traces.

Experiments can take seconds to minutes (they include the one-time
profiling phase); their output is the plain-text rendering of the
corresponding paper table or figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.cli import catalog, daemoncmd, modeling, serve, tracecmd
from repro.cli._parents import (
    FAULTS_HELP,
    TRACE_HELP,
    faults_parent,
    network_parent,
    output_parent,
    provider_parent,
    seed_parent,
    trace_parent,
)
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.obs import console
from repro.obs.recorder import TraceRecorder, install
from repro.obs.sinks import write_trace


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Interference management for distributed parallel applications "
            "(ASPLOS'16 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument("--trace", metavar="PATH", default=None, help=TRACE_HELP)
    parser.add_argument("--faults", metavar="PATH", default=None, help=FAULTS_HELP)
    sub = parser.add_subparsers(dest="command", required=True)

    parents = {
        "trace": trace_parent(),
        "faults": faults_parent(),
        "seed": seed_parent(),
        "output": output_parent(),
        "network": network_parent(),
        "provider": provider_parent(),
    }
    for module in (catalog, daemoncmd, modeling, serve, tracecmd):
        module.register(sub, parents)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    faults_path = getattr(args, "faults", None)
    recorder: Optional[TraceRecorder] = None
    previous = None
    if trace_path:
        recorder = TraceRecorder()
        previous = install(recorder)
    try:
        try:
            # Every verb accepts --faults; verbs that construct a
            # measurement runner read the loaded plan from
            # args.fault_plan.  Loaded inside the handler so a bad
            # plan file reports like any other CLI error.
            args.fault_plan = (
                FaultPlan.load(faults_path) if faults_path else None
            )
            code = args.fn(args)
        except ReproError as exc:
            console.info(f"error: {exc}")
            code = 1
    finally:
        if recorder is not None:
            install(previous)
            write_trace(recorder, trace_path)
    if recorder is not None:
        # Emitted after the recorder is uninstalled so the message is
        # not itself part of the trace (keeps fixed-seed runs
        # byte-identical regardless of the output path).
        console.info(f"trace written to {trace_path}")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
