"""``repro daemon / submit / status / cancel`` — the daemon verbs.

``repro daemon`` stands up the persistent consolidation daemon over a
*spool directory*: profiling runs once (deterministically, from the
seed), then the day's epochs execute through the lease-fenced worker
pool, committing the durable event log and checkpoint into the spool.
Killing the daemon and rerunning the same command resumes from the
last committed boundary and finishes a day byte-identical to an
uninterrupted one — regardless of ``--workers`` and of any injected
``worker``/``lease`` faults.

The other three verbs are the queue API and need no running daemon:
``repro submit`` spools a job (picked up at the next uncommitted epoch
boundary), ``repro status`` reads lifecycle state back, and ``repro
cancel`` requests cancellation (honoured at the next boundary: a
queued job is dropped silently, a resident one departs — both logged
as ``job_cancel``).
"""

from __future__ import annotations

import argparse
from typing import Mapping

from repro.apps.catalog import BATCH_WORKLOADS, NETWORK_WORKLOADS
from repro.cli._parents import wants_network
from repro.cli.serve import (
    DEFAULT_SERVE_MIX,
    _check_expectation,
    provider_setup,
)
from repro.core.builder import (
    build_batch_profiles,
    build_model,
    build_network_profiles,
)
from repro.daemon import ConsolidationDaemon, JobSpool, ServiceBlueprint
from repro.analysis.reporting import (
    render_event_counts,
    render_service_snapshot,
)
from repro.obs import console
from repro.service import ServiceConfig, StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner


def _build_daemon(args: argparse.Namespace) -> ConsolidationDaemon:
    """Profile the mix and assemble the daemon (all from the seed)."""
    workloads = tuple(args.workloads or DEFAULT_SERVE_MIX)
    distributed = [w for w in workloads if w not in BATCH_WORKLOADS]
    batch = [w for w in workloads if w in BATCH_WORKLOADS]
    plan = getattr(args, "fault_plan", None)
    ambient = getattr(args, "network_noise", 0.0)
    from repro.cluster.cluster import ClusterSpec

    provider_factory, provider_nodes = provider_setup(
        args, ClusterSpec().num_nodes
    )
    runner_spec = (
        None if provider_nodes is None
        else ClusterSpec(num_nodes=provider_nodes)
    )
    profiling_runner = ClusterRunner(
        runner_spec, base_seed=args.seed, faults=plan, network_ambient=ambient
    )
    console.info(
        f"Profiling {len(workloads)} workload(s) for the serving model..."
    )
    report = build_model(
        profiling_runner,
        distributed,
        policy_samples=args.policy_samples,
        seed=args.seed,
        span=4,
    )
    if batch:
        build_batch_profiles(profiling_runner, report.model, batch, span=4)
    if wants_network(args):
        network_capable = [w for w in workloads if w in NETWORK_WORKLOADS]
        if network_capable:
            console.info(
                f"Profiling the network domain for "
                f"{len(network_capable)} workload(s)..."
            )
            build_network_profiles(
                profiling_runner, report.model, network_capable, span=4
            )
    stream = WorkloadStream(
        StreamConfig(
            workloads=workloads,
            arrival_rate=args.arrival_rate,
            qos_fraction=args.qos_fraction,
        ),
        seed=args.seed,
    )
    # Workloads the profiling phase degraded predict conservatively in
    # every execution, exactly as the flat service's shared runner
    # would (the initial checkpoint carries the set forward).
    degraded = tuple(sorted(profiling_runner.faulted_workloads))

    def runner_factory():
        runner = ClusterRunner(
            runner_spec, base_seed=args.seed, faults=plan,
            network_ambient=ambient,
        )
        runner.faulted_workloads.update(degraded)
        return runner

    blueprint = ServiceBlueprint(
        runner_factory,
        report.model,
        config=ServiceConfig(
            reschedule_every=args.reschedule_every,
            migration_cost=args.migration_cost,
        ),
        seed=args.seed,
        provider_factory=provider_factory,
    )
    return ConsolidationDaemon(
        args.spool,
        blueprint,
        stream,
        workers=args.workers,
        faults=plan,
        lease_ticks=args.lease_ticks,
        exec_ticks=args.exec_ticks,
    )


def _cmd_daemon(args: argparse.Namespace) -> int:
    if args.workers < 1:
        console.info("error: --workers must be at least 1")
        return 1
    daemon = _build_daemon(args)
    already = daemon.epochs_run
    fresh = daemon.run(args.epochs)
    if fresh:
        if already:
            console.info(
                f"resumed at epoch boundary {already}; committed "
                f"{len(fresh)} more epoch(s)"
            )
        else:
            console.info(f"committed {len(fresh)} epoch(s)")
    else:
        console.info(
            f"spool already covers all {args.epochs} epoch(s)"
        )
    stats = daemon.stats
    console.info(
        "daemon stats: "
        f"{stats['claims']} claim(s), {stats['commits']} commit(s), "
        f"{stats['reaps']} reap(s), {stats['requeues']} requeue(s), "
        f"{stats['worker_crashes']} worker crash(es), "
        f"{stats['stale_commits']} fenced stale commit(s)"
    )

    final = daemon.snapshots[-1]
    console.emit(render_service_snapshot(final))
    console.emit()
    console.emit(render_event_counts(daemon.log.counts()))
    console.info(f"\ndurable event log: {daemon.spool.events_path}")
    if args.event_log:
        daemon.log.write(args.event_log)
        console.info(f"event log copied to {args.event_log}")
    actual = {
        "counters": daemon.log.counts(),
        "final": final.to_dict(),
    }
    if args.update_expect:
        from repro._util import atomic_write_text
        import json

        atomic_write_text(
            args.update_expect,
            json.dumps(actual, sort_keys=True, indent=2) + "\n",
        )
        console.info(f"expectation written to {args.update_expect}")
    if args.expect:
        import json

        with open(args.expect, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        return _check_expectation(expected, actual)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    record = JobSpool(args.spool).submit(
        args.workload,
        num_units=args.units,
        duration_epochs=args.duration,
        qos_target=args.qos_target,
        weight=args.weight,
        job_id=args.job_id,
    )
    console.emit(
        f"submitted {record.job_id}: {record.workload} "
        f"x{record.num_units} for {record.duration_epochs} epoch(s) "
        f"(status: {record.status})"
    )
    return 0


def _render_record(record) -> str:
    qos = (
        f"qos<={record.qos_target}" if record.qos_target is not None
        else "best-effort"
    )
    arrived = (
        f"arrived e{record.arrival_epoch}"
        if record.arrival_epoch is not None
        else "not yet arrived"
    )
    cancel = ", cancel requested" if record.cancel_requested else ""
    return (
        f"{record.job_id}: {record.status} — {record.workload} "
        f"x{record.num_units}, {record.duration_epochs} epoch(s), "
        f"{qos}, {arrived}{cancel}"
    )


def _cmd_status(args: argparse.Namespace) -> int:
    spool = JobSpool(args.spool)
    if args.job_id:
        console.emit(_render_record(spool.status(args.job_id)))
        return 0
    records = spool.jobs()
    if not records:
        console.emit("(no spooled jobs)")
        return 0
    for record in records:
        console.emit(_render_record(record))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    record = JobSpool(args.spool).request_cancel(args.job_id)
    console.emit(
        f"cancellation of {record.job_id} requested (current status: "
        f"{record.status}); it takes effect at the next epoch boundary"
    )
    return 0


def register(
    subparsers: argparse._SubParsersAction,
    parents: Mapping[str, argparse.ArgumentParser],
) -> None:
    """Attach the ``daemon``, ``submit``, ``status``, ``cancel`` verbs."""
    p_daemon = subparsers.add_parser(
        "daemon",
        help=(
            "run the persistent consolidation daemon over a spool "
            "directory (durable queue, leased executor pool, "
            "crash-safe resume)"
        ),
        parents=[
            parents["trace"], parents["faults"], parents["seed"],
            parents["network"], parents["provider"],
        ],
    )
    p_daemon.add_argument(
        "--spool", required=True, metavar="DIR",
        help="spool directory (queue, event log, checkpoint, lock)",
    )
    p_daemon.add_argument("--epochs", type=int, default=12)
    p_daemon.add_argument(
        "--workers", type=int, default=2,
        help="executor pool size (committed bytes are worker-count-independent)",
    )
    p_daemon.add_argument(
        "--workloads", nargs="+",
        help=f"catalog mix jobs draw from (default: {' '.join(DEFAULT_SERVE_MIX)})",
    )
    p_daemon.add_argument("--arrival-rate", type=float, default=1.2,
                          help="mean job arrivals per epoch (Poisson)")
    p_daemon.add_argument("--qos-fraction", type=float, default=0.5,
                          help="probability a job carries a QoS bound")
    p_daemon.add_argument("--policy-samples", type=int, default=10)
    p_daemon.add_argument("--reschedule-every", type=int, default=1)
    p_daemon.add_argument("--migration-cost", type=float, default=0.02)
    p_daemon.add_argument(
        "--lease-ticks", type=int, default=4,
        help="logical ticks a lease lives without renewal",
    )
    p_daemon.add_argument(
        "--exec-ticks", type=int, default=2,
        help="logical ticks a healthy epoch execution takes",
    )
    p_daemon.add_argument(
        "--event-log", help="copy the durable event log here on exit"
    )
    p_daemon.add_argument(
        "--expect",
        help="expectation JSON to check; exits 1 on a QoS-violation regression",
    )
    p_daemon.add_argument(
        "--update-expect", help="write the expectation JSON for this run"
    )
    p_daemon.set_defaults(fn=_cmd_daemon)

    p_submit = subparsers.add_parser(
        "submit",
        help="spool a job for the daemon's next epoch boundary",
        parents=[parents["trace"], parents["faults"]],
    )
    p_submit.add_argument("--spool", required=True, metavar="DIR")
    p_submit.add_argument("workload", help="catalog abbreviation (e.g. M.lmps)")
    p_submit.add_argument("--units", type=int, default=4)
    p_submit.add_argument("--duration", type=int, default=1,
                          help="tenancy length in epochs")
    p_submit.add_argument("--qos-target", type=float, default=None,
                          help="largest admissible normalized time")
    p_submit.add_argument("--weight", type=float, default=1.0)
    p_submit.add_argument("--job-id", default=None,
                          help="explicit job id (default: sub-NNNNNN)")
    p_submit.set_defaults(fn=_cmd_submit)

    p_status = subparsers.add_parser(
        "status",
        help="show spooled job lifecycle state (one job, or all)",
        parents=[parents["trace"], parents["faults"]],
    )
    p_status.add_argument("--spool", required=True, metavar="DIR")
    p_status.add_argument("job_id", nargs="?", default=None)
    p_status.set_defaults(fn=_cmd_status)

    p_cancel = subparsers.add_parser(
        "cancel",
        help="request job cancellation at the next epoch boundary",
        parents=[parents["trace"], parents["faults"]],
    )
    p_cancel.add_argument("--spool", required=True, metavar="DIR")
    p_cancel.add_argument("job_id")
    p_cancel.set_defaults(fn=_cmd_cancel)
