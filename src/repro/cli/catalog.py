"""``repro list`` and ``repro run`` — the catalog and experiment verbs."""

from __future__ import annotations

import argparse
from typing import Mapping

from repro.analysis.reporting import format_table
from repro.apps.catalog import table1_rows
from repro.experiments.registry import REGISTRY, get_experiment
from repro.obs import console


def _cmd_list(_args: argparse.Namespace) -> int:
    console.emit("Workload catalog (Table 1):\n")
    console.emit(format_table(["Type", "Name", "Size", "Abbrev."], table1_rows()))
    console.emit("\nReproducible experiments:\n")
    rows = [
        (entry.experiment_id, entry.paper_artifact, entry.description)
        for entry in REGISTRY.values()
    ]
    console.emit(format_table(["Id", "Artifact", "Description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment)
    console.info(f"Running {entry.paper_artifact}: {entry.description}...\n")
    result = entry.run()
    console.emit(entry.render(result))
    return 0


def register(
    subparsers: argparse._SubParsersAction,
    parents: Mapping[str, argparse.ArgumentParser],
) -> None:
    """Attach the ``list`` and ``run`` verbs."""
    p_list = subparsers.add_parser(
        "list",
        help="list workloads and experiments",
        parents=[parents["trace"], parents["faults"]],
    )
    p_list.set_defaults(fn=_cmd_list)

    p_run = subparsers.add_parser(
        "run",
        help="regenerate a paper table/figure",
        parents=[parents["trace"], parents["faults"]],
    )
    p_run.add_argument("experiment", choices=sorted(REGISTRY))
    p_run.set_defaults(fn=_cmd_run)
