"""``repro trace`` — inspect previously recorded traces.

``repro trace summarize out.json`` loads a trace written by any verb's
``--trace`` flag (either format) and prints span rollups, counters,
histograms, and the Table 3 profiling-cost accounting derived from the
``profile.probe`` spans alone.
"""

from __future__ import annotations

import argparse
from typing import Mapping

from repro.obs import console
from repro.obs.summary import load_trace, summarize_text


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        payload = load_trace(args.path)
        console.emit(summarize_text(payload))
        return 0
    raise AssertionError(f"unknown trace subcommand {args.trace_command!r}")


def register(
    subparsers: argparse._SubParsersAction,
    parents: Mapping[str, argparse.ArgumentParser],
) -> None:
    """Attach the ``trace`` verb."""
    p_trace = subparsers.add_parser(
        "trace",
        help="inspect recorded traces",
        parents=[parents["trace"], parents["faults"]],
    )
    tsub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = tsub.add_parser(
        "summarize",
        help="print span/metric rollups and Table 3 probe accounting",
    )
    p_sum.add_argument("path", help="trace file written by --trace")
    p_trace.set_defaults(fn=_cmd_trace)
