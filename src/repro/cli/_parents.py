"""Shared parent parsers for the ``repro`` subcommands.

Every subcommand composes its parser from these parents so that the
common flags (``--seed``, ``--output``, ``--trace``) spell, type, and
document identically everywhere.

``--trace`` defaults to :data:`argparse.SUPPRESS` in the parent: the
top-level parser owns the ``trace`` namespace slot (with a ``None``
default), and the suppressed subcommand copy only writes to it when
the flag actually appears after the verb — so both
``repro --trace out.json serve`` and ``repro serve --trace out.json``
work.
"""

from __future__ import annotations

import argparse

TRACE_HELP = (
    "record spans/metrics and write the trace here "
    "(*.jsonl for the line stream, anything else for Chrome trace JSON)"
)

FAULTS_HELP = (
    "inject deterministic faults from this FaultPlan JSON; verbs that "
    "run measurements take the retrying fault-injected path (crashes, "
    "stragglers, outliers, worker-pool failures), other verbs accept "
    "and ignore the plan"
)


def trace_parent() -> argparse.ArgumentParser:
    """Parent adding ``--trace PATH`` (suppressed default; see module doc)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        metavar="PATH",
        default=argparse.SUPPRESS,
        help=TRACE_HELP,
    )
    return parent


def faults_parent() -> argparse.ArgumentParser:
    """Parent adding ``--faults PATH`` (suppressed default, like ``--trace``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--faults",
        metavar="PATH",
        default=argparse.SUPPRESS,
        help=FAULTS_HELP,
    )
    return parent


NETWORK_NOISE_HELP = (
    "constant NETWORK-domain background pressure (0-8) on every node's "
    "uplink; 0 (the default) is the flat network and replays "
    "pre-network runs byte-identically"
)

DOMAINS_HELP = (
    "contention domains to profile/predict on (default: compute only, "
    "the scalar-era behaviour); add 'network' to also build per-link "
    "propagation matrices and network bubble scores for the "
    "network-capable catalog entries"
)


def network_parent() -> argparse.ArgumentParser:
    """Parent adding ``--network-noise LEVEL`` and ``--domains ...``.

    Shared by every verb that constructs a measurement runner
    (``profile``, ``serve``, ``daemon``), so the network dimension
    spells identically everywhere.  Defaults keep the flat network:
    zero ambient link pressure and the COMPUTE domain only.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--network-noise",
        type=float,
        default=0.0,
        metavar="LEVEL",
        dest="network_noise",
        help=NETWORK_NOISE_HELP,
    )
    parent.add_argument(
        "--domains",
        nargs="+",
        choices=("compute", "network"),
        default=("compute",),
        metavar="DOMAIN",
        help=DOMAINS_HELP,
    )
    return parent


def wants_network(args: argparse.Namespace) -> bool:
    """Whether a parsed namespace opted into the NETWORK domain."""
    return "network" in (getattr(args, "domains", None) or ())


PROVIDER_HELP = (
    "capacity provider backing the node pool: 'static' (fixed, "
    "byte-identical to no provider), 'elastic' (durable + spot "
    "instances with queue/QoS-margin autoscaling), or any other "
    "registered backend (e.g. 'ec2'); default: no provider"
)

CHURN_HELP = (
    "FaultPlan JSON whose preemption_rate / preemption_warning_epochs "
    "drive seeded two-phase spot preemption (requires --provider "
    "elastic)"
)


def provider_parent() -> argparse.ArgumentParser:
    """Parent adding the capacity-provider flags.

    Shared by ``serve`` and ``daemon`` so the elastic pool spells
    identically everywhere.  Defaults keep the fixed pool: no provider,
    no churn.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--provider",
        metavar="NAME",
        default=None,
        help=PROVIDER_HELP,
    )
    parent.add_argument(
        "--churn",
        metavar="PATH",
        default=None,
        help=CHURN_HELP,
    )
    parent.add_argument(
        "--spot-fraction",
        type=float,
        default=0.5,
        dest="spot_fraction",
        metavar="FRAC",
        help="fraction of the elastic pool launched as spot (default: 0.5)",
    )
    parent.add_argument(
        "--initial-nodes",
        type=int,
        default=None,
        dest="initial_nodes",
        metavar="N",
        help=(
            "elastic pool size at epoch 0 (default: the flat testbed "
            "size)"
        ),
    )
    parent.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        dest="max_nodes",
        metavar="N",
        help=(
            "elastic pool ceiling the runner is built at (default: "
            "initial nodes + 4)"
        ),
    )
    return parent


def seed_parent(default: int = 2016) -> argparse.ArgumentParser:
    """Parent adding ``--seed N`` (measurement/search determinism)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--seed",
        type=int,
        default=default,
        help=f"deterministic base seed (default: {default})",
    )
    return parent


def output_parent() -> argparse.ArgumentParser:
    """Parent adding ``--output PATH`` (``--out`` kept as an alias)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--output",
        "--out",
        dest="out",
        metavar="PATH",
        help="write the subcommand's primary artifact here",
    )
    return parent
