"""Figure 13: model validation on Amazon EC2.

Runs each pair of the four EC2 workloads together on the 32 VMs and
compares predicted against measured normalized times.  The paper
reports 3-10% average errors — higher than on the private cluster, due
to the uncontrolled tenant interference the model cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro._util import stable_seed
from repro.analysis.errors import ErrorSummary, absolute_percent_error
from repro.analysis.reporting import format_table
from repro.core.profiling.policy_selection import select_policy
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.scoring import BubbleScoreMeter
from repro.providers.ec2 import EC2_WORKLOADS
from repro.experiments.context import ExperimentContext
from repro.experiments.fig12_ec2_propagation import ec2_context


def build_ec2_model(
    context: ExperimentContext, workloads: Sequence[str], *, policy_samples: int = 100
) -> InterferenceModel:
    """Construct the EC2 interference model from EC2 measurements.

    Section 6's point: sensitivity curves, policies, and bubble scores
    are environment-specific, so the EC2 model is profiled from scratch
    on the EC2 runner.
    """
    meter = BubbleScoreMeter(context.runner)
    profiles: Dict[str, InterferenceProfile] = {}
    for abbrev in workloads:
        matrix = context.truth_matrix(abbrev)
        selection = select_policy(
            context.runner,
            abbrev,
            matrix,
            samples=policy_samples,
            seed=stable_seed(context.seed, abbrev, "ec2-policy"),
        )
        profiles[abbrev] = InterferenceProfile(
            workload=abbrev,
            matrix=matrix,
            policy_name=selection.best.policy_name,
            bubble_score=meter.score(abbrev),
        )
    return InterferenceModel(profiles)


@dataclass(frozen=True)
class Fig13Result:
    """Per-workload validation errors on EC2."""

    errors: Dict[str, List[float]]

    def summary(self, workload: str) -> ErrorSummary:
        """Error summary for one workload."""
        return ErrorSummary.of(self.errors[workload])

    def average_errors(self) -> Dict[str, float]:
        """Figure 13's bar heights."""
        return {w: self.summary(w).mean for w in sorted(self.errors)}

    def render(self) -> str:
        """Figure 13 as text."""
        rows = [
            (w, self.summary(w).mean, self.summary(w).maximum)
            for w in sorted(self.errors)
        ]
        return format_table(["Workload", "Avg error(%)", "Max error(%)"], rows)


def run_fig13(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
    policy_samples: int = 100,
    reps: int = 2,
) -> Fig13Result:
    """Pairwise co-run validation on the EC2 environment."""
    context = context or ec2_context()
    workloads = list(workloads or EC2_WORKLOADS)
    model = build_ec2_model(context, workloads, policy_samples=policy_samples)
    errors: Dict[str, List[float]] = {w: [] for w in workloads}
    for target in workloads:
        for co_runner in workloads:
            score = model.profile(co_runner).bubble_score
            vector = [score] * context.runner.num_nodes
            predicted = model.predict_heterogeneous(target, vector)
            for rep in range(reps):
                times = context.runner.corun_pair(target, co_runner, rep=rep)
                actual = times[f"{target}#0"]
                errors[target].append(absolute_percent_error(predicted, actual))
    return Fig13Result(errors=errors)
