"""Figure 3: interference propagation curves.

For every distributed workload, measures the normalized execution time
over 0-8 interfering nodes at each bubble pressure 1-8 — the full grid
of sensitivity curves.  The three propagation classes of Section 3.2
show up directly: high-propagation curves jump at one interfering node,
M.Gems's curves climb near-linearly, and the Hadoop/Spark curves stay
close to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_series
from repro.core.curves import PropagationMatrix
from repro.experiments.context import ExperimentContext, default_context


@dataclass(frozen=True)
class Fig3Result:
    """Per-workload propagation matrices (each one panel of Figure 3)."""

    matrices: Dict[str, PropagationMatrix]

    def curve(self, workload: str, pressure: float) -> List[float]:
        """One curve: normalized times across counts at a pressure."""
        matrix = self.matrices[workload]
        row = list(matrix.pressures).index(pressure)
        return [float(v) for v in matrix.row(row)]

    def render(self, workload: str) -> str:
        """One panel: all pressure curves of a workload."""
        matrix = self.matrices[workload]
        series = {
            f"pressure {int(p)}": [float(v) for v in matrix.row(i)]
            for i, p in enumerate(matrix.pressures)
        }
        return format_series(
            "interfering nodes", [int(c) for c in matrix.counts], series
        )

    def render_all(self) -> str:
        """Every panel, separated by headers."""
        parts = []
        for workload in sorted(self.matrices):
            parts.append(f"== {workload} ==")
            parts.append(self.render(workload))
        return "\n".join(parts)


def run_fig3(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
) -> Fig3Result:
    """Measure the full propagation grid for the distributed workloads."""
    context = context or default_context()
    workloads = list(workloads or context.distributed_workloads())
    matrices = {abbrev: context.truth_matrix(abbrev) for abbrev in workloads}
    return Fig3Result(matrices=matrices)
