"""Figure 2: why distributed interference needs its own model.

Runs 126.lammps (M.lmps) across the 8-node cluster while instances of
462.libquantum (C.libq) occupy 0 through 8 nodes, and compares the
*measured* normalized execution times with what a naive proportional
model expects.  The paper's point — one interfering node already slows
the whole application close to its worst case, which the naive model
misses badly — reproduces as the gap between the two series at small
node counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import format_series
from repro.experiments.context import ExperimentContext, default_context

TARGET = "M.lmps"
CO_RUNNER = "C.libq"


@dataclass(frozen=True)
class Fig2Result:
    """Measured vs naive-model series over interfering node counts."""

    counts: List[int]
    real: List[float]
    naive: List[float]

    def render(self) -> str:
        """The two bar groups of Figure 2 as a text table."""
        return format_series(
            "interfering nodes",
            self.counts,
            {"naive expectation": self.naive, "real execution": self.real},
        )


def run_fig2(context: ExperimentContext | None = None) -> Fig2Result:
    """Run the motivation experiment.

    The co-runner is the real libquantum batch workload (not a bubble):
    the naive series converts its measured bubble score through the
    proportional model, exactly the comparison the paper draws.
    """
    context = context or default_context()
    runner = context.runner
    naive = context.naive_model
    score = context.model.profile(CO_RUNNER).bubble_score

    counts = list(range(runner.num_nodes + 1))
    real: List[float] = []
    naive_series: List[float] = []
    for count in counts:
        if count == 0:
            real.append(1.0)
            naive_series.append(1.0)
            continue
        nodes = runner.interfering_nodes(count)
        deployments = [
            (TARGET, TARGET, {i: i for i in range(runner.num_nodes)}),
        ]
        for node in nodes:
            deployments.append((f"{CO_RUNNER}@n{node}", CO_RUNNER, {0: node}))
        times = runner.run_deployments(deployments, rep=count)
        real.append(times[TARGET])
        naive_series.append(
            naive.predict_homogeneous(TARGET, score, float(count))
        )
    return Fig2Result(counts=counts, real=real, naive=naive_series)
