"""Figure 4 and Table 2: heterogeneity mapping policy selection.

Samples random heterogeneous interference configurations per workload,
measures each, and scores the four mapping policies' predictions.
Figure 4 is the per-policy error distribution (mean with min/max bars);
Table 2 is the winning policy per workload with its mean error and
standard deviation.  The margin-of-error calculation of Section 3.3 is
also reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.analysis.stats import margin_of_error
from repro.core.profiling.policy_selection import (
    PolicySelectionResult,
    heterogeneous_space_size,
)
from repro.experiments.context import ExperimentContext, default_context
from repro.units import NUM_PRESSURE_LEVELS


@dataclass(frozen=True)
class Fig4Result:
    """Policy-selection outcomes per workload."""

    selections: Dict[str, PolicySelectionResult]
    population_size: int

    def table2_rows(self) -> List[Tuple[str, str, float, float]]:
        """(workload, best policy, avg error %, std dev) rows."""
        rows = []
        for workload in self.selections:
            best = self.selections[workload].best
            rows.append(
                (workload, best.policy_name, best.average_error, best.std_dev)
            )
        return rows

    def figure4_bars(
        self, workload: str
    ) -> Dict[str, Tuple[float, float, float]]:
        """Per-policy (mean, min, max) error bars for one workload."""
        result = self.selections[workload]
        return {
            e.policy_name: (e.average_error, e.min_error, e.max_error)
            for e in result.evaluations
        }

    def best_policy_margin(self, workload: str, confidence: float = 0.99) -> float:
        """Margin of error of the winning policy's mean error estimate."""
        best = self.selections[workload].best
        return margin_of_error(
            best.errors_percent,
            population_size=self.population_size,
            confidence=confidence,
        )

    def render_table2(self) -> str:
        """Table 2 as text."""
        return format_table(
            ["Workload", "Best policy", "Avg. error(%)", "Std. dev."],
            self.table2_rows(),
        )

    def render_figure4(self) -> str:
        """Figure 4's per-policy bars as text."""
        rows = []
        for workload in self.selections:
            for policy, (mean, lo, hi) in self.figure4_bars(workload).items():
                rows.append((workload, policy, mean, lo, hi))
        return format_table(
            ["Workload", "Policy", "Avg err(%)", "Min err(%)", "Max err(%)"], rows
        )


def run_fig4(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
) -> Fig4Result:
    """Run policy selection for the distributed workloads."""
    context = context or default_context()
    workloads = list(workloads or context.distributed_workloads())
    selections = {
        abbrev: context.policy_selection(abbrev) for abbrev in workloads
    }
    population = heterogeneous_space_size(
        context.runner.num_nodes, NUM_PRESSURE_LEVELS
    )
    return Fig4Result(selections=selections, population_size=population)
