"""Table 4: bubble scores of all benchmark applications.

Measures the interference each workload generates via probe bubbles on
every participating node, averaged as in Section 3.4.  The paper's
scores span 0.2 (H.KM) to 6.6 (C.libq); the measured values here track
the catalog's calibrated ground truth, with the Hadoop/Spark masters'
lighter footprint pulling their averages slightly below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.scoring import BubbleScoreMeter
from repro.experiments.context import ExperimentContext, default_context

#: Table 4 of the paper, for side-by-side reporting.
PAPER_SCORES: Dict[str, float] = {
    "M.milc": 4.3, "M.lesl": 3.9, "M.Gems": 2.4,
    "M.lmps": 1.0, "M.zeus": 1.4, "M.lu": 4.6,
    "N.cg": 3.9, "N.mg": 5.0, "H.KM": 0.2,
    "S.WC": 0.3, "S.CF": 0.5, "S.PR": 0.7,
    "C.gcc": 4.8, "C.mcf": 5.4, "C.cact": 3.8,
    "C.sopl": 4.9, "C.libq": 6.6, "C.xbmk": 4.3,
}


@dataclass(frozen=True)
class Table4Result:
    """Measured bubble scores, with the paper's values for comparison."""

    scores: Dict[str, float]

    def rows(self) -> List[Tuple[str, float, float]]:
        """(workload, measured score, paper score) rows."""
        return [
            (workload, self.scores[workload], PAPER_SCORES.get(workload, float("nan")))
            for workload in self.scores
        ]

    def render(self) -> str:
        """Table 4 as text, including the paper's column."""
        return format_table(
            ["Workload", "Bubble (measured)", "Bubble (paper)"],
            self.rows(),
            float_format="{:.1f}",
        )


def run_table4(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
) -> Table4Result:
    """Measure bubble scores for all 18 applications."""
    context = context or default_context()
    if workloads is None:
        workloads = list(context.distributed_workloads()) + list(
            context.batch_workloads()
        )
    meter = BubbleScoreMeter(context.runner)
    return Table4Result(scores=meter.score_table(list(workloads)))
