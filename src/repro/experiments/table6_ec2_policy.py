"""Table 6: heterogeneity policy selection on Amazon EC2.

Repeats the policy-selection procedure on the EC2 environment with 100
sampled heterogeneous settings per workload.  The paper's observation
— EC2 errors are higher than the private cluster's because other
tenants' interference cannot be measured or controlled, and the
selected policies can differ from Table 2's — is what this experiment
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro._util import stable_seed
from repro.analysis.reporting import format_table
from repro.core.profiling.policy_selection import (
    PolicySelectionResult,
    select_policy,
)
from repro.providers.ec2 import EC2_POLICY_SAMPLES, EC2_WORKLOADS
from repro.experiments.context import ExperimentContext
from repro.experiments.fig12_ec2_propagation import ec2_context


@dataclass(frozen=True)
class Table6Result:
    """EC2 policy selection per workload."""

    selections: Dict[str, PolicySelectionResult]

    def rows(self) -> List[Tuple[str, str, float, float]]:
        """(workload, best policy, avg error %, std dev) rows."""
        return [
            (
                workload,
                selection.best.policy_name,
                selection.best.average_error,
                selection.best.std_dev,
            )
            for workload, selection in self.selections.items()
        ]

    def render(self) -> str:
        """Table 6 as text."""
        return format_table(
            ["Workload", "Best policy", "Avg. error(%)", "Std. dev."], self.rows()
        )


def run_table6(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
    samples: int = EC2_POLICY_SAMPLES,
) -> Table6Result:
    """Select policies for the EC2 validation workloads."""
    context = context or ec2_context()
    workloads = list(workloads or EC2_WORKLOADS)
    selections = {}
    for abbrev in workloads:
        selections[abbrev] = select_policy(
            context.runner,
            abbrev,
            context.truth_matrix(abbrev),
            samples=samples,
            seed=stable_seed(context.seed, abbrev, "ec2-policy"),
        )
    return Table6Result(selections=selections)
