"""Figure 10: QoS-aware placement, model vs naive.

For each QoS mix, both the interference-aware model and the naive
proportional model drive the QoS-aware annealing placer; the resulting
placements are then *actually run* (ground truth) to check whether the
mission-critical application really kept 80% of its solo performance,
and what total weighted runtime the cluster paid.  The paper's result:
the proposed model always holds the QoS, the naive model sometimes
violates it, at similar total runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import stable_seed
from repro.analysis.reporting import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.table5_mixes import MixSpec, QOS_MIXES
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import Placement
from repro.placement.objectives import QoSConstraint, weighted_total_time
from repro.placement.qos import QoSAwarePlacer
from repro.sim.runner import MeasurementRequest

#: QoS requirement: guarantee 80% of solo performance, as in the paper.
QOS_FRACTION: float = 0.8
QOS_LIMIT: float = 1.0 / QOS_FRACTION


@dataclass(frozen=True)
class QoSOutcome:
    """Ground-truth outcome of one placement for one mix."""

    model_name: str
    placement: Placement
    measured_times: Dict[str, float]
    qos_satisfied: bool
    total_weighted_time: float


@dataclass(frozen=True)
class Fig10Result:
    """Per-mix outcomes under both models."""

    outcomes: Dict[str, Dict[str, QoSOutcome]]  # mix name -> model -> outcome
    qos_limit: float

    def rows(self) -> List[Tuple[str, str, str, float, float]]:
        """(mix, model QoS, naive QoS, model total, naive total) rows."""
        rows = []
        for mix_name, by_model in self.outcomes.items():
            model = by_model["model"]
            naive = by_model["naive"]
            rows.append(
                (
                    mix_name,
                    "OK" if model.qos_satisfied else "VIOLATED",
                    "OK" if naive.qos_satisfied else "VIOLATED",
                    model.total_weighted_time,
                    naive.total_weighted_time,
                )
            )
        return rows

    def render(self) -> str:
        """Figure 10 as text."""
        return format_table(
            ["Mix", "QoS (model)", "QoS (naive)", "Total (model)", "Total (naive)"],
            self.rows(),
        )


def _evaluate(
    context: ExperimentContext,
    mix: MixSpec,
    placement: Placement,
    constraint: QoSConstraint,
    model_name: str,
    rep: int,
    reps: int = 3,
) -> QoSOutcome:
    """Ground-truth check of a placement, averaged over ``reps`` runs."""
    samples = context.runner.measure_many(
        [
            MeasurementRequest.deployments(placement.deployments(), rep=rep + i)
            for i in range(reps)
        ],
        max_workers=context.max_workers,
    )
    times = {
        key: sum(s[key] for s in samples) / len(samples) for key in samples[0]
    }
    return QoSOutcome(
        model_name=model_name,
        placement=placement,
        measured_times=times,
        qos_satisfied=constraint.satisfied_by(times),
        total_weighted_time=weighted_total_time(times, placement),
    )


def run_fig10(
    context: ExperimentContext | None = None,
    *,
    mixes: Sequence[MixSpec] | None = None,
    schedule: Optional[AnnealingSchedule] = None,
    qos_limit: float = QOS_LIMIT,
    seed: int = 5,
) -> Fig10Result:
    """Run the QoS placement comparison over the QoS mixes."""
    context = context or default_context()
    mixes = list(mixes or QOS_MIXES)
    schedule = schedule or AnnealingSchedule(iterations=1500, restarts=2)
    outcomes: Dict[str, Dict[str, QoSOutcome]] = {}
    for mix in mixes:
        instances = mix.instances()
        constraint = QoSConstraint(mix.qos_instance_key, qos_limit)
        by_model: Dict[str, QoSOutcome] = {}
        for model_name, model in (
            ("model", context.placement_model),
            ("naive", context.naive_placement_model),
        ):
            placer = QoSAwarePlacer(
                model,
                context.runner.spec,
                [constraint],
                schedule=schedule,
                seed=stable_seed(seed, mix.name, model_name),
                max_workers=context.max_workers,
            )
            result = placer.place(instances)
            by_model[model_name] = _evaluate(
                context, mix, result.placement, constraint, model_name, rep=seed
            )
        outcomes[mix.name] = by_model
    return Fig10Result(outcomes=outcomes, qos_limit=qos_limit)
