"""Experiment registry: every paper table and figure, by id.

Maps experiment identifiers (``fig2`` ... ``fig13``) to their run
functions and descriptions, for the CLI and for documentation
generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.experiments.fig2_motivation import run_fig2
from repro.experiments.fig3_propagation import run_fig3
from repro.experiments.fig4_heterogeneity import run_fig4
from repro.experiments.fig8_validation import run_fig8
from repro.experiments.fig9_gems import run_fig9
from repro.experiments.fig10_qos import run_fig10
from repro.experiments.fig11_performance import run_fig11
from repro.experiments.fig12_ec2_propagation import run_fig12
from repro.experiments.fig13_ec2_validation import run_fig13
from repro.experiments.table3_profiling import run_table3
from repro.experiments.table4_bubble_scores import run_table4
from repro.experiments.table6_ec2_policy import run_table6


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[[], object]
    render: Callable[[object], str]


def _render_default(result: object) -> str:
    render = getattr(result, "render", None)
    if render is None:
        raise ConfigurationError(f"{type(result).__name__} has no render()")
    return render()


REGISTRY: Dict[str, ExperimentEntry] = {
    entry.experiment_id: entry
    for entry in (
        ExperimentEntry(
            "fig2", "Figure 2",
            "Naive vs real execution time of M.lmps with C.libq on 0-8 nodes",
            run_fig2, _render_default,
        ),
        ExperimentEntry(
            "fig3", "Figure 3",
            "Propagation curves for all distributed workloads",
            run_fig3, lambda r: r.render_all(),
        ),
        ExperimentEntry(
            "fig4", "Figure 4 + Table 2",
            "Heterogeneity policy errors and best policy per workload",
            run_fig4, lambda r: r.render_figure4() + "\n\n" + r.render_table2(),
        ),
        ExperimentEntry(
            "table3", "Table 3 + Figures 6-7",
            "Profiling algorithm cost and accuracy",
            run_table3,
            lambda r: "\n\n".join(
                (r.render_table3(), r.render_figure6(), r.render_figure7())
            ),
        ),
        ExperimentEntry(
            "table4", "Table 4",
            "Bubble scores of all benchmark applications",
            run_table4, _render_default,
        ),
        ExperimentEntry(
            "fig8", "Figure 8",
            "Model validation errors for pairwise co-runs",
            run_fig8, _render_default,
        ),
        ExperimentEntry(
            "fig9", "Figure 9",
            "Predicted vs actual runtimes with the M.Gems co-runner",
            run_fig9, _render_default,
        ),
        ExperimentEntry(
            "fig10", "Figure 10",
            "QoS-aware placement: model vs naive",
            run_fig10, _render_default,
        ),
        ExperimentEntry(
            "fig11", "Figure 11 + Table 5",
            "Placement for performance across the 10 mixes",
            run_fig11, _render_default,
        ),
        ExperimentEntry(
            "fig12", "Figure 12",
            "EC2 propagation curves for 4 workloads, 0-32 interfering VMs",
            run_fig12, lambda r: r.render_all(),
        ),
        ExperimentEntry(
            "table6", "Table 6",
            "Heterogeneity policy selection on EC2",
            run_table6, _render_default,
        ),
        ExperimentEntry(
            "fig13", "Figure 13",
            "Model validation errors on EC2",
            run_fig13, _render_default,
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up an experiment by id.

    Raises
    ------
    ConfigurationError
        If the id is unknown.
    """
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(REGISTRY)}"
        ) from None


def all_experiment_ids() -> Tuple[str, ...]:
    """All registered experiment ids, in registry order."""
    return tuple(REGISTRY)
