"""Shared experiment context.

Most experiments need the same expensive artifacts: the measurement
environment, exhaustively-measured propagation matrices (ground truth
for profiling-quality studies), and a profiled interference model (the
artifact Sections 4.3 and 5 consume).  :class:`ExperimentContext`
builds each lazily and caches it, and :func:`default_context` provides
a process-wide instance so a benchmark session profiles the cluster
once, like the paper's one-time profiling phase.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence

from repro._util import stable_seed
from repro.apps.catalog import BATCH_WORKLOADS, DISTRIBUTED_WORKLOADS
from repro.core.builder import (
    build_batch_profiles,
    build_model,
    default_counts,
    default_pressures,
)
from repro.core.model import InterferenceModel, InterferenceProfile
from repro.core.naive import NaiveProportionalModel
from repro.core.curves import PropagationMatrix
from repro.core.profiling.evaluation import exhaustive_truth
from repro.core.profiling.plan import MeasurementOracle
from repro.core.profiling.policy_selection import (
    PolicySelectionResult,
    select_policy,
)
from repro.sim.cache import MeasurementCache
from repro.sim.runner import ClusterRunner, MeasurementRequest


class ExperimentContext:
    """Lazily-built shared artifacts for the paper's experiments.

    Parameters
    ----------
    runner:
        Measurement environment; defaults to the private 8-node testbed.
    seed:
        Root seed for sampling steps.
    policy_samples:
        Heterogeneous configurations per workload for policy selection.
    algorithm:
        Matrix-profiling algorithm used to build the working model.
    max_workers:
        Fan batchable measurement sweeps (the exhaustive truth
        matrices) and annealing restarts out over worker processes.
        ``None`` keeps everything serial; results are bit-identical
        either way.
    cache:
        Persistent measurement cache handed to the default runner
        (ignored when an explicit ``runner`` is supplied — configure
        that runner's cache directly).
    """

    def __init__(
        self,
        runner: Optional[ClusterRunner] = None,
        *,
        seed: int = 2016,
        policy_samples: int = 60,
        policy_reps: int = 1,
        algorithm: str = "binary-optimized",
        counts: Optional[Sequence[float]] = None,
        max_workers: Optional[int] = None,
        cache: Optional[MeasurementCache] = None,
    ) -> None:
        self.runner = runner or ClusterRunner(base_seed=seed, cache=cache)
        self.max_workers = max_workers
        self.seed = seed
        self.policy_samples = policy_samples
        self.policy_reps = policy_reps
        self.algorithm = algorithm
        self.pressures = default_pressures()
        self.counts = (
            list(counts) if counts is not None
            else default_counts(self.runner.num_nodes)
        )
        self._oracles: Dict[str, MeasurementOracle] = {}
        self._truth: Dict[str, PropagationMatrix] = {}
        self._model: Optional[InterferenceModel] = None
        self._placement_model: Optional[InterferenceModel] = None
        self._selections: Dict[str, PolicySelectionResult] = {}
        self._scores: Dict[str, float] = {}

    #: Nodes each application spans in the Section 5 placements
    #: (16 VMs = 4 units per application).
    PLACEMENT_SPAN = 4

    # ------------------------------------------------------------------
    def oracle(self, abbrev: str) -> MeasurementOracle:
        """Shared (cached) measurement oracle for a workload."""
        if abbrev not in self._oracles:
            self._oracles[abbrev] = MeasurementOracle(self.runner, abbrev)
        return self._oracles[abbrev]

    def truth_matrix(self, abbrev: str) -> PropagationMatrix:
        """The exhaustively-measured propagation matrix of a workload."""
        if abbrev not in self._truth:
            self._prewarm_truth(abbrev)
            self._truth[abbrev] = exhaustive_truth(
                self.oracle(abbrev), self.pressures, self.counts
            )
        return self._truth[abbrev]

    def _prewarm_truth(self, abbrev: str) -> None:
        """Batch the exhaustive sweep's settings through ``measure_many``.

        Every setting the exhaustive truth needs is independent (each
        derives its own stable seed), so the sweep fans out across
        worker processes when ``max_workers`` allows — and the primed
        oracle then serves :func:`exhaustive_truth` from cache.  Values
        and measurement accounting are bit-identical to the serial
        sweep.
        """
        oracle = self.oracle(abbrev)
        settings = [
            (float(pressure), int(count))
            for pressure in self.pressures
            for count in self.counts
            if count > 0 and pressure > 0.0
            and not oracle.is_cached(pressure, count)
        ]
        if not settings:
            return
        requests = [
            MeasurementRequest.measure(abbrev, pressure, count, span=oracle.span)
            for pressure, count in settings
        ]
        values = self.runner.measure_many(requests, max_workers=self.max_workers)
        for (pressure, count), value in zip(settings, values):
            oracle.prime(pressure, count, value)

    # ------------------------------------------------------------------
    @property
    def model(self) -> InterferenceModel:
        """The profiled interference model (distributed + batch apps).

        Matrices come from the binary-optimized profiler (the paper's
        recommended algorithm); heterogeneity policies are selected
        against the exhaustively-measured matrices, which the context
        already holds for Figure 3 / Table 3.  Selecting on the
        estimated matrices instead would stack the profiler's ~1-3%
        cell error on top of the sampling noise, and the N MAX /
        N+1 MAX distinction lives within exactly that margin.
        """
        if self._model is None:
            report = build_model(
                self.runner,
                DISTRIBUTED_WORKLOADS,
                algorithm=self.algorithm,
                policy_samples=self.policy_samples,
                policy_reps=self.policy_reps,
                pressures=self.pressures,
                counts=self.counts,
                seed=self.seed,
            )
            model = report.model
            self._scores.update(report.bubble_scores)
            for abbrev in DISTRIBUTED_WORKLOADS:
                selection = self.policy_selection(abbrev)
                profile = model.profile(abbrev)
                model.add_profile(
                    InterferenceProfile(
                        workload=abbrev,
                        matrix=profile.matrix,
                        policy_name=selection.best.policy_name,
                        bubble_score=profile.bubble_score,
                    )
                )
            build_batch_profiles(
                self.runner,
                model,
                BATCH_WORKLOADS,
                pressures=self.pressures,
                counts=self.counts,
            )
            self._model = model
        return self._model

    @property
    def naive_model(self) -> NaiveProportionalModel:
        """The naive proportional baseline sharing the model's profiles."""
        return NaiveProportionalModel(self.model)

    @property
    def placement_model(self) -> InterferenceModel:
        """The model profiled at the Section 5 deployment shape.

        Sensitivity curves depend on how many nodes the application
        spans, so the placement experiments (each application on 4 of
        the 8 hosts) use matrices profiled at span 4 with counts 0-4.
        Heterogeneity policies are application-intrinsic (Table 2 is
        selected once, in the full-span study of Section 3) and are
        inherited from the main model rather than re-selected on the
        much smaller span-4 configuration space.
        """
        if self._placement_model is None:
            span = self.PLACEMENT_SPAN
            report = build_model(
                self.runner,
                DISTRIBUTED_WORKLOADS,
                algorithm=self.algorithm,
                policy_samples=self.policy_samples,
                policy_reps=self.policy_reps,
                pressures=self.pressures,
                seed=self.seed + 1,
                span=span,
            )
            placement_model = report.model
            build_batch_profiles(
                self.runner,
                placement_model,
                BATCH_WORKLOADS,
                pressures=self.pressures,
                span=span,
            )
            for abbrev in placement_model.workloads:
                profile = placement_model.profile(abbrev)
                placement_model.add_profile(
                    InterferenceProfile(
                        workload=profile.workload,
                        matrix=profile.matrix,
                        policy_name=self.model.profile(abbrev).policy_name,
                        bubble_score=profile.bubble_score,
                    )
                )
            self._placement_model = placement_model
        return self._placement_model

    @property
    def naive_placement_model(self) -> NaiveProportionalModel:
        """Naive baseline over the span-4 placement profiles."""
        return NaiveProportionalModel(self.placement_model)

    def policy_selection(self, abbrev: str) -> PolicySelectionResult:
        """Policy selection against the exhaustive truth matrix."""
        if abbrev not in self._selections:
            self._selections[abbrev] = select_policy(
                self.runner,
                abbrev,
                self.truth_matrix(abbrev),
                samples=self.policy_samples,
                seed=stable_seed(self.seed, abbrev, "policy"),
                reps=self.policy_reps,
            )
        return self._selections[abbrev]

    def bubble_scores(self) -> Dict[str, float]:
        """Measured bubble scores of everything the model profiles."""
        self.model  # noqa: B018 - ensure built
        scores = dict(self._scores)
        for abbrev in BATCH_WORKLOADS:
            scores[abbrev] = self.model.profile(abbrev).bubble_score
        return scores

    def distributed_workloads(self) -> Sequence[str]:
        """The 12 distributed workloads of Table 1."""
        return DISTRIBUTED_WORKLOADS

    def batch_workloads(self) -> Sequence[str]:
        """The 6 SPEC CPU2006 co-runners of Table 1."""
        return BATCH_WORKLOADS


@lru_cache(maxsize=1)
def default_context() -> ExperimentContext:
    """Process-wide shared context (profile once, reuse everywhere).

    Policy selection runs with 100 samples rather than the paper's 60:
    the N MAX / N+1 MAX distinction sits within one standard deviation
    for several workloads (the paper's own Table 2 error bars overlap),
    and the experiments downstream of the selection deserve the
    tighter margin.  The sampling-cost study itself
    (:mod:`repro.experiments.fig4_heterogeneity`) reports the margin of
    error either way.
    """
    return ExperimentContext(policy_samples=100, policy_reps=2)
