"""Figure 11: placement for performance across the Table 5 mixes.

For every mix, four placements are produced and then *measured* on the
ground-truth cluster:

* **Best** — annealing with the interference-aware model,
* **Naive** — annealing with the naive proportional model,
* **Random** — the mean over five random placements,
* **Worst** — annealing that maximizes total runtime.

Each placement's figure of merit is the VM-weighted average speedup of
its applications over the same applications in the worst placement —
so Worst is 1.0 by construction and Best should top every mix, with
large wins on the high-difference mixes and no damage on the L mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import stable_seed
from repro.analysis.reporting import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.table5_mixes import MixSpec, TABLE5_MIXES
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import Placement
from repro.placement.objectives import weighted_average_speedup
from repro.placement.search import random_placements
from repro.placement.throughput import ThroughputPlacer
from repro.sim.runner import MeasurementRequest

#: Placement strategies reported per mix, in rendering order.
STRATEGIES: Tuple[str, ...] = ("best", "random", "naive", "worst")


@dataclass(frozen=True)
class MixPerformance:
    """Ground-truth speedups of each strategy for one mix."""

    mix: MixSpec
    speedups: Dict[str, float]
    measured_times: Dict[str, Dict[str, float]]

    @property
    def best_improvement_percent(self) -> float:
        """Best-over-worst improvement, as the paper quotes (e.g. 105%)."""
        return (self.speedups["best"] - 1.0) * 100.0


@dataclass(frozen=True)
class Fig11Result:
    """All mixes' speedups."""

    mixes: Tuple[MixPerformance, ...]

    def rows(self) -> List[Tuple[str, float, float, float, float]]:
        """(mix, best, random, naive, worst) speedup rows."""
        return [
            (m.mix.name, *(m.speedups[s] for s in STRATEGIES)) for m in self.mixes
        ]

    def measured_bands(self) -> Dict[str, str]:
        """Re-band mixes by *measured* best-worst difference.

        The paper grouped its mixes by the best-worst performance
        difference observed on its testbed; the same workloads interact
        differently on this substrate, so the measured banding can
        reshuffle (recorded in EXPERIMENTS.md).
        """
        bands: Dict[str, str] = {}
        for m in self.mixes:
            diff = m.best_improvement_percent
            if diff >= 20.0:
                bands[m.mix.name] = "high"
            elif diff >= 5.0:
                bands[m.mix.name] = "medium"
            else:
                bands[m.mix.name] = "low"
        return bands

    def average_improvement(self, difficulty: str, strategy: str = "best") -> float:
        """Mean improvement % over worst for a difficulty band."""
        values = [
            (m.speedups[strategy] - 1.0) * 100.0
            for m in self.mixes
            if m.mix.difficulty == difficulty
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def render(self) -> str:
        """Figure 11 as text."""
        return format_table(
            ["Mix", "Best", "Random", "Naive", "Worst"],
            self.rows(),
            float_format="{:.3f}",
        )


def _measure(
    context: ExperimentContext, placement: Placement, rep: int, reps: int = 5
) -> Dict[str, float]:
    """Ground-truth times of a placement, averaged over ``reps`` runs."""
    samples = context.runner.measure_many(
        [
            MeasurementRequest.deployments(placement.deployments(), rep=rep + i)
            for i in range(reps)
        ],
        max_workers=context.max_workers,
    )
    return {key: sum(s[key] for s in samples) / len(samples) for key in samples[0]}


def run_fig11(
    context: ExperimentContext | None = None,
    *,
    mixes: Sequence[MixSpec] | None = None,
    schedule: Optional[AnnealingSchedule] = None,
    random_count: int = 5,
    seed: int = 17,
) -> Fig11Result:
    """Run the performance-placement comparison over the mixes."""
    context = context or default_context()
    mixes = list(mixes or TABLE5_MIXES)
    schedule = schedule or AnnealingSchedule(iterations=1500, restarts=2)
    results: List[MixPerformance] = []
    for mix in mixes:
        instances = mix.instances()
        spec = context.runner.spec

        model_placer = ThroughputPlacer(
            context.placement_model, spec, schedule=schedule,
            seed=stable_seed(seed, mix.name, "model"),
            max_workers=context.max_workers,
        )
        naive_placer = ThroughputPlacer(
            context.naive_placement_model, spec, schedule=schedule,
            seed=stable_seed(seed, mix.name, "naive"),
            max_workers=context.max_workers,
        )
        placements: Dict[str, List[Placement]] = {
            "best": [model_placer.best(instances).placement],
            "worst": [model_placer.worst(instances).placement],
            "naive": [naive_placer.best(instances).placement],
            "random": random_placements(
                spec, instances, count=random_count,
                seed=stable_seed(seed, mix.name, "random"),
            ),
        }

        measured: Dict[str, Dict[str, float]] = {}
        worst_times = _measure(context, placements["worst"][0], rep=seed)
        measured["worst"] = worst_times
        speedups: Dict[str, float] = {"worst": 1.0}
        for strategy in ("best", "naive", "random"):
            strategy_speedups = []
            for idx, placement in enumerate(placements[strategy]):
                times = _measure(context, placement, rep=seed + idx)
                if idx == 0:
                    measured[strategy] = times
                strategy_speedups.append(
                    weighted_average_speedup(times, worst_times, placement)
                )
            speedups[strategy] = sum(strategy_speedups) / len(strategy_speedups)
        results.append(
            MixPerformance(mix=mix, speedups=speedups, measured_times=measured)
        )
    return Fig11Result(mixes=tuple(results))
