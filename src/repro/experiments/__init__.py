"""Reproductions of every table and figure in the paper's evaluation."""

from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.fig2_motivation import Fig2Result, run_fig2
from repro.experiments.fig3_propagation import Fig3Result, run_fig3
from repro.experiments.fig4_heterogeneity import Fig4Result, run_fig4
from repro.experiments.fig8_validation import Fig8Result, PairObservation, run_fig8
from repro.experiments.fig9_gems import Fig9Result, run_fig9
from repro.experiments.fig10_qos import Fig10Result, QoSOutcome, run_fig10
from repro.experiments.fig11_performance import (
    Fig11Result,
    MixPerformance,
    run_fig11,
)
from repro.experiments.fig12_ec2_propagation import (
    Fig12Result,
    ec2_context,
    run_fig12,
)
from repro.experiments.fig13_ec2_validation import (
    Fig13Result,
    build_ec2_model,
    run_fig13,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentEntry,
    all_experiment_ids,
    get_experiment,
)
from repro.experiments.table3_profiling import Table3Result, run_table3
from repro.experiments.table4_bubble_scores import (
    PAPER_SCORES,
    Table4Result,
    run_table4,
)
from repro.experiments.table5_mixes import (
    MixSpec,
    QOS_MIXES,
    TABLE5_MIXES,
    mix_by_name,
    render_table5,
)
from repro.experiments.table6_ec2_policy import Table6Result, run_table6

__all__ = [
    "ExperimentContext",
    "ExperimentEntry",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig8Result",
    "Fig9Result",
    "MixPerformance",
    "MixSpec",
    "PAPER_SCORES",
    "PairObservation",
    "QOS_MIXES",
    "QoSOutcome",
    "REGISTRY",
    "TABLE5_MIXES",
    "Table3Result",
    "Table4Result",
    "Table6Result",
    "all_experiment_ids",
    "build_ec2_model",
    "default_context",
    "ec2_context",
    "get_experiment",
    "mix_by_name",
    "render_table5",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig8",
    "run_fig9",
    "run_table3",
    "run_table4",
    "run_table6",
]
