"""Table 3 and Figures 6-7: profiling cost vs accuracy.

Runs the four profiling algorithms — binary-optimized, binary-brute,
random-50%, random-30% — for every distributed workload against the
exhaustively measured matrix, reporting average cost and error
(Table 3) and the per-workload breakdowns (Figures 6 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.profiling.evaluation import (
    ALGORITHM_ORDER,
    ProfilerComparison,
    ProfilerScore,
    run_profilers,
)
from repro.experiments.context import ExperimentContext, default_context


@dataclass(frozen=True)
class Table3Result:
    """Profiler comparison across the workload set.

    ``measurement_count`` / ``solo_measurement_count`` snapshot the
    runner's accounting after the comparison: interference settings
    simulated versus solo-baseline runs (the denominator of every
    normalized time).  Profiling *cost* in the paper only counts the
    former, but the baselines are real cluster time too, so they are
    reported alongside.
    """

    comparison: ProfilerComparison
    measurement_count: int = 0
    solo_measurement_count: int = 0

    def table3_rows(self) -> List[Tuple[str, float, float]]:
        """(algorithm, average cost %, average error %) rows."""
        return self.comparison.table3_rows()

    def per_app_errors(self) -> Dict[str, Dict[str, float]]:
        """Figure 6: algorithm -> workload -> error %."""
        return {
            name: {s.workload: s.error_percent for s in self.comparison.by_algorithm(name)}
            for name in ALGORITHM_ORDER
        }

    def per_app_costs(self) -> Dict[str, Dict[str, float]]:
        """Figure 7: algorithm -> workload -> cost %."""
        return {
            name: {s.workload: s.cost_percent for s in self.comparison.by_algorithm(name)}
            for name in ALGORITHM_ORDER
        }

    def render_table3(self) -> str:
        """Table 3 as text, with the measurement-accounting footer."""
        table = format_table(
            ["Prediction Algorithm", "Average cost(%)", "Average error(%)"],
            self.table3_rows(),
        )
        footer = (
            f"Simulated runs: {self.measurement_count} interference settings"
            f" + {self.solo_measurement_count} solo baselines"
            f" = {self.measurement_count + self.solo_measurement_count} total"
        )
        return table + "\n" + footer

    def _render_per_app(self, data: Dict[str, Dict[str, float]], title: str) -> str:
        workloads = sorted(next(iter(data.values())))
        rows = []
        for workload in workloads:
            rows.append(
                [workload] + [data[name][workload] for name in ALGORITHM_ORDER]
            )
        return title + "\n" + format_table(["Workload"] + list(ALGORITHM_ORDER), rows)

    def render_figure6(self) -> str:
        """Figure 6 (per-app errors) as text."""
        return self._render_per_app(self.per_app_errors(), "Prediction error (%)")

    def render_figure7(self) -> str:
        """Figure 7 (per-app costs) as text."""
        return self._render_per_app(self.per_app_costs(), "Profiling cost (%)")


def run_table3(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
) -> Table3Result:
    """Run the profiler comparison for the distributed workloads."""
    context = context or default_context()
    workloads = list(workloads or context.distributed_workloads())
    scores: List[ProfilerScore] = []
    for abbrev in workloads:
        truth = context.truth_matrix(abbrev)
        outcomes = run_profilers(
            context.oracle(abbrev), context.pressures, context.counts
        )
        for name, outcome in outcomes.items():
            scores.append(
                ProfilerScore(
                    algorithm=name,
                    workload=abbrev,
                    cost_percent=outcome.cost_percent,
                    error_percent=outcome.error_against(truth),
                )
            )
    return Table3Result(
        comparison=ProfilerComparison(tuple(scores)),
        measurement_count=context.runner.measurement_count,
        solo_measurement_count=context.runner.solo_measurement_count,
    )
