"""Figure 9: predicted vs actual runtimes with the M.Gems co-runner.

M.Gems is the paper's least predictable workload — its blocked-I/O
behaviour makes its generated interference depend on the co-runner's
CPU fluctuation.  The figure plots the predicted and measured
normalized runtimes of every application when co-running with M.Gems;
the reproduction carries the same elevated-noise calibration, so the
gaps here are visibly wider than Figure 8's averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.errors import absolute_percent_error
from repro.analysis.reporting import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.fig8_validation import predict_pair

CO_RUNNER = "M.Gems"


@dataclass(frozen=True)
class Fig9Result:
    """Predicted and actual normalized times against M.Gems."""

    workloads: Tuple[str, ...]
    predicted: Tuple[float, ...]
    actual: Tuple[float, ...]

    def errors(self) -> List[float]:
        """Per-workload absolute percentage errors."""
        return [
            absolute_percent_error(p, a)
            for p, a in zip(self.predicted, self.actual)
        ]

    def render(self) -> str:
        """Figure 9 as text."""
        rows = [
            (w, p, a, e)
            for w, p, a, e in zip(
                self.workloads, self.predicted, self.actual, self.errors()
            )
        ]
        return format_table(
            ["Workload", "Predicted", "Actual", "Error(%)"], rows,
            float_format="{:.3f}",
        )


def run_fig9(
    context: ExperimentContext | None = None,
    *,
    targets: Sequence[str] | None = None,
    rep: int = 0,
) -> Fig9Result:
    """Co-run every target with M.Gems; collect predictions and truth."""
    context = context or default_context()
    targets = list(targets or context.distributed_workloads())
    predicted: List[float] = []
    actual: List[float] = []
    for target in targets:
        predicted.append(predict_pair(context, target, CO_RUNNER))
        times = context.runner.corun_pair(target, CO_RUNNER, rep=rep)
        actual.append(times[f"{target}#0"])
    return Fig9Result(
        workloads=tuple(targets),
        predicted=tuple(predicted),
        actual=tuple(actual),
    )
