"""Figure 8: model validation with pairwise co-runs.

Runs every distributed workload together with every benchmark
application (including itself) across the full cluster, and compares
the model's predicted normalized time against the measured one.  The
paper reports per-workload average errors mostly under 10% (Spark apps
higher, driven by the unpredictable M.Gems co-runner); the same
structure emerges here because the model cannot see master-node
pressure asymmetry, pressure-combination surcharges, or run-to-run
noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.errors import ErrorSummary, absolute_percent_error
from repro.analysis.reporting import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.sim.runner import MeasurementRequest


@dataclass(frozen=True)
class PairObservation:
    """One co-run: predicted and measured normalized time of the target."""

    target: str
    co_runner: str
    predicted: float
    actual: float

    @property
    def error_percent(self) -> float:
        """Absolute percentage prediction error."""
        return absolute_percent_error(self.predicted, self.actual)


@dataclass(frozen=True)
class Fig8Result:
    """All pairwise observations, grouped by target workload."""

    observations: Tuple[PairObservation, ...]

    def of_target(self, target: str) -> List[PairObservation]:
        """Observations where ``target`` is the predicted application."""
        return [o for o in self.observations if o.target == target]

    def summary(self, target: str) -> ErrorSummary:
        """Error summary (mean + percentile bars) for one target."""
        return ErrorSummary.of([o.error_percent for o in self.of_target(target)])

    def average_errors(self) -> Dict[str, float]:
        """Figure 8's bar heights: mean error per target workload."""
        targets = sorted({o.target for o in self.observations})
        return {t: self.summary(t).mean for t in targets}

    def render(self) -> str:
        """Figure 8 as text: mean error with 25/75 percentile bars."""
        rows = []
        for target in sorted({o.target for o in self.observations}):
            s = self.summary(target)
            rows.append((target, s.mean, s.p25, s.p75))
        return format_table(
            ["Workload", "Avg error(%)", "p25(%)", "p75(%)"], rows
        )


def predict_pair(context: ExperimentContext, target: str, co_runner: str) -> float:
    """Model prediction for ``target`` co-located with ``co_runner``.

    Both applications span every node (Section 4.3's configuration),
    so the target sees the co-runner's bubble score on all nodes.
    """
    model = context.model
    score = model.profile(co_runner).bubble_score
    vector = [score] * context.runner.num_nodes
    return model.predict_heterogeneous(target, vector)


def run_fig8(
    context: ExperimentContext | None = None,
    *,
    targets: Sequence[str] | None = None,
    co_runners: Sequence[str] | None = None,
    reps: int = 1,
) -> Fig8Result:
    """Run the pairwise validation grid.

    Parameters
    ----------
    context:
        Shared experiment context.
    targets:
        Workloads whose performance is predicted (distributed apps).
    co_runners:
        Co-located applications (all 18 by default, including the
        targets themselves).
    reps:
        Independent measured repetitions per pair.
    """
    context = context or default_context()
    targets = list(targets or context.distributed_workloads())
    if co_runners is None:
        co_runners = list(context.distributed_workloads()) + list(
            context.batch_workloads()
        )
    # The grid's measurements are independent (each co-run derives its
    # own stable seed), so the whole sweep ships through measure_many
    # as one batch and fans out when the context allows.
    pairs = [
        (target, co_runner, rep)
        for target in targets
        for co_runner in co_runners
        for rep in range(reps)
    ]
    requests = [
        MeasurementRequest.corun(target, co_runner, rep=rep)
        for target, co_runner, rep in pairs
    ]
    results = context.runner.measure_many(
        requests, max_workers=context.max_workers
    )
    predictions = {
        (target, co_runner): predict_pair(context, target, co_runner)
        for target in targets
        for co_runner in co_runners
    }
    observations: List[PairObservation] = []
    for (target, co_runner, rep), times in zip(pairs, results):
        observations.append(
            PairObservation(
                target=target,
                co_runner=co_runner,
                predicted=predictions[(target, co_runner)],
                actual=times[f"{target}#0"],
            )
        )
    return Fig8Result(observations=tuple(observations))
