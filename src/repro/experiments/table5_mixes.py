"""Table 5: the workload mixes of the placement experiments.

Ten four-application mixes spanning high, medium, and low sensitivity
to placement (by best-vs-worst performance difference), copied verbatim
from the paper.  A mix may repeat a workload (HM3 runs two M.Gems
instances); instance keys disambiguate them.

The QoS experiment (Figure 10) uses four mixes with one mission-
critical application each; the paper does not enumerate them, so
:data:`QOS_MIXES` defines four representative mixes over the same
workload pool, each pairing a high-propagation QoS target with loud
and quiet co-runners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.errors import ConfigurationError
from repro.placement.assignment import InstanceSpec


@dataclass(frozen=True)
class MixSpec:
    """One application mix.

    Parameters
    ----------
    name:
        Paper index (HW1 ... L) or QoS mix label.
    workloads:
        Catalog abbreviations (repeats allowed).  Table 5's mixes hold
        four applications of four units each; the QoS mixes use five
        applications with uneven unit counts (see :data:`QOS_MIXES`).
    difficulty:
        The paper's grouping: best-worst performance difference band.
    qos_index:
        Index of the mission-critical workload, if any (Figure 10
        prints it in italics).
    unit_counts:
        VM units per application; defaults to 4 each.
    """

    name: str
    workloads: Tuple[str, ...]
    difficulty: str = ""
    qos_index: Optional[int] = None
    unit_counts: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if len(self.workloads) < 2:
            raise ConfigurationError("a mix needs at least two applications")
        if self.unit_counts is not None and len(self.unit_counts) != len(
            self.workloads
        ):
            raise ConfigurationError("unit_counts must match workloads")
        if self.qos_index is not None and not 0 <= self.qos_index < len(
            self.workloads
        ):
            raise ConfigurationError("qos_index out of range")

    def instances(self, *, num_units: int = 4) -> List[InstanceSpec]:
        """InstanceSpecs with unique keys ``<abbrev>#<position>``."""
        counts = self.unit_counts or (num_units,) * len(self.workloads)
        return [
            InstanceSpec(
                instance_key=f"{abbrev}#{idx}",
                workload=abbrev,
                num_units=count,
                weight=count / max(counts),
            )
            for idx, (abbrev, count) in enumerate(zip(self.workloads, counts))
        ]

    @property
    def qos_instance_key(self) -> str:
        """Key of the mission-critical instance.

        Raises
        ------
        ConfigurationError
            If the mix has no QoS target.
        """
        if self.qos_index is None:
            raise ConfigurationError(f"mix {self.name} has no QoS target")
        return f"{self.workloads[self.qos_index]}#{self.qos_index}"


#: Table 5 verbatim: high / medium / low best-worst difference mixes.
TABLE5_MIXES: Tuple[MixSpec, ...] = (
    MixSpec("HW1", ("N.mg", "N.cg", "H.KM", "M.lmps"), "high"),
    MixSpec("HW2", ("M.zeus", "C.libq", "H.KM", "M.Gems"), "high"),
    MixSpec("HW3", ("C.libq", "N.cg", "H.KM", "S.PR"), "high"),
    MixSpec("HM1", ("M.zeus", "S.WC", "M.Gems", "S.PR"), "high"),
    MixSpec("HM2", ("H.KM", "M.Gems", "M.lu", "C.xbmk"), "high"),
    MixSpec("HM3", ("S.CF", "H.KM", "M.Gems", "M.Gems"), "high"),
    MixSpec("MW", ("N.mg", "H.KM", "H.KM", "M.lesl"), "medium"),
    MixSpec("MM", ("C.cact", "C.libq", "M.Gems", "M.lmps"), "medium"),
    MixSpec("MB", ("N.cg", "M.milc", "C.libq", "C.xbmk"), "medium"),
    MixSpec("L", ("M.lesl", "M.zeus", "M.zeus", "N.mg"), "low"),
)

#: Figure 10's four QoS mixes (mission-critical app first).  The paper
#: does not enumerate its QoS mixes, so these are constructed to carry
#: the tension Figure 10 exercises: a mission-critical application of
#: *low* memory sensitivity competes with a highly sensitive
#: application for scarce quiet co-runners (five applications, uneven
#: unit counts).  A throughput-oriented search is then tempted to hand
#: the target one moderately-loud neighbour node to relieve the
#: sensitive application — which the naive proportional model deems
#: acceptable (one node out of four looks like a quarter of the
#: damage) while the propagation-aware model knows a single loud node
#: already propagates to the whole application and breaks the bound.
QOS_MIXES: Tuple[MixSpec, ...] = (
    MixSpec(
        "qos-a", ("M.lmps", "M.milc", "S.WC", "C.xbmk", "H.KM"),
        qos_index=0, unit_counts=(4, 4, 4, 2, 2),
    ),
    MixSpec(
        "qos-b", ("M.lmps", "N.mg", "S.PR", "C.xbmk", "S.WC"),
        qos_index=0, unit_counts=(4, 4, 4, 2, 2),
    ),
    MixSpec(
        "qos-c", ("M.zeus", "N.mg", "S.WC", "C.sopl", "H.KM"),
        qos_index=0, unit_counts=(4, 4, 4, 2, 2),
    ),
    MixSpec(
        "qos-d", ("M.lmps", "N.cg", "S.WC", "C.xbmk", "H.KM"),
        qos_index=0, unit_counts=(4, 4, 4, 2, 2),
    ),
)


def mix_by_name(name: str) -> MixSpec:
    """Look up a mix from either table by name."""
    for mix in TABLE5_MIXES + QOS_MIXES:
        if mix.name == name:
            return mix
    raise ConfigurationError(f"unknown mix {name!r}")


def render_table5() -> str:
    """Table 5 as text."""
    rows: List[List[object]] = []
    for mix in TABLE5_MIXES:
        rows.append([mix.name, mix.difficulty, *mix.workloads])
    return format_table(
        ["Index", "Difficulty", "App 1", "App 2", "App 3", "App 4"], rows
    )


def workload_pool() -> Dict[str, int]:
    """How often each workload appears across Table 5 (diagnostics)."""
    counts: Dict[str, int] = {}
    for mix in TABLE5_MIXES:
        for abbrev in mix.workloads:
            counts[abbrev] = counts.get(abbrev, 0) + 1
    return counts
