"""Figure 12: propagation curves on Amazon EC2 (Section 6).

The four short-running MPI workloads are profiled on the 32-VM EC2
environment across the sparse interfering-VM counts 0, 1, 2, 4, 8, 16,
24, 32.  The same propagation shapes appear as on the private cluster,
on top of the unmeasured tenant noise that makes every EC2 measurement
fuzzier.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence

from repro.analysis.reporting import format_series
from repro.core.curves import PropagationMatrix
from repro.providers.ec2 import EC2_WORKLOADS, ec2_counts, make_ec2_runner
from repro.experiments.context import ExperimentContext


@lru_cache(maxsize=1)
def ec2_context() -> ExperimentContext:
    """Process-wide shared EC2 experiment context."""
    return ExperimentContext(
        make_ec2_runner(), counts=ec2_counts(), policy_samples=100, seed=26016
    )


@dataclass(frozen=True)
class Fig12Result:
    """Per-workload EC2 propagation matrices."""

    matrices: Dict[str, PropagationMatrix]

    def render(self, workload: str) -> str:
        """One panel of Figure 12 as text."""
        matrix = self.matrices[workload]
        series = {
            f"pressure {int(p)}": [float(v) for v in matrix.row(i)]
            for i, p in enumerate(matrix.pressures)
        }
        return format_series(
            "interfering VMs", [int(c) for c in matrix.counts], series
        )

    def render_all(self) -> str:
        """All four panels."""
        parts = []
        for workload in sorted(self.matrices):
            parts.append(f"== {workload} (EC2) ==")
            parts.append(self.render(workload))
        return "\n".join(parts)


def run_fig12(
    context: ExperimentContext | None = None,
    *,
    workloads: Sequence[str] | None = None,
) -> Fig12Result:
    """Measure the EC2 propagation grid for the four validation apps."""
    context = context or ec2_context()
    workloads = list(workloads or EC2_WORKLOADS)
    matrices = {abbrev: context.truth_matrix(abbrev) for abbrev in workloads}
    return Fig12Result(matrices=matrices)
