"""Co-run executor: runs deployed workloads to completion.

This is the simulated equivalent of "launch the VMs and wait": given a
set of :class:`DeployedInstance` objects (workload + unit-to-node map),
the executor drives each instance's program through the discrete-event
engine.  Task durations are scaled by the workload's sensitivity to the
pressure currently present on the slot's node; when an instance
finishes, its pressure disappears and co-runners speed up from their
next task onward.

The executor is the *only* ground truth in this reproduction — the
interference model (:mod:`repro.core`) sees nothing but the execution
times it returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro._util import child_rng, make_rng
from repro.apps.base import Stage, Workload
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine
from repro.sim.noise import NoiseProfile, PRIVATE_TESTBED_NOISE, TaskJitter
from repro.sim.pressure import PressureField
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class DeployedInstance:
    """A workload instance mapped onto cluster nodes.

    Parameters
    ----------
    instance_key:
        Unique identifier within the co-run (e.g. ``"M.lmps#0"``).
    workload:
        Behavioural model (provides the program and sensitivities).
    units_to_nodes:
        Mapping of VM-unit index to hosting node id.  Unit 0 hosts the
        master.
    """

    instance_key: str
    workload: Workload
    units_to_nodes: Mapping[int, int]

    def __post_init__(self) -> None:
        if not self.units_to_nodes and not self.workload.is_passive:
            raise ConfigurationError(
                f"active instance {self.instance_key!r} deployed with no units"
            )

    @property
    def num_units(self) -> int:
        """Number of placed VM units."""
        return len(self.units_to_nodes)

    @property
    def num_slots(self) -> int:
        """Total execution slots across all units."""
        return self.num_units * self.workload.spec.slots_per_unit

    def slot_nodes(self) -> List[int]:
        """Node id of each slot, in slot order (unit-major)."""
        spu = self.workload.spec.slots_per_unit
        nodes: List[int] = []
        for unit_index in sorted(self.units_to_nodes):
            nodes.extend([self.units_to_nodes[unit_index]] * spu)
        return nodes

    def spanned_nodes(self) -> List[int]:
        """Sorted distinct node ids the instance occupies."""
        return sorted(set(self.units_to_nodes.values()))


@dataclass
class InstanceResult:
    """Outcome of one instance in a co-run."""

    instance_key: str
    workload_name: str
    finish_time: float
    tasks_executed: int
    stages_completed: int
    #: Mean pressure experienced across the instance's nodes at start.
    mean_pressure_seen: float
    #: Mean NETWORK-domain (uplink) pressure across the instance's
    #: nodes at start; 0.0 whenever the co-run has no network sources.
    mean_link_pressure_seen: float = 0.0
    #: True if the instance was a passive pressure source (bubble).
    passive: bool = False


class _InstanceController:
    """Drives one instance's program through the engine."""

    def __init__(
        self,
        engine: Engine,
        pressure: PressureField,
        deployed: DeployedInstance,
        jitter: TaskJitter,
        noise: NoiseProfile,
        rng,
        on_finish: Callable[[str], None],
        trace: Optional[ExecutionTrace],
        loop: bool = False,
        keep_running: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._engine = engine
        self._pressure = pressure
        self._deployed = deployed
        self._jitter = jitter
        self._noise = noise
        self._rng = rng
        self._on_finish = on_finish
        self._trace = trace
        self._loop = loop
        self._keep_running = keep_running or (lambda: False)
        self._sensitivity = deployed.workload.spec.sensitivity
        self._net_sensitivity = deployed.workload.spec.network_sensitivity
        self._spanned_nodes = deployed.spanned_nodes()
        self._slot_nodes = deployed.slot_nodes()
        self._program: List[Stage] = deployed.workload.build_program(
            max(deployed.num_slots, 1)
        )
        self._stage_index = -1
        self._stage: Optional[Stage] = None
        self._tasks_not_started = 0
        self._tasks_running = 0
        self._slot_pending: List[int] = []
        self.tasks_executed = 0
        self.stages_completed = 0
        self.finish_time: Optional[float] = None

    @property
    def key(self) -> str:
        return self._deployed.instance_key

    def start(self) -> None:
        """Begin executing the program (no-op for empty programs)."""
        if not self._program:
            self._finish()
            return
        self._advance_stage()

    def _advance_stage(self) -> None:
        self._stage_index += 1
        if self._stage_index >= len(self._program):
            self._finish()
            return
        stage = self._program[self._stage_index]
        self._stage = stage
        self._tasks_not_started = stage.n_tasks
        self._tasks_running = 0
        num_slots = len(self._slot_nodes)
        if stage.dynamic:
            self._slot_pending = []
            for slot in range(min(num_slots, stage.n_tasks)):
                self._begin_task(slot)
        else:
            base, extra = divmod(stage.n_tasks, num_slots)
            self._slot_pending = [
                base + (1 if slot < extra else 0) for slot in range(num_slots)
            ]
            for slot in range(num_slots):
                if self._slot_pending[slot] > 0:
                    self._begin_task(slot)

    def _begin_task(self, slot: int) -> None:
        stage = self._stage
        assert stage is not None
        if self._tasks_not_started <= 0:
            raise SimulationError("attempted to start more tasks than the stage has")
        self._tasks_not_started -= 1
        self._tasks_running += 1
        node = self._slot_nodes[slot]
        pressure = self._pressure.pressure_seen(self.key, node)
        slowdown = self._sensitivity.slowdown(pressure)
        duration = stage.task_time * slowdown * self._jitter.sample()
        duration *= self._noise.stall.factor(
            self._rng, pressure, reacts=slowdown > 1.0
        )
        self._engine.schedule(duration, lambda: self._complete_task(slot))

    def _complete_task(self, slot: int) -> None:
        stage = self._stage
        assert stage is not None
        self._tasks_running -= 1
        self.tasks_executed += 1
        if stage.dynamic:
            if self._tasks_not_started > 0:
                self._begin_task(slot)
        else:
            self._slot_pending[slot] -= 1
            if self._slot_pending[slot] > 0:
                self._begin_task(slot)
        if self._tasks_running == 0 and self._tasks_not_started == 0:
            self._end_stage()

    def _end_stage(self) -> None:
        stage = self._stage
        assert stage is not None
        self.stages_completed += 1
        if self._trace is not None:
            self._trace.record_stage(self.key, stage.name, self._engine.now)
        if stage.sync_cost > 0.0:
            sync_cost = stage.sync_cost
            # NETWORK domain: the collective crosses every occupied
            # uplink, so it is paced by the most congested one.  Both
            # gates are false for every scalar-era run, keeping the
            # flat path bit-identical.
            if self._net_sensitivity is not None and self._pressure.has_network:
                link = max(
                    self._pressure.link_pressure_seen(self.key, node)
                    for node in self._spanned_nodes
                )
                sync_cost *= self._net_sensitivity.slowdown(link)
            self._engine.schedule(sync_cost, self._advance_stage)
        else:
            self._advance_stage()

    def _finish(self) -> None:
        if self.finish_time is None:
            self.finish_time = self._engine.now
            self._on_finish(self.key)
        if self._loop and self._program and self._keep_running():
            # Sustained co-run: restart the program so this instance
            # keeps exerting (and receiving) interference while slower
            # co-runners complete their first pass.
            self._stage_index = -1
            self._advance_stage()


class CoRunExecutor:
    """Runs a set of deployed instances concurrently.

    Parameters
    ----------
    instances:
        The deployed instances; keys must be unique.  At least one must
        be active (non-passive), otherwise the run would never end.
    seed:
        Seed for all stochastic behaviour in this run.
    noise:
        Environment noise profile (jitter scale + ambient pressure).
    num_nodes:
        Number of physical nodes; needed to draw ambient pressure.
        Inferred from deployments when omitted.
    trace:
        Optional trace collector for stage-level timing.
    ambient_link:
        Constant background NETWORK pressure per node uplink (the
        ``--network-noise`` injection).  Deterministic — no RNG draw —
        and ``None`` (the default) keeps every link flat.
    sustained:
        If true, every instance restarts its program after completing
        it, so interference stays present until the *slowest* instance
        finishes its first pass; reported finish times are first-pass
        completions.  This matches the paper's measurement methodology,
        where co-runners execute continuously during validation and
        placement experiments.
    """

    def __init__(
        self,
        instances: Sequence[DeployedInstance],
        *,
        seed: object = 0,
        noise: NoiseProfile = PRIVATE_TESTBED_NOISE,
        num_nodes: Optional[int] = None,
        trace: Optional[ExecutionTrace] = None,
        ambient_link: Optional[Mapping[int, float]] = None,
        sustained: bool = False,
    ) -> None:
        keys = [inst.instance_key for inst in instances]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate instance keys in co-run: {keys}")
        if not any(not inst.workload.is_passive for inst in instances):
            raise ConfigurationError("a co-run needs at least one active instance")
        self._instances = list(instances)
        self._rng = make_rng(seed)
        self._noise = noise
        self._trace = trace
        if num_nodes is None:
            spanned = [n for inst in instances for n in inst.spanned_nodes()]
            num_nodes = (max(spanned) + 1) if spanned else 1
        self._num_nodes = num_nodes
        self._ambient_link = dict(ambient_link or {})
        self._sustained = sustained

    def run(self) -> Dict[str, InstanceResult]:
        """Execute the co-run and return per-instance results."""
        engine = Engine()
        ambient: Mapping[int, float] = {}
        if self._noise.ambient is not None:
            ambient = self._noise.ambient.draw(
                self._num_nodes, child_rng(self._rng, "ambient")
            )
        field = PressureField(ambient, ambient_link=self._ambient_link)
        for inst in self._instances:
            field.register(inst.instance_key, inst.workload, inst.units_to_nodes)

        active_remaining = sum(
            1 for inst in self._instances if not inst.workload.is_passive
        )
        finish_order: List[str] = []

        def on_finish(key: str) -> None:
            nonlocal active_remaining
            finish_order.append(key)
            active_remaining -= 1
            if self._sustained:
                # Pressure stays present (the instance loops) until the
                # last first-pass completion, then the run is over.
                if active_remaining == 0:
                    engine.stop()
            else:
                field.deactivate(key)

        def keep_running() -> bool:
            return active_remaining > 0

        controllers: Dict[str, _InstanceController] = {}
        for inst in self._instances:
            if inst.workload.is_passive:
                continue
            rng = child_rng(self._rng, inst.instance_key)
            cv = inst.workload.spec.noise_cv * self._noise.jitter_scale
            jitter = TaskJitter(cv, rng)
            controllers[inst.instance_key] = _InstanceController(
                engine, field, inst, jitter, self._noise, rng, on_finish,
                self._trace, loop=self._sustained, keep_running=keep_running,
            )

        start_pressures = {
            inst.instance_key: self._mean_pressure(field, inst)
            for inst in self._instances
        }
        # Only bookkept when a network source exists; flat runs report
        # 0.0 without touching the link-pressure path at all.
        if field.has_network:
            start_link_pressures = {
                inst.instance_key: self._mean_link_pressure(field, inst)
                for inst in self._instances
            }
        else:
            start_link_pressures = {
                inst.instance_key: 0.0 for inst in self._instances
            }
        for controller in controllers.values():
            controller.start()
        end_time = engine.run()

        results: Dict[str, InstanceResult] = {}
        for inst in self._instances:
            key = inst.instance_key
            if inst.workload.is_passive:
                results[key] = InstanceResult(
                    instance_key=key,
                    workload_name=inst.workload.name,
                    finish_time=end_time,
                    tasks_executed=0,
                    stages_completed=0,
                    mean_pressure_seen=start_pressures[key],
                    mean_link_pressure_seen=start_link_pressures[key],
                    passive=True,
                )
            else:
                controller = controllers[key]
                if controller.finish_time is None:
                    raise SimulationError(
                        f"instance {key!r} did not finish; simulation deadlock"
                    )
                results[key] = InstanceResult(
                    instance_key=key,
                    workload_name=inst.workload.name,
                    finish_time=controller.finish_time,
                    tasks_executed=controller.tasks_executed,
                    stages_completed=controller.stages_completed,
                    mean_pressure_seen=start_pressures[key],
                    mean_link_pressure_seen=start_link_pressures[key],
                )
        return results

    @staticmethod
    def _mean_pressure(field: PressureField, inst: DeployedInstance) -> float:
        nodes = inst.spanned_nodes()
        if not nodes:
            return 0.0
        return sum(field.pressure_seen(inst.instance_key, n) for n in nodes) / len(
            nodes
        )

    @staticmethod
    def _mean_link_pressure(field: PressureField, inst: DeployedInstance) -> float:
        nodes = inst.spanned_nodes()
        if not nodes:
            return 0.0
        return sum(
            field.link_pressure_seen(inst.instance_key, n) for n in nodes
        ) / len(nodes)
