"""Persistent measurement cache.

Every measurement the :class:`~repro.sim.runner.ClusterRunner` performs
is a deterministic function of its setting label and the runner's base
seed — re-running a benchmark re-simulates exactly the same runs.  The
cache makes that observation operational: results are stored on disk
keyed by the same stable label that seeds the simulation, so a repeated
benchmark session *replays* recorded times instead of re-simulating
them, the way a real testbed would re-read its run logs.

The store is a single JSON file, loaded eagerly and rewritten
atomically on :meth:`flush` (or on every put with ``autosave``).  Keys
embed a *fingerprint* of the measurement environment (cluster shape,
base seed, noise profile, and any active fault plan) so one file can
safely serve several environments — a cache entry recorded on the
quiet private testbed is never replayed for the noisy EC2 environment.

A corrupt backing file (e.g. a torn write from a killed process) is
**quarantined**, not fatal: the bytes are moved aside to
``<path>.corrupt`` for inspection, a one-line warning is printed, and
the cache starts empty — measurements re-simulate deterministically,
so nothing is lost but time.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs import console

CacheValue = Union[float, Dict[str, float]]


def cache_key(fingerprint: str, *labels: object) -> str:
    """Canonical string key for a measurement label tuple."""
    return "|".join([fingerprint] + [str(label) for label in labels])


class MeasurementCache:
    """Disk-backed store of measurement results keyed by stable labels.

    Parameters
    ----------
    path:
        JSON file backing the cache; ``None`` keeps the cache purely
        in memory (used by fan-out workers, which report their fresh
        entries back to the parent instead of writing files).
    autosave:
        Rewrite the file after every new entry.  Convenient for
        interactive use; batch users should prefer explicit
        :meth:`flush` calls.
    """

    def __init__(
        self, path: Optional[Union[str, Path]] = None, *, autosave: bool = False
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.autosave = autosave
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, CacheValue] = {}
        self._fresh: Dict[str, CacheValue] = {}
        if self.path is not None and self.path.exists():
            try:
                self._entries = json.loads(self.path.read_text())
            except json.JSONDecodeError as exc:
                # Quarantine instead of crashing: the bytes stay
                # available at <path>.corrupt for manual salvage, the
                # next flush cannot overwrite them, and every
                # measurement re-derives deterministically anyway.
                quarantine = self.path.with_name(self.path.name + ".corrupt")
                os.replace(self.path, quarantine)
                console.info(
                    f"warning: measurement cache {self.path} is not valid "
                    f"JSON ({exc}); quarantined to {quarantine}, starting "
                    "with an empty cache"
                )
                self._entries = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[CacheValue]:
        """Recorded value for ``key``, or ``None`` on a miss."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: CacheValue) -> None:
        """Record a measurement result."""
        if key in self._entries:
            return
        self._entries[key] = value
        self._fresh[key] = value
        if self.autosave:
            self.flush()

    def merge(self, entries: Dict[str, CacheValue]) -> None:
        """Adopt entries produced elsewhere (fan-out workers)."""
        for key, value in entries.items():
            self.put(key, value)

    def fresh_entries(self) -> Dict[str, CacheValue]:
        """Entries added since construction (what workers ship back)."""
        return dict(self._fresh)

    def flush(self) -> None:
        """Atomically rewrite the backing file (no-op for memory caches)."""
        if self.path is None or not self._fresh:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Merge with whatever another process flushed meanwhile.
        if self.path.exists():
            try:
                on_disk = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                on_disk = {}
            for key, value in on_disk.items():
                self._entries.setdefault(key, value)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._entries, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self._fresh.clear()

    # ------------------------------------------------------------------
    def memory_clone(self) -> "MeasurementCache":
        """In-memory copy with the same entries (for fan-out workers)."""
        clone = MeasurementCache(None)
        clone._entries = dict(self._entries)
        return clone

    def __getstate__(self) -> Tuple[Dict[str, CacheValue]]:
        # Pickling ships entries only: a worker must never write the
        # parent's file, and its fresh entries restart from empty so the
        # parent can collect exactly what the worker added.
        return (dict(self._entries),)

    def __setstate__(self, state: Tuple[Dict[str, CacheValue]]) -> None:
        self.path = None
        self.autosave = False
        self.hits = 0
        self.misses = 0
        self._entries = state[0]
        self._fresh = {}
