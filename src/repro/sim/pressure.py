"""Time-varying interference pressure bookkeeping.

The :class:`PressureField` answers the simulator's central question:
*what pressure does instance X experience on node N right now?*  The
answer combines the per-unit generated pressures of every *other*
active instance resident on the node (plus any ambient background
pressure), using the logarithmic combination rule of
:func:`repro.cluster.contention.combine_pressures`.

The field tracks two contention domains.  COMPUTE contributions come
from :meth:`~repro.apps.base.Workload.generated_pressure_for` and model
LLC / memory-bandwidth theft on the node itself; NETWORK contributions
come from ``generated_network_pressure_for`` and model traffic on the
node's uplink to the shared switch.  Link pressure is only bookkept for
instances that actually generate it (every scalar-era workload
contributes zero), so flat-network simulations never touch the network
structures.

When an instance finishes it is deactivated and its pressure vanishes
— co-runners speed up from their next task onward, which reproduces
the dynamics of real consolidated runs where applications end at
different times.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.apps.base import Workload
from repro.cluster.contention import ContentionDomain, combine_pressures
from repro.errors import SimulationError


class PressureField:
    """Tracks which instance exerts what pressure on which node.

    Parameters
    ----------
    ambient:
        Background COMPUTE pressure per node (noisy-neighbour model).
    ambient_link:
        Background NETWORK pressure per node uplink (network-noise
        mode); ``None`` or all-zero keeps the link flat.
    """

    def __init__(
        self,
        ambient: Mapping[int, float] | None = None,
        *,
        ambient_link: Mapping[int, float] | None = None,
    ) -> None:
        # instance_key -> node_id -> list of per-unit pressures
        self._contributions: Dict[str, Dict[int, List[float]]] = {}
        # instance_key -> node_id -> list of per-unit link pressures;
        # only instances with nonzero network pressure appear here.
        self._link_contributions: Dict[str, Dict[int, List[float]]] = {}
        self._active: Dict[str, bool] = {}
        self._ambient: Dict[int, float] = dict(ambient or {})
        self._ambient_link: Dict[int, float] = {
            node: level
            for node, level in dict(ambient_link or {}).items()
            if level > 0.0
        }
        self._cache: Dict[Tuple[str, int], float] = {}
        self._link_cache: Dict[Tuple[str, int], float] = {}

    def register(
        self, instance_key: str, workload: Workload, units_to_nodes: Mapping[int, int]
    ) -> None:
        """Register a deployed instance's pressure contributions.

        Parameters
        ----------
        instance_key:
            Unique identifier of the instance.
        workload:
            The workload, providing per-unit generated pressure (the
            master unit may exert a discounted pressure).
        units_to_nodes:
            Mapping of unit index to hosting node id.
        """
        if instance_key in self._contributions:
            raise SimulationError(f"instance {instance_key!r} registered twice")
        per_node: Dict[int, List[float]] = {}
        for unit_index, node_id in units_to_nodes.items():
            per_node.setdefault(node_id, []).append(
                workload.generated_pressure_for(unit_index)
            )
        self._contributions[instance_key] = per_node
        if workload.spec.generated_network_pressure > 0.0:
            link_per_node: Dict[int, List[float]] = {}
            for unit_index, node_id in units_to_nodes.items():
                link_per_node.setdefault(node_id, []).append(
                    workload.generated_network_pressure_for(unit_index)
                )
            self._link_contributions[instance_key] = link_per_node
            self._link_cache.clear()
        self._active[instance_key] = True
        self._cache.clear()

    def deactivate(self, instance_key: str) -> None:
        """Remove a finished instance's pressure from the field."""
        if instance_key not in self._active:
            raise SimulationError(f"unknown instance {instance_key!r}")
        self._active[instance_key] = False
        self._cache.clear()
        if self._link_contributions:
            self._link_cache.clear()

    def is_active(self, instance_key: str) -> bool:
        """Whether the instance still exerts pressure."""
        return self._active.get(instance_key, False)

    @property
    def has_network(self) -> bool:
        """Whether any network-pressure source exists in the field.

        False for every scalar-era simulation; the executor uses this
        to skip the NETWORK domain entirely, keeping flat runs
        bit-identical.
        """
        return bool(self._link_contributions or self._ambient_link)

    def pressure_seen(self, instance_key: str, node_id: int) -> float:
        """Effective pressure ``instance_key`` experiences on ``node_id``.

        Combines all other active instances' contributions on the node
        and the ambient background pressure.  Results are cached until
        the next activation change.
        """
        cache_key = (instance_key, node_id)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        sources: List[float] = []
        ambient = self._ambient.get(node_id, 0.0)
        if ambient > 0.0:
            sources.append(ambient)
        for other_key, per_node in self._contributions.items():
            if other_key == instance_key or not self._active[other_key]:
                continue
            sources.extend(per_node.get(node_id, ()))
        pressure = combine_pressures(sources)
        self._cache[cache_key] = pressure
        return pressure

    def link_pressure_seen(self, instance_key: str, node_id: int) -> float:
        """Link pressure ``instance_key`` experiences on ``node_id``'s uplink.

        The NETWORK-domain analogue of :meth:`pressure_seen`: combines
        every other active instance's uplink traffic on the node with
        the ambient link noise, under the NETWORK collision surcharge.
        """
        cache_key = (instance_key, node_id)
        cached = self._link_cache.get(cache_key)
        if cached is not None:
            return cached
        sources: List[float] = []
        ambient = self._ambient_link.get(node_id, 0.0)
        if ambient > 0.0:
            sources.append(ambient)
        for other_key, per_node in self._link_contributions.items():
            if other_key == instance_key or not self._active[other_key]:
                continue
            sources.extend(per_node.get(node_id, ()))
        pressure = combine_pressures(sources, domain=ContentionDomain.NETWORK)
        self._link_cache[cache_key] = pressure
        return pressure

    def generated_on(self, node_id: int, *, exclude: str | None = None) -> float:
        """Total pressure present on a node (diagnostics/reporting)."""
        sources: List[float] = []
        ambient = self._ambient.get(node_id, 0.0)
        if ambient > 0.0:
            sources.append(ambient)
        for key, per_node in self._contributions.items():
            if key == exclude or not self._active[key]:
                continue
            sources.extend(per_node.get(node_id, ()))
        return combine_pressures(sources)

    def link_generated_on(self, node_id: int, *, exclude: str | None = None) -> float:
        """Total link pressure on a node's uplink (diagnostics/reporting)."""
        sources: List[float] = []
        ambient = self._ambient_link.get(node_id, 0.0)
        if ambient > 0.0:
            sources.append(ambient)
        for key, per_node in self._link_contributions.items():
            if key == exclude or not self._active[key]:
                continue
            sources.extend(per_node.get(node_id, ()))
        return combine_pressures(sources, domain=ContentionDomain.NETWORK)
